//! Cross-component validation: independent implementations of the same
//! behaviour must agree. These tests catch modelling drift that unit
//! tests of either side alone would miss.

use csalt::cache::Cache;
use csalt::profiler::StackDistanceProfiler;
use csalt::types::{EntryKind, LineAddr, ReplacementKind};
use proptest::prelude::*;

/// The MSA shadow directory *is* a full-LRU cache: its hit prediction at
/// the full associativity must exactly equal a real True-LRU cache's
/// hit count on the same trace.
#[test]
fn msa_prediction_matches_real_lru_cache() {
    const SETS: u64 = 32;
    const WAYS: u32 = 4;
    let mut cache = Cache::new(SETS, WAYS, ReplacementKind::TrueLru);
    let mut prof = StackDistanceProfiler::new(SETS, WAYS, 1);

    let mut x = 42u64;
    let mut hits = 0u64;
    for _ in 0..200_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let line = (x >> 33) % 4096;
        let addr = LineAddr::from_line_number(line);
        if cache.access(addr, EntryKind::Data, false).hit {
            hits += 1;
        }
        let set = line % SETS;
        let tag = line / SETS;
        prof.record(set, tag, EntryKind::Data);
    }
    let predicted = prof.counts(EntryKind::Data).hits_with_ways(WAYS);
    assert_eq!(
        predicted, hits,
        "shadow-directory prediction must equal the real cache"
    );
}

/// Reducing associativity in the prediction must match a real cache
/// that actually has fewer ways.
#[test]
fn msa_prediction_matches_smaller_real_cache() {
    const SETS: u64 = 16;
    let mut small = Cache::new(SETS, 2, ReplacementKind::TrueLru);
    let mut prof = StackDistanceProfiler::new(SETS, 8, 1);

    let mut x = 7u64;
    let mut hits = 0u64;
    for _ in 0..100_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
        let line = (x >> 33) % 512;
        if small
            .access(LineAddr::from_line_number(line), EntryKind::Data, false)
            .hit
        {
            hits += 1;
        }
        prof.record(line % SETS, line / SETS, EntryKind::Data);
    }
    // The 8-deep shadow stack predicts the 2-way cache by summing the
    // first two stack positions (§3.1's associativity-reduction use).
    let predicted = prof.counts(EntryKind::Data).hits_with_ways(2);
    assert_eq!(predicted, hits);
}

proptest! {
    /// The equivalence holds for arbitrary traces and geometries.
    #[test]
    fn msa_equivalence_holds_for_random_traces(
        trace in prop::collection::vec(0u64..600, 50..800),
        ways in 1u32..6,
    ) {
        const SETS: u64 = 8;
        let mut cache = Cache::new(SETS, ways, ReplacementKind::TrueLru);
        let mut prof = StackDistanceProfiler::new(SETS, ways, 1);
        let mut hits = 0u64;
        for &line in &trace {
            if cache.access(LineAddr::from_line_number(line), EntryKind::Data, false).hit {
                hits += 1;
            }
            prof.record(line % SETS, line / SETS, EntryKind::Data);
        }
        prop_assert_eq!(prof.counts(EntryKind::Data).hits_with_ways(ways), hits);
    }

    /// A partitioned cache serving a single kind behaves exactly like an
    /// unpartitioned cache with that partition's associativity.
    #[test]
    fn partitioned_cache_equals_smaller_cache_for_one_kind(
        trace in prop::collection::vec(0u64..400, 50..600),
        data_ways in 1u32..4,
    ) {
        const SETS: u64 = 8;
        let mut partitioned = Cache::new(SETS, 4, ReplacementKind::TrueLru);
        partitioned.set_partition(data_ways);
        let mut reference = Cache::new(SETS, data_ways, ReplacementKind::TrueLru);
        for &line in &trace {
            let addr = LineAddr::from_line_number(line);
            let a = partitioned.access(addr, EntryKind::Data, false).hit;
            let b = reference.access(addr, EntryKind::Data, false).hit;
            prop_assert_eq!(a, b, "partition must confine data to its ways");
        }
    }
}

/// NRU and BT-PLRU must approximate LRU: on a looping trace that fits
/// the cache, all policies converge to 100% hits.
#[test]
fn pseudo_lru_policies_retain_fitting_working_sets() {
    for kind in [
        ReplacementKind::TrueLru,
        ReplacementKind::Nru,
        ReplacementKind::BtPlru,
    ] {
        // BT-PLRU requires power-of-two associativity: 8 ways is fine.
        let mut cache = Cache::new(16, 8, kind);
        let lines: Vec<u64> = (0..96).collect(); // 6 ways' worth per set
                                                 // Warm.
        for &l in &lines {
            cache.access(LineAddr::from_line_number(l), EntryKind::Data, false);
        }
        let mut misses = 0;
        for _ in 0..10 {
            for &l in &lines {
                if !cache
                    .access(LineAddr::from_line_number(l), EntryKind::Data, false)
                    .hit
                {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 0, "{kind:?} evicted a fitting working set");
    }
}
