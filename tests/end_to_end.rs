//! Cross-crate integration tests: full simulations exercising the
//! public API the way the experiment harness does, checking the
//! paper's qualitative claims hold end to end.

use csalt::sim::{run, SimConfig};
use csalt::types::TranslationScheme;
use csalt::workloads::{paper_workloads, BenchKind, WorkloadSpec};

/// A fast configuration: 2 cores, small windows, scaled-down quantum,
/// and a footprint shrunk into the reuse regime so short runs reach
/// steady state. The paging-structure caches are disabled because at
/// this tiny footprint their 64 MiB reach would cover the entire
/// working set and hide the walk costs the schemes differ on (the full
/// experiment harness keeps them and uses full-scale footprints).
fn fast(workload: WorkloadSpec, scheme: TranslationScheme) -> SimConfig {
    let mut cfg = SimConfig::new(workload, scheme);
    cfg.system.cores = 2;
    cfg.system.cs_interval_cycles = 100_000;
    cfg.system.epoch_accesses = 16_000;
    cfg.system.psc.pml4_entries = 0;
    cfg.system.psc.pdp_entries = 0;
    cfg.system.psc.pde_entries = 0;
    cfg.scale = 0.05;
    cfg.accesses_per_core = 40_000;
    cfg.warmup_accesses_per_core = 40_000;
    cfg
}

fn gups() -> WorkloadSpec {
    WorkloadSpec::homogeneous("gups", BenchKind::Gups)
}

#[test]
fn pom_tlb_eliminates_most_page_walks() {
    // The headline Figure 8 claim: the large L3 TLB absorbs nearly all
    // L2 TLB misses that would otherwise walk.
    let conv = run(&fast(gups(), TranslationScheme::Conventional));
    let pom = run(&fast(gups(), TranslationScheme::PomTlb));
    assert!(
        conv.snapshot.page_walks > 10_000,
        "conventional walks a lot"
    );
    let eliminated = 1.0 - pom.snapshot.page_walks as f64 / conv.snapshot.page_walks as f64;
    assert!(
        eliminated > 0.9,
        "POM-TLB should eliminate >90% of walks, got {:.1}%",
        eliminated * 100.0
    );
}

#[test]
fn scheme_ordering_on_tlb_hostile_workload() {
    // Figure 7's ordering: conventional < POM-TLB <= CSALT-CD.
    let conv = run(&fast(gups(), TranslationScheme::Conventional));
    let pom = run(&fast(gups(), TranslationScheme::PomTlb));
    let csalt = run(&fast(gups(), TranslationScheme::CsaltCd));
    assert!(
        pom.ipc() > conv.ipc() * 1.2,
        "POM {:.4} should clearly beat conventional {:.4}",
        pom.ipc(),
        conv.ipc()
    );
    // At this shrunken footprint the translation working set fits the
    // L3 naturally, so partitioning has little to win (the paper's gups
    // bar shows the same: CSALT ≈ POM-TLB); require only that CSALT
    // stays competitive. The full-scale gains are checked by the
    // experiment harness (Figure 7).
    assert!(
        csalt.ipc() > pom.ipc() * 0.9,
        "CSALT-CD {:.4} should stay within 10% of POM {:.4}",
        csalt.ipc(),
        pom.ipc()
    );
}

#[test]
fn context_switching_inflates_l2_tlb_mpki() {
    // Figure 1: adding a second VM context multiplies the miss rate.
    let mut one = fast(gups(), TranslationScheme::Conventional);
    one.system.contexts_per_core = 1;
    let mut two = fast(gups(), TranslationScheme::Conventional);
    two.system.contexts_per_core = 2;
    let r1 = run(&one);
    let r2 = run(&two);
    assert!(
        r2.l2_tlb_mpki() > r1.l2_tlb_mpki() * 1.2,
        "2 contexts {:.1} MPKI vs 1 context {:.1} MPKI",
        r2.l2_tlb_mpki(),
        r1.l2_tlb_mpki()
    );
}

#[test]
fn translation_entries_occupy_substantial_cache_capacity() {
    // Figure 3: POM-TLB entries compete for the data caches.
    let mut cfg = fast(gups(), TranslationScheme::PomTlb);
    cfg.occupancy_scan_interval = 10_000;
    let r = run(&cfg);
    let (_, l3) = r.mean_occupancy();
    assert!(
        l3 > 0.05,
        "TLB entries should occupy noticeable L3 capacity, got {l3:.3}"
    );
}

#[test]
fn csalt_partitions_react_to_traffic() {
    let mut cfg = fast(gups(), TranslationScheme::CsaltCd);
    cfg.trace_partitions = true;
    let r = run(&cfg);
    assert!(
        !r.l3_partition_trace.is_empty(),
        "epochs must produce partition decisions"
    );
    for &(_, frac) in &r.l3_partition_trace {
        assert!(frac > 0.0 && frac < 1.0, "each kind keeps >= 1 way");
    }
    let (l2, l3) = r.final_partitions;
    assert!(l2.is_some() && l3.is_some());
}

#[test]
fn tsb_requires_more_translation_traffic_than_pom() {
    // §5.2: TSB's multi-access lookups congest the caches more.
    let pom = run(&fast(gups(), TranslationScheme::PomTlb));
    let tsb = run(&fast(gups(), TranslationScheme::Tsb));
    let pom_tlb_traffic = pom.snapshot.l2.tlb.accesses();
    let tsb_tlb_traffic = tsb.snapshot.l2.tlb.accesses();
    assert!(
        tsb_tlb_traffic as f64 > pom_tlb_traffic as f64 * 1.5,
        "TSB translation traffic {tsb_tlb_traffic} vs POM {pom_tlb_traffic}"
    );
    assert!(tsb.ipc() < pom.ipc(), "TSB should underperform POM-TLB");
}

#[test]
fn dip_tracks_pom_tlb() {
    // §5.2: DIP cannot exploit the data/TLB distinction.
    let pom = run(&fast(gups(), TranslationScheme::PomTlb));
    let dip = run(&fast(gups(), TranslationScheme::Dip));
    let ratio = dip.ipc() / pom.ipc();
    assert!(
        (0.85..1.15).contains(&ratio),
        "DIP should track POM-TLB closely, got ratio {ratio:.3}"
    );
}

#[test]
fn native_mode_runs_every_scheme() {
    // Figure 12 exercises the 1D-walk path.
    for scheme in [
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltCd,
    ] {
        let mut cfg = fast(gups(), scheme);
        cfg.virtualized = false;
        let r = run(&cfg);
        assert!(r.ipc() > 0.0, "{scheme}: zero IPC");
    }
}

#[test]
fn virtualized_walks_cost_more_than_native() {
    // Table 1's direction.
    let virt = run(&fast(gups(), TranslationScheme::Conventional));
    let mut cfg = fast(gups(), TranslationScheme::Conventional);
    cfg.virtualized = false;
    let native = run(&cfg);
    assert!(
        virt.snapshot.walk_cycles_per_walk() > native.snapshot.walk_cycles_per_walk(),
        "virtualized {:.0} <= native {:.0}",
        virt.snapshot.walk_cycles_per_walk(),
        native.snapshot.walk_cycles_per_walk()
    );
}

#[test]
fn all_paper_workloads_simulate_under_csalt() {
    for w in paper_workloads() {
        let mut cfg = fast(w.clone(), TranslationScheme::CsaltCd);
        cfg.accesses_per_core = 5_000;
        cfg.warmup_accesses_per_core = 5_000;
        let r = run(&cfg);
        assert!(r.ipc() > 0.0, "{}: zero IPC", w.name);
        assert_eq!(r.snapshot.accesses, 10_000);
    }
}

#[test]
fn static_partition_is_respected_all_run() {
    let r = run(&fast(
        gups(),
        TranslationScheme::StaticPartition { data_ways: 8 },
    ));
    assert_eq!(r.final_partitions.1, Some(8), "L3 static split must hold");
    assert!(r.ipc() > 0.0);
}

#[test]
fn snapshot_counters_are_consistent() {
    let r = run(&fast(gups(), TranslationScheme::CsaltCd));
    let s = &r.snapshot;
    // Every program access consults the L1 TLBs exactly once (both L1
    // TLB lookups count when the 2M probe is enabled; here it is not).
    assert_eq!(s.l1_tlb.accesses(), s.accesses);
    // L2 TLB sees exactly the L1 misses.
    assert_eq!(s.l2_tlb.accesses(), s.l1_tlb.misses);
    // The L1D sees every program access.
    assert_eq!(s.l1d.total().accesses(), s.accesses);
    // Translation + data cycle totals match the per-access accounting.
    assert!(s.translation_cycles > 0 && s.data_cycles > 0);
}

#[test]
fn results_are_deterministic_across_identical_runs() {
    let a = run(&fast(gups(), TranslationScheme::CsaltCd));
    let b = run(&fast(gups(), TranslationScheme::CsaltCd));
    assert_eq!(a.snapshot, b.snapshot);
    assert_eq!(a.core_cycles, b.core_cycles);
    assert_eq!(a.final_partitions, b.final_partitions);
}

#[test]
fn seeds_change_the_trace_but_not_the_shape() {
    let base = run(&fast(gups(), TranslationScheme::PomTlb));
    let mut cfg = fast(gups(), TranslationScheme::PomTlb);
    cfg.seed ^= 0xDEAD_BEEF;
    let other = run(&cfg);
    assert_ne!(base.core_cycles, other.core_cycles, "different trace");
    let rel = other.ipc() / base.ipc();
    assert!(
        (0.8..1.25).contains(&rel),
        "seed should not change IPC by 25%+, got {rel:.3}"
    );
}

#[test]
fn csalt_partitioning_helps_the_tsb_too() {
    // §5.2/§6: "the TSB system organization can leverage CSALT cache
    // partitioning schemes ... TSB architecture also sees performance
    // improvement".
    let tsb = run(&fast(gups(), TranslationScheme::Tsb));
    let tsb_csalt = run(&fast(gups(), TranslationScheme::TsbCsalt));
    assert!(
        tsb_csalt.ipc() > tsb.ipc() * 0.98,
        "TSB+CSALT {:.4} should not lose to plain TSB {:.4}",
        tsb_csalt.ipc(),
        tsb.ipc()
    );
    assert!(
        tsb_csalt.final_partitions.1.is_some(),
        "the TSB variant must actually partition"
    );
}

#[test]
fn drrip_tracks_pom_tlb_like_dip() {
    // §6: content-oblivious replacement cannot exploit the data/TLB
    // distinction; DRRIP, like DIP, should track POM-TLB.
    let pom = run(&fast(gups(), TranslationScheme::PomTlb));
    let drrip = run(&fast(gups(), TranslationScheme::Drrip));
    let ratio = drrip.ipc() / pom.ipc();
    assert!(
        (0.8..1.25).contains(&ratio),
        "DRRIP should track POM-TLB, got ratio {ratio:.3}"
    );
}

#[test]
fn five_level_paging_widens_csalt_advantage() {
    // §1: deeper tables strengthen the case for the large-TLB path.
    let gain_at = |levels: u8| {
        let mut conv = fast(gups(), TranslationScheme::Conventional);
        conv.system.pt_levels = levels;
        let mut csalt = fast(gups(), TranslationScheme::CsaltCd);
        csalt.system.pt_levels = levels;
        run(&csalt).ipc() / run(&conv).ipc()
    };
    let at4 = gain_at(4);
    let at5 = gain_at(5);
    assert!(
        at5 > at4,
        "CSALT's gain over conventional must grow with depth: 4-level {at4:.3}, 5-level {at5:.3}"
    );
}
