//! Checkpoint-image integrity tests: property-based round-trips of
//! [`HierarchyCheckpoint`] over reachable simulator states, plus the
//! rejection guarantees the fork-from-snapshot sweep relies on — a
//! torn tail at *every* byte length, a garbage header, and a stale
//! engine fingerprint must all decode to a clean error (never a panic,
//! never a silently wrong hierarchy).

use csalt::core::MemoryHierarchy;
use csalt::ptw::HugePagePolicy;
use csalt::sim::checkpoint::HierarchyCheckpoint;
use csalt::types::{CoreId, MemAccess, SystemConfig, TranslationScheme, VirtAddr};
use proptest::prelude::*;

/// A shrunken two-core machine: same shapes as `skylake()`, but small
/// enough that whole-image scans (every torn-tail length) stay cheap.
fn small_config() -> SystemConfig {
    let mut cfg = SystemConfig::skylake();
    cfg.cores = 2;
    cfg.l2.size_bytes = 64 << 10;
    cfg.l3.size_bytes = 256 << 10;
    cfg.pom_tlb.size_bytes = 64 << 10;
    cfg.epoch_accesses = 10_000;
    cfg
}

fn hier(cfg: &SystemConfig, scheme: TranslationScheme, virtualized: bool) -> MemoryHierarchy {
    MemoryHierarchy::new(cfg, scheme, virtualized, HugePagePolicy::NONE, 1)
}

/// Drives `h` through `addrs`, alternating cores and contexts. Each
/// tuple is `(address, selector, write)` where the selector's low bit
/// picks the core and the next bit the context.
fn drive(h: &mut MemoryHierarchy, cores: usize, vms: usize, addrs: &[(u64, usize, bool)]) {
    let ctxs: Vec<_> = (0..vms).map(|_| h.add_context()).collect();
    for &(addr, sel, write) in addrs {
        let a = VirtAddr::new(addr & !0x3f);
        let acc = if write {
            MemAccess::write(a, 4)
        } else {
            MemAccess::read(a, 4)
        };
        h.access(
            CoreId::new((sel % cores) as u8),
            ctxs[(sel / cores) % vms],
            acc,
        );
    }
}

/// A reference image over a nontrivial state: the richest scheme
/// (csalt-cd, virtualized) after a mixed read/write stream.
fn reference_image() -> (SystemConfig, Vec<u8>) {
    let cfg = small_config();
    let mut h = hier(&cfg, TranslationScheme::CsaltCd, true);
    let addrs: Vec<(u64, usize, bool)> = (0..600)
        .map(|i: u64| ((i * 0x1_013) << 6, (i % 4) as usize, i.is_multiple_of(5)))
        .collect();
    drive(&mut h, 2, 2, &addrs);
    let meta = HierarchyCheckpoint {
        current_vms: vec![1, 0],
        pops: vec![vec![300, 150], vec![75, 75]],
    };
    (cfg.clone(), meta.encode(&h, "fp-reference"))
}

proptest! {
    /// Encode → decode-into-fresh → re-encode is the identity on the
    /// image, for arbitrary reachable states across schemes and both
    /// native/virtualized walkers: the decoded hierarchy contains
    /// exactly the serialized state, and the scheduling metadata
    /// round-trips field-for-field.
    #[test]
    fn image_round_trips_over_reachable_states(
        scheme_idx in 0usize..4,
        virtualized in any::<bool>(),
        vm0 in 0u32..2,
        vm1 in 0u32..2,
        pops in prop::collection::vec(prop::collection::vec(0u64..1_000, 2), 2),
        addrs in prop::collection::vec(
            (0u64..(1u64 << 32), 0usize..4, any::<bool>()),
            1..250,
        ),
    ) {
        let schemes = [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltD,
            TranslationScheme::CsaltCd,
        ];
        let cfg = small_config();
        let mut h = hier(&cfg, schemes[scheme_idx], virtualized);
        drive(&mut h, 2, 2, &addrs);
        let meta = HierarchyCheckpoint { current_vms: vec![vm0, vm1], pops };
        let image = meta.encode(&h, "fp-prop");

        let mut fresh = hier(&cfg, schemes[scheme_idx], virtualized);
        for _ in 0..2 {
            fresh.add_context();
        }
        let got = HierarchyCheckpoint::decode_into(&image, "fp-prop", &mut fresh, 2, 2)
            .expect("image decodes into a same-shape hierarchy");
        prop_assert_eq!(&got, &meta, "scheduling metadata round-trips");
        prop_assert_eq!(
            got.encode(&fresh, "fp-prop"),
            image,
            "restored hierarchy re-encodes to the identical image"
        );
    }
}

/// Every proper prefix of a valid image — a write torn at any byte —
/// must be rejected. The decoder validates lengths before it allocates
/// or copies, so this also bounds allocation on hostile input.
#[test]
fn torn_tail_rejected_at_every_length() {
    let (cfg, image) = reference_image();
    let mut scratch = hier(&cfg, TranslationScheme::CsaltCd, true);
    for _ in 0..2 {
        scratch.add_context();
    }
    for len in 0..image.len() {
        let r = HierarchyCheckpoint::decode_into(&image[..len], "fp-reference", &mut scratch, 2, 2);
        assert!(
            r.is_err(),
            "truncation to {len} of {} bytes must fail",
            image.len()
        );
    }
    // The untruncated image still decodes — the scratch hierarchy's
    // partial overwrites never make it unusable as a decode target.
    HierarchyCheckpoint::decode_into(&image, "fp-reference", &mut scratch, 2, 2)
        .expect("full image decodes after every torn-tail attempt");
}

/// A corrupted header (any damage to the leading magic/version bytes)
/// is rejected outright.
#[test]
fn garbage_header_rejected() {
    let (cfg, image) = reference_image();
    let mut scratch = hier(&cfg, TranslationScheme::CsaltCd, true);
    for _ in 0..2 {
        scratch.add_context();
    }
    for byte in 0..16.min(image.len()) {
        let mut bad = image.clone();
        bad[byte] ^= 0xa5;
        let r = HierarchyCheckpoint::decode_into(&bad, "fp-reference", &mut scratch, 2, 2);
        assert!(r.is_err(), "flipping header byte {byte} must fail");
    }
    // All-garbage input of various sizes: clean errors, no panics.
    for n in [0usize, 1, 7, 16, 64, 4096] {
        let junk = vec![0x5au8; n];
        assert!(
            HierarchyCheckpoint::decode_into(&junk, "fp-reference", &mut scratch, 2, 2).is_err(),
            "{n} bytes of junk must fail"
        );
    }
}

/// An image saved under a different engine fingerprint — a stale cache
/// entry surviving an engine change — must be rejected, and the exact
/// same bytes must decode under the fingerprint they were saved with.
#[test]
fn stale_fingerprint_rejected() {
    let (cfg, image) = reference_image();
    let mut scratch = hier(&cfg, TranslationScheme::CsaltCd, true);
    for _ in 0..2 {
        scratch.add_context();
    }
    assert!(
        HierarchyCheckpoint::decode_into(&image, "fp-other-engine", &mut scratch, 2, 2).is_err(),
        "stale fingerprint must be rejected"
    );
    HierarchyCheckpoint::decode_into(&image, "fp-reference", &mut scratch, 2, 2)
        .expect("the matching fingerprint still decodes");
}

/// Shape mismatches between the image and the receiving run — wrong
/// core count or VM count — are rejected before any state is trusted.
#[test]
fn shape_mismatch_rejected() {
    let (cfg, image) = reference_image();
    let mut scratch = hier(&cfg, TranslationScheme::CsaltCd, true);
    for _ in 0..2 {
        scratch.add_context();
    }
    assert!(
        HierarchyCheckpoint::decode_into(&image, "fp-reference", &mut scratch, 4, 2).is_err(),
        "wrong core count must be rejected"
    );
    assert!(
        HierarchyCheckpoint::decode_into(&image, "fp-reference", &mut scratch, 2, 3).is_err(),
        "wrong vm count must be rejected"
    );
}
