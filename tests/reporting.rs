//! Tests for the experiment reporting surface: table construction,
//! geometric means, and both render formats.

use csalt::sim::experiments::{Row, Table};

fn sample() -> Table {
    Table {
        id: "Figure X: sample".into(),
        columns: vec!["a".into(), "b".into()],
        rows: vec![
            Row {
                label: "w1".into(),
                values: vec![0.5, 2.0],
            },
            Row {
                label: "w2".into(),
                values: vec![2.0, 8.0],
            },
        ],
        geomean: vec![1.0, 4.0],
    }
}

#[test]
fn plain_render_contains_all_cells() {
    let s = sample().render();
    for needle in [
        "Figure X", "w1", "w2", "0.500", "8.000", "geomean", "1.000", "4.000",
    ] {
        assert!(s.contains(needle), "missing {needle} in:\n{s}");
    }
}

#[test]
fn markdown_render_is_a_valid_table() {
    let md = sample().render_markdown();
    let lines: Vec<&str> = md.lines().collect();
    assert!(lines[0].starts_with("| workload |"));
    assert!(lines[1].starts_with("|---|"));
    // Header, separator, 2 rows, geomean.
    assert_eq!(lines.len(), 5);
    // Every row has the same number of pipes.
    let pipes = |l: &str| l.matches('|').count();
    assert!(lines.iter().all(|l| pipes(l) == pipes(lines[0])));
    assert!(md.contains("**geomean**"));
}

#[test]
fn tables_serialize_round_trip() {
    let t = sample();
    let json = serde_json::to_string(&t).expect("serialize");
    let back: Table = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.id, t.id);
    assert_eq!(back.rows.len(), 2);
    assert_eq!(back.geomean, t.geomean);
}
