//! Determinism snapshot: pins the exact counter values of a small
//! fixed-seed run for every [`TranslationScheme`].
//!
//! The hot-path engine (arena page tables, flattened TSB, enum-dispatched
//! generators) is free to get faster, but it is NOT free to change
//! results: every figure in the reproduction depends on these counters
//! being a pure function of (config, seed). Any change that alters them —
//! a reordered allocation, a different hash iteration order leaking into
//! frame placement, an off-by-one in a scratch buffer — fails this test
//! loudly instead of silently skewing every experiment table.
//!
//! If a change is *intended* to alter results (a model change, not an
//! optimization), regenerate the table below with
//! `cargo test --test determinism -- --nocapture print_fingerprints`
//! and say so in the commit message.

use csalt::sim::{run, SimConfig, SimResult, WarmupMode};
use csalt::types::TranslationScheme;
use csalt::workloads::{BenchKind, WorkloadSpec};

/// The schemes under pinning, with stable labels for the table.
fn schemes() -> Vec<TranslationScheme> {
    vec![
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::CsaltCd,
        TranslationScheme::Dip,
        TranslationScheme::Tsb,
        TranslationScheme::StaticPartition { data_ways: 12 },
        TranslationScheme::TsbCsalt,
        TranslationScheme::Drrip,
    ]
}

/// A small but non-trivial fixed-seed configuration: two cores, two
/// contexts per core, context switches and repartitioning epochs all
/// exercised, small enough to run in the debug test suite.
fn config(scheme: TranslationScheme) -> SimConfig {
    let mut cfg = SimConfig::new(
        WorkloadSpec::pair("g500_gups", BenchKind::Graph500, BenchKind::Gups),
        scheme,
    );
    cfg.system.cores = 2;
    cfg.system.cs_interval_cycles = 40_000;
    cfg.system.epoch_accesses = 10_000;
    cfg.accesses_per_core = 12_000;
    cfg.warmup_accesses_per_core = 6_000;
    cfg.scale = 0.05;
    cfg
}

/// The counter fingerprint one run pins: enough to catch any behavioural
/// divergence (cycle charges, walk counts, TLB traffic, per-core timing).
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    translation_cycles: u64,
    data_cycles: u64,
    page_walks: u64,
    page_walk_cycles: u64,
    l2_tlb_hits: u64,
    l2_tlb_misses: u64,
    total_core_cycles: u64,
    context_switches: u64,
}

fn fingerprint(r: &SimResult) -> Fingerprint {
    Fingerprint {
        translation_cycles: r.snapshot.translation_cycles,
        data_cycles: r.snapshot.data_cycles,
        page_walks: r.snapshot.page_walks,
        page_walk_cycles: r.snapshot.page_walk_cycles,
        l2_tlb_hits: r.snapshot.l2_tlb.hits,
        l2_tlb_misses: r.snapshot.l2_tlb.misses,
        total_core_cycles: r.core_cycles.iter().sum(),
        context_switches: r.context_switches,
    }
}

/// Pinned values. Regenerate with `print_fingerprints` (see module docs).
fn expected(scheme: TranslationScheme) -> Fingerprint {
    let v: [u64; 8] = match scheme {
        TranslationScheme::Conventional => [965950, 2436468, 6312, 816384, 2486, 6312, 1697140, 40],
        TranslationScheme::PomTlb => [1358104, 2459871, 2560, 593133, 2488, 6407, 2113527, 49],
        TranslationScheme::CsaltD => [1367737, 2468844, 2553, 598995, 2494, 6390, 2127451, 50],
        TranslationScheme::CsaltCd => [1366702, 2481240, 2554, 597204, 2498, 6406, 2127669, 49],
        TranslationScheme::Dip => [1355753, 2462676, 2561, 594141, 2490, 6406, 2111944, 49],
        TranslationScheme::Tsb => [1986534, 2409600, 2686, 605451, 2673, 5916, 2758006, 64],
        TranslationScheme::StaticPartition { .. } => {
            [1626660, 2429733, 2543, 660822, 2519, 6277, 2385950, 55]
        }
        TranslationScheme::TsbCsalt => [1937333, 2433063, 2680, 601713, 2667, 5893, 2712975, 63],
        TranslationScheme::Drrip => [1347060, 2466444, 2560, 592230, 2486, 6406, 2104200, 49],
    };
    Fingerprint {
        translation_cycles: v[0],
        data_cycles: v[1],
        page_walks: v[2],
        page_walk_cycles: v[3],
        l2_tlb_hits: v[4],
        l2_tlb_misses: v[5],
        total_core_cycles: v[6],
        context_switches: v[7],
    }
}

/// Prints the current fingerprint table in the exact form `expected`
/// wants, for regeneration after an intended model change.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_fingerprints() {
    for scheme in schemes() {
        let r = run(&config(scheme));
        let f = fingerprint(&r);
        println!(
            "TranslationScheme::{scheme:?} => [{}, {}, {}, {}, {}, {}, {}, {}],",
            f.translation_cycles,
            f.data_cycles,
            f.page_walks,
            f.page_walk_cycles,
            f.l2_tlb_hits,
            f.l2_tlb_misses,
            f.total_core_cycles,
            f.context_switches,
        );
    }
}

#[test]
fn every_scheme_matches_its_pinned_fingerprint() {
    for scheme in schemes() {
        let r = run(&config(scheme));
        assert_eq!(
            fingerprint(&r),
            expected(scheme),
            "scheme {scheme:?} diverged from its pinned counters"
        );
    }
}

/// The L0 hit-way memo is a scan-skip, not a model change: the pinned
/// table must hold byte-for-byte with the memo force-disabled and
/// force-enabled. (Tests racing on the env var in parallel are
/// unaffected for exactly the reason this test exists — both settings
/// produce identical counters.)
#[test]
fn pinned_fingerprints_hold_with_l0_memo_off_and_on() {
    for setting in ["off", "on"] {
        std::env::set_var("CSALT_L0", setting);
        for scheme in schemes() {
            let r = run(&config(scheme));
            assert_eq!(
                fingerprint(&r),
                expected(scheme),
                "scheme {scheme:?} diverged from its pinned counters with CSALT_L0={setting}"
            );
        }
    }
    std::env::remove_var("CSALT_L0");
}

/// The pinned run on native (non-virtualized) translation — one-level
/// walks, no nested dimension — so the checkpoint matrix below covers
/// both walker shapes.
fn native_config(scheme: TranslationScheme) -> SimConfig {
    let mut cfg = config(scheme);
    cfg.virtualized = false;
    cfg
}

/// Pinned values for the native run. Regenerate with
/// `print_native_fingerprints`.
fn expected_native(scheme: TranslationScheme) -> Fingerprint {
    let v: [u64; 8] = match scheme {
        TranslationScheme::Conventional => [705913, 2420298, 6286, 557622, 2437, 6286, 1418730, 33],
        TranslationScheme::PomTlb => [1230380, 2472333, 2574, 461154, 2486, 6456, 1985107, 47],
        TranslationScheme::CsaltD => [1240092, 2474184, 2573, 462180, 2486, 6450, 1995255, 47],
        TranslationScheme::CsaltCd => [1236905, 2476614, 2574, 461982, 2485, 6446, 1992685, 47],
        TranslationScheme::Dip => [1225903, 2476431, 2571, 460191, 2484, 6450, 1981671, 47],
        TranslationScheme::Tsb => [1172979, 2391240, 2718, 456363, 2599, 5963, 1899816, 44],
        TranslationScheme::StaticPartition { .. } => {
            [1425118, 2432748, 2546, 460758, 2497, 6289, 2177220, 51]
        }
        TranslationScheme::TsbCsalt => [1164361, 2409015, 2719, 457326, 2601, 5969, 1895870, 44],
        TranslationScheme::Drrip => [1214624, 2478867, 2568, 457899, 2480, 6441, 1967036, 45],
    };
    Fingerprint {
        translation_cycles: v[0],
        data_cycles: v[1],
        page_walks: v[2],
        page_walk_cycles: v[3],
        l2_tlb_hits: v[4],
        l2_tlb_misses: v[5],
        total_core_cycles: v[6],
        context_switches: v[7],
    }
}

/// Prints the native fingerprint table in the exact form
/// `expected_native` wants.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_native_fingerprints() {
    for scheme in schemes() {
        let r = run(&native_config(scheme));
        let f = fingerprint(&r);
        println!(
            "TranslationScheme::{scheme:?} => [{}, {}, {}, {}, {}, {}, {}, {}],",
            f.translation_cycles,
            f.data_cycles,
            f.page_walks,
            f.page_walk_cycles,
            f.l2_tlb_hits,
            f.l2_tlb_misses,
            f.total_core_cycles,
            f.context_switches,
        );
    }
}

/// The checkpointed-warmup contract: restored runs are bit-identical to
/// straight-through runs. Every scheme × virtualized/native runs twice
/// per `CSALT_CKPT` setting — with checkpointing on, the first pass of
/// a warmup prefix saves the snapshot and the second restores it, so
/// both the save path and the restore path must reproduce the pinned
/// tables byte-for-byte. (As with the L0 matrix above, env-var races
/// between parallel tests are harmless precisely because both settings
/// produce identical counters.)
#[test]
fn pinned_fingerprints_hold_with_checkpointing_off_and_on() {
    for setting in ["off", "on"] {
        std::env::set_var("CSALT_CKPT", setting);
        for scheme in schemes() {
            for pass in 0..2 {
                let r = run(&config(scheme));
                assert_eq!(
                    fingerprint(&r),
                    expected(scheme),
                    "scheme {scheme:?} diverged with CSALT_CKPT={setting} (pass {pass})"
                );
                let r = run(&native_config(scheme));
                assert_eq!(
                    fingerprint(&r),
                    expected_native(scheme),
                    "native {scheme:?} diverged with CSALT_CKPT={setting} (pass {pass})"
                );
            }
        }
    }
    std::env::remove_var("CSALT_CKPT");
}

/// The same fixed-seed run with functional (state-only) warmup and
/// SMARTS-style sampled measurement windows — the fast-forward path's
/// own pinned table. The access stream is identical to the timed run;
/// only where cycle accounting happens differs, so these counters are
/// equally a pure function of (config, seed).
fn functional_config(scheme: TranslationScheme) -> SimConfig {
    let mut cfg = config(scheme);
    cfg.warmup_mode = WarmupMode::Functional;
    cfg.sample_windows = 3;
    cfg.window_accesses = 3_000;
    cfg
}

/// Pinned values for the functional-warmup sampled-window run.
/// Regenerate with `print_functional_fingerprints`.
fn expected_functional(scheme: TranslationScheme) -> Fingerprint {
    let v: [u64; 8] = match scheme {
        TranslationScheme::Conventional => [783170, 1737402, 4258, 674574, 2130, 4258, 1309984, 31],
        TranslationScheme::PomTlb => [1111646, 1732098, 2118, 542325, 2173, 4186, 1650996, 38],
        TranslationScheme::CsaltD => [1110383, 1734978, 2108, 544875, 2169, 4179, 1650453, 38],
        TranslationScheme::CsaltCd => [1110383, 1734978, 2108, 544875, 2169, 4179, 1650453, 38],
        TranslationScheme::Dip => [1110913, 1729113, 2115, 542988, 2172, 4179, 1649482, 38],
        TranslationScheme::Tsb => [1472077, 1668447, 2027, 489876, 2410, 3658, 2012445, 47],
        TranslationScheme::StaticPartition { .. } => {
            [1206918, 1713021, 2144, 575226, 2159, 4135, 1745227, 40]
        }
        TranslationScheme::TsbCsalt => [1439236, 1687932, 2015, 485592, 2418, 3647, 1982702, 46],
        TranslationScheme::Drrip => [1101049, 1736451, 2118, 540030, 2179, 4182, 1641521, 38],
    };
    Fingerprint {
        translation_cycles: v[0],
        data_cycles: v[1],
        page_walks: v[2],
        page_walk_cycles: v[3],
        l2_tlb_hits: v[4],
        l2_tlb_misses: v[5],
        total_core_cycles: v[6],
        context_switches: v[7],
    }
}

/// Prints the functional-warmup fingerprint table in the exact form
/// `expected_functional` wants.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_functional_fingerprints() {
    for scheme in schemes() {
        let r = run(&functional_config(scheme));
        let f = fingerprint(&r);
        println!(
            "TranslationScheme::{scheme:?} => [{}, {}, {}, {}, {}, {}, {}, {}],",
            f.translation_cycles,
            f.data_cycles,
            f.page_walks,
            f.page_walk_cycles,
            f.l2_tlb_hits,
            f.l2_tlb_misses,
            f.total_core_cycles,
            f.context_switches,
        );
    }
}

#[test]
fn every_scheme_matches_its_pinned_functional_fingerprint() {
    for scheme in schemes() {
        let r = run(&functional_config(scheme));
        assert_eq!(
            fingerprint(&r),
            expected_functional(scheme),
            "scheme {scheme:?} diverged from its pinned functional-warmup counters"
        );
    }
}
