//! Cross-crate property-based tests (proptest) on the invariants the
//! simulator's correctness rests on.

use csalt::cache::{way_range_mask, Cache, SetReplacement};
use csalt::profiler::{choose_partition, StackDistanceProfiler, Weights};
use csalt::ptw::{FrameAllocator, HugePagePolicy, NativeWalker, RadixPageTable};
use csalt::tlb::{PomTlb, SramTlb};
use csalt::types::{
    Asid, EntryKind, LineAddr, PageSize, PhysFrame, PomTlbConfig, ReplacementKind, SystemConfig,
    TlbGeometry, VirtAddr, VirtPage,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// A cache never holds the same tag twice in one set, and a probe
    /// after an access always hits.
    #[test]
    fn cache_no_duplicate_lines(accesses in prop::collection::vec((0u64..4096, any::<bool>()), 1..400)) {
        let mut cache = Cache::new(64, 4, ReplacementKind::TrueLru);
        let mut last = None;
        for (line, write) in accesses {
            let addr = LineAddr::from_line_number(line);
            cache.access(addr, EntryKind::Data, write);
            last = Some(addr);
        }
        prop_assert!(cache.probe(last.expect("nonempty")));
        // Re-access everything: a hit implies single residency; the
        // stats stay consistent.
        let s = *cache.stats();
        prop_assert_eq!(s.total().accesses(), s.data.accesses() + s.tlb.accesses());
    }

    /// Partitioned fills never evict the other kind's lines.
    #[test]
    fn partition_never_crosses_kinds(
        data_ways in 1u32..4,
        ops in prop::collection::vec((0u64..2048, any::<bool>()), 1..500),
    ) {
        let mut cache = Cache::new(16, 4, ReplacementKind::TrueLru);
        cache.set_partition(data_ways);
        for (line, is_tlb) in ops {
            let kind = if is_tlb { EntryKind::Tlb } else { EntryKind::Data };
            let out = cache.access(LineAddr::from_line_number(line), kind, false);
            if let Some(ev) = out.evicted {
                prop_assert_eq!(ev.kind, kind, "eviction crossed the partition");
            }
        }
    }

    /// Replacement victim always comes from the allowed mask, for every
    /// policy.
    #[test]
    fn victims_respect_masks(
        touches in prop::collection::vec(0u32..8, 0..50),
        lo in 0u32..7,
        len in 1u32..8,
    ) {
        let hi = (lo + len).min(8);
        for kind in [ReplacementKind::TrueLru, ReplacementKind::Nru, ReplacementKind::BtPlru] {
            let mut r = SetReplacement::new(kind, 8);
            for &t in &touches {
                r.touch(t);
            }
            let mask = way_range_mask(lo, hi);
            let v = r.victim(mask);
            prop_assert!(mask & (1u64 << v) != 0, "{kind:?}: victim {v} outside {lo}..{hi}");
        }
    }

    /// MSA profiler counters always sum to the number of recorded
    /// accesses, and predicted hits grow monotonically with ways.
    #[test]
    fn msa_counters_are_conservative(
        ops in prop::collection::vec((0u64..32, 0u64..64, any::<bool>()), 1..500),
    ) {
        let mut p = StackDistanceProfiler::new(32, 8, 1);
        for &(set, tag, is_tlb) in &ops {
            let kind = if is_tlb { EntryKind::Tlb } else { EntryKind::Data };
            p.record(set, tag, kind);
        }
        prop_assert_eq!(p.accesses(), ops.len() as u64);
        for kind in [EntryKind::Data, EntryKind::Tlb] {
            let c = p.counts(kind);
            let mut prev = 0;
            for n in 0..=8 {
                let h = c.hits_with_ways(n);
                prop_assert!(h >= prev, "prediction must be monotone");
                prev = h;
            }
            prop_assert!(c.hits_with_ways(8) + c.misses() == c.accesses());
        }
    }

    /// The chosen partition always maximizes weighted marginal utility
    /// over the feasible range.
    #[test]
    fn partition_choice_is_argmax(
        data in prop::collection::vec(0u64..1000, 9..=9),
        tlb in prop::collection::vec(0u64..1000, 9..=9),
        s_dat in 1.0f64..8.0,
        s_tr in 1.0f64..8.0,
    ) {
        use csalt::profiler::{weighted_marginal_utility, LruStackCounts};
        let d = LruStackCounts::new(data);
        let t = LruStackCounts::new(tlb);
        let w = Weights::new(s_dat, s_tr);
        let dec = choose_partition(&d, &t, 1, w);
        for n in 1..=7 {
            let mu = weighted_marginal_utility(&d, &t, n, w);
            prop_assert!(dec.utility >= mu, "n={n} beats the chosen split");
        }
    }

    /// Page-table translations round-trip: the same VA always yields the
    /// same frame, distinct pages yield distinct frames, and offsets are
    /// preserved.
    #[test]
    fn page_table_translations_are_stable(vas in prop::collection::vec(0u64..(1u64 << 40), 1..60)) {
        let mut alloc = FrameAllocator::new(0, 4 << 30);
        let mut pt = RadixPageTable::new(&mut alloc, HugePagePolicy::NONE);
        let mut by_page: HashMap<u64, u64> = HashMap::new();
        for raw in vas {
            let va = VirtAddr::new(raw);
            let w1 = pt.walk_or_map(va, &mut alloc);
            let w2 = pt.walk_or_map(va, &mut alloc);
            prop_assert_eq!(w1.frame, w2.frame);
            let pa = w1.frame.translate(va);
            prop_assert_eq!(pa.page_offset(PageSize::Size4K), va.page_offset(PageSize::Size4K));
            let vpn = raw >> 12;
            let pfn = w1.frame.pfn();
            if let Some(prev) = by_page.insert(vpn, pfn) {
                prop_assert_eq!(prev, pfn, "remap changed the frame");
            }
        }
        // Distinct pages map to distinct frames.
        let frames: HashSet<u64> = by_page.values().copied().collect();
        prop_assert_eq!(frames.len(), by_page.len());
    }

    /// Native page walks read at most 4 PTEs and at least 1.
    #[test]
    fn native_walk_access_counts(vas in prop::collection::vec(0u64..(1u64 << 39), 1..50)) {
        let mut alloc = FrameAllocator::new(0, 4 << 30);
        let mut w = NativeWalker::new(
            Asid::new(0),
            &mut alloc,
            HugePagePolicy::NONE,
            SystemConfig::skylake().psc,
        );
        for raw in vas {
            let out = w.walk(VirtAddr::new(raw), &mut alloc);
            prop_assert!((1..=4).contains(&out.accesses.len()));
        }
    }

    /// The POM-TLB always reports lines inside its aperture and recalls
    /// exactly what was inserted while capacity allows.
    #[test]
    fn pom_tlb_recalls_inserts(vpns in prop::collection::vec(0u64..100_000, 1..100)) {
        let cfg = PomTlbConfig {
            size_bytes: 4 << 20,
            ways: 4,
            entry_bytes: 16,
            base: 0x7e00_0000_0000,
        };
        let mut pom = PomTlb::new(cfg);
        let asid = Asid::new(3);
        let mut expected = HashMap::new();
        for (i, &vpn) in vpns.iter().enumerate() {
            let page = VirtPage::from_vpn(vpn, PageSize::Size4K);
            let frame = PhysFrame::from_pfn(i as u64 + 1, PageSize::Size4K);
            pom.insert(page, asid, frame);
            expected.insert(vpn, frame);
        }
        // With far fewer inserts than capacity (256K entries), every
        // translation must still be present.
        for (&vpn, &frame) in &expected {
            let page = VirtPage::from_vpn(vpn, PageSize::Size4K);
            let r = pom.lookup(page, asid);
            prop_assert_eq!(r.frame, Some(frame));
            prop_assert!(pom.owns(r.line.base()));
        }
    }

    /// SRAM TLB inserts are always immediately visible and ASID-scoped.
    #[test]
    fn sram_tlb_inserts_visible(vpns in prop::collection::vec(0u64..10_000, 1..60)) {
        let mut tlb = SramTlb::new(TlbGeometry { entries: 1536, ways: 12, latency: 17 });
        for &vpn in &vpns {
            let page = VirtPage::from_vpn(vpn, PageSize::Size4K);
            let frame = PhysFrame::from_pfn(vpn + 7, PageSize::Size4K);
            tlb.insert(page, Asid::new(1), frame);
            prop_assert_eq!(tlb.lookup(page, Asid::new(1)), Some(frame));
            prop_assert!(tlb.lookup(page, Asid::new(2)).is_none());
        }
    }

    /// Workload generators are deterministic and keep addresses inside
    /// their declared footprint's VA span.
    #[test]
    fn generators_deterministic_any_seed(seed in any::<u64>()) {
        use csalt::workloads::BenchKind;
        for kind in BenchKind::ALL {
            let mut a = kind.build(seed, 0.1);
            let mut b = kind.build(seed, 0.1);
            for _ in 0..50 {
                prop_assert_eq!(a.next_access(), b.next_access());
            }
        }
    }

    /// Conservation laws (CSALT-A101..A108) hold at the end of randomized
    /// short simulations, for every translation scheme: counters are never
    /// lost or double-counted regardless of seed, scheme, context count or
    /// epoch length.
    #[test]
    fn conservation_laws_hold_across_schemes(
        seed in any::<u64>(),
        scheme_idx in 0usize..9,
        contexts in 1u32..3,
        accesses in 2_000u64..6_000,
    ) {
        use csalt::audit::conservation;
        use csalt::sim::{run, SimConfig};
        use csalt::types::TranslationScheme;
        use csalt::workloads::{BenchKind, WorkloadSpec};

        let schemes = [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltD,
            TranslationScheme::CsaltCd,
            TranslationScheme::Dip,
            TranslationScheme::Tsb,
            TranslationScheme::TsbCsalt,
            TranslationScheme::Drrip,
            TranslationScheme::StaticPartition { data_ways: 8 },
        ];
        let scheme = schemes[scheme_idx];
        let mut cfg = SimConfig::new(
            WorkloadSpec::homogeneous("gups", BenchKind::Gups),
            scheme,
        );
        cfg.system.cores = 1;
        cfg.system.contexts_per_core = contexts;
        cfg.system.cs_interval_cycles = 20_000;
        cfg.system.epoch_accesses = 1_500;
        cfg.seed = seed;
        cfg.scale = 0.05;
        cfg.accesses_per_core = accesses;
        cfg.warmup_accesses_per_core = 1_000;
        let r = run(&cfg);

        let diags = conservation::audit_snapshot(&r.workload, &r.snapshot, &scheme);
        prop_assert!(diags.is_empty(), "conservation violated: {diags:?}");
        let ipc_diags = conservation::audit_ipc(&r.workload, r.ipc(), r.instructions);
        prop_assert!(ipc_diags.is_empty(), "IPC not usable: {ipc_diags:?}");
        prop_assert_eq!(r.snapshot.accesses, accesses);
    }
}

proptest! {
    /// Per-epoch snapshot deltas recompose exactly to the final totals:
    /// for an arbitrary access stream cut into arbitrary epochs, summing
    /// `delta_since` over consecutive checkpoint pairs gives the same
    /// counters as the whole run (the invariant the telemetry stream's
    /// `EpochRecord`s rely on).
    #[test]
    fn snapshot_epoch_deltas_recompose(
        scheme_idx in 0usize..4,
        addrs in prop::collection::vec(0u64..(1u64 << 30), 32..300),
        cuts in prop::collection::vec(any::<bool>(), 32..300),
    ) {
        use csalt::core::MemoryHierarchy;
        use csalt::types::{CoreId, MemAccess, SystemConfig, TranslationScheme, VirtAddr};

        let schemes = [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltCd,
            TranslationScheme::Tsb,
        ];
        let mut h = MemoryHierarchy::new(
            &SystemConfig::skylake(),
            schemes[scheme_idx],
            true,
            HugePagePolicy::NONE,
            1,
        );
        let ctx = h.add_context();
        let core = CoreId::new(0);
        let mut checkpoints = vec![h.snapshot()];
        for (i, addr) in addrs.iter().enumerate() {
            h.access(core, ctx, MemAccess::read(VirtAddr::new(addr & !0x3f), 4));
            if cuts.get(i).copied().unwrap_or(false) {
                checkpoints.push(h.snapshot());
            }
        }
        let end = h.snapshot();
        checkpoints.push(end.clone());

        let mut acc = 0u64;
        let mut xl = 0u64;
        let mut data = 0u64;
        let mut walks = 0u64;
        let mut l2t = 0u64;
        let mut ddr = 0u64;
        let mut stacked = 0u64;
        for pair in checkpoints.windows(2) {
            let d = pair[1].delta_since(&pair[0]);
            acc += d.accesses;
            xl += d.translation_cycles;
            data += d.data_cycles;
            walks += d.page_walks;
            l2t += d.l2_tlb.accesses();
            ddr += d.ddr.accesses;
            stacked += d.stacked.accesses;
        }
        prop_assert_eq!(acc, end.accesses);
        prop_assert_eq!(acc, addrs.len() as u64);
        prop_assert_eq!(xl, end.translation_cycles);
        prop_assert_eq!(data, end.data_cycles);
        prop_assert_eq!(walks, end.page_walks);
        prop_assert_eq!(l2t, end.l2_tlb.accesses());
        prop_assert_eq!(ddr, end.ddr.accesses);
        prop_assert_eq!(stacked, end.stacked.accesses);
    }

    /// Every scheme's CLI label parses back to the same scheme.
    #[test]
    fn scheme_labels_round_trip(data_ways in 1u32..16) {
        use csalt::types::TranslationScheme;
        let schemes = [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltD,
            TranslationScheme::CsaltCd,
            TranslationScheme::Dip,
            TranslationScheme::Tsb,
            TranslationScheme::TsbCsalt,
            TranslationScheme::Drrip,
            TranslationScheme::StaticPartition { data_ways },
        ];
        for s in schemes {
            prop_assert_eq!(TranslationScheme::parse_label(&s.label()), Some(s));
        }
        prop_assert_eq!(TranslationScheme::parse_label("bogus"), None);
        prop_assert_eq!(TranslationScheme::parse_label("static-x"), None);
    }

    /// The sweep engine's content address of a `SimConfig` is invariant
    /// under serde round-trips: serializing a config to JSON and
    /// parsing it back may not change its canonical form or hash, for
    /// arbitrary field values (including floats, which must round-trip
    /// exactly through the shortest-form formatter). A persisted cache
    /// entry therefore always re-addresses to the key it was stored
    /// under.
    #[test]
    fn sweep_config_key_survives_serde_round_trip(
        accesses in 1_000u64..2_000_000,
        warmup in 0u64..2_000_000,
        cores in 1u32..9,
        contexts in 1u32..5,
        seed in 0u64..u64::MAX,
        scheme_idx in 0usize..9,
        data_ways in 1u32..16,
        scale_milli in 10u64..3_000,
        huge_milli in 0u64..1_001,
        virtualized in any::<bool>(),
    ) {
        use csalt::sim::sweep::{canonical_json, config_key};
        use csalt::sim::SimConfig;
        use csalt::types::TranslationScheme;
        use csalt::workloads::{BenchKind, WorkloadSpec};

        let schemes = [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltD,
            TranslationScheme::CsaltCd,
            TranslationScheme::Dip,
            TranslationScheme::Tsb,
            TranslationScheme::TsbCsalt,
            TranslationScheme::Drrip,
            TranslationScheme::StaticPartition { data_ways },
        ];
        let mut cfg = SimConfig::new(
            WorkloadSpec::pair("g500_gups", BenchKind::Graph500, BenchKind::Gups),
            schemes[scheme_idx],
        );
        cfg.accesses_per_core = accesses;
        cfg.warmup_accesses_per_core = warmup;
        cfg.system.cores = cores;
        cfg.system.contexts_per_core = contexts;
        cfg.seed = seed;
        cfg.scale = scale_milli as f64 / 999.0;
        cfg.huge_fraction = huge_milli as f64 / 1000.0;
        cfg.virtualized = virtualized;

        let text = serde_json::to_string(&cfg).expect("config serializes");
        let back: SimConfig = serde_json::from_str(&text).expect("config parses");
        prop_assert_eq!(&back, &cfg, "serde round-trip is lossless");
        prop_assert_eq!(canonical_json(&back), canonical_json(&cfg));
        prop_assert_eq!(config_key(&back), config_key(&cfg));

        // And the address separates configs: flipping the seed moves
        // the canonical form.
        let mut other = cfg.clone();
        other.seed = seed.wrapping_add(1);
        prop_assert!(canonical_json(&other) != canonical_json(&cfg));
    }
}
