//! Pipeline-vs-inline bit-equality: the pipelined execution mode's
//! entire reason to exist is that it changes *when* records are
//! produced, never *what* is simulated. This suite runs every paper
//! workload under every Figure 7 scheme, virtualized and native, once
//! through the strictly single-threaded inline engine and once through
//! the forced pipelined engine (producer threads over SPSC rings,
//! serial commit stage), and requires the full [`SimResult`] — every
//! counter, every per-core cycle, the whole hierarchy snapshot — to be
//! byte-identical under JSON serialization.
//!
//! Sizes are smoke-length so the debug suite stays fast; the release CI
//! gate re-runs this with `CSALT_EQ_ACCESSES` / `CSALT_EQ_WARMUP`
//! raised to cover more context switches and repartitioning epochs.

use csalt::sim::experiments::FIG7_SCHEMES;
use csalt::sim::{run_inline, run_pipelined, SimConfig};
use csalt::workloads::paper_workloads;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The smoke-length grid config: two cores and two contexts per core so
/// ring selection, context switches, and epoch repartitioning are all
/// exercised, with a scaled-down quantum so switches actually happen
/// within the short run.
fn config(
    workload: &csalt::workloads::WorkloadSpec,
    scheme: csalt::types::TranslationScheme,
    virtualized: bool,
) -> SimConfig {
    let mut cfg = SimConfig::new(workload.clone(), scheme);
    cfg.virtualized = virtualized;
    cfg.system.cores = 2;
    cfg.system.cs_interval_cycles = 40_000;
    cfg.system.epoch_accesses = 2_000;
    cfg.accesses_per_core = env_u64("CSALT_EQ_ACCESSES", 2_500);
    cfg.warmup_accesses_per_core = env_u64("CSALT_EQ_WARMUP", 1_000);
    cfg.scale = 0.05;
    cfg
}

#[test]
fn pipelined_results_are_bit_identical_to_inline() {
    let mut compared = 0u32;
    for workload in paper_workloads() {
        for scheme in FIG7_SCHEMES {
            for virtualized in [false, true] {
                let cfg = config(&workload, scheme, virtualized);
                let inline = run_inline(&cfg);
                let (pipelined, stats) = run_pipelined(&cfg);
                let expected = (cfg.accesses_per_core + cfg.warmup_accesses_per_core)
                    * u64::from(cfg.system.cores);
                assert_eq!(
                    stats.records_committed, expected,
                    "{} / {scheme:?} / virtualized={virtualized}: \
                     commit stage consumed a wrong record count",
                    workload.name,
                );
                assert_eq!(
                    serde_json::to_string(&inline).expect("inline result serializes"),
                    serde_json::to_string(&pipelined).expect("pipelined result serializes"),
                    "{} / {scheme:?} / virtualized={virtualized}: \
                     pipelined run diverged from the inline reference",
                    workload.name,
                );
                compared += 1;
            }
        }
    }
    assert_eq!(
        compared,
        (paper_workloads().len() * FIG7_SCHEMES.len() * 2) as u32,
        "grid covered every (workload, scheme, mode) cell"
    );
}
