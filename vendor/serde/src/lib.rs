//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build container has no registry access, so the real `serde` crate
//! cannot be fetched. This shim keeps the same *spelling* at every use
//! site — `#[derive(Serialize, Deserialize)]`, `serde_json::to_string`,
//! `serde_json::from_slice` — while implementing a much simpler model
//! underneath: values are converted to and from a self-describing
//! [`Content`] tree (a JSON-shaped document), and `serde_json` renders or
//! parses that tree.
//!
//! The derive macro (see `serde_derive`) supports exactly the shapes the
//! workspace contains: named-field structs, single-field newtype tuple
//! structs, and enums whose variants are units or named-field structs
//! (externally tagged, matching real serde's JSON encoding).

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree mirroring the JSON data model.
///
/// Integers keep their sign distinction (`U64` vs `I64`) so that round
/// trips through text never lose range.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Short human-readable kind name, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Error produced when a [`Content`] tree does not match the target type.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a fully formed message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X, found Y" for a mismatched content node.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// An enum received a variant name it does not define.
    pub fn unknown_variant(variant: &str, enum_name: &str) -> Self {
        DeError {
            message: format!("unknown variant `{variant}` for enum {enum_name}"),
        }
    }

    /// A struct field was absent from the object.
    pub fn missing_field(field: &str, struct_name: &str) -> Self {
        DeError {
            message: format!("missing field `{field}` for {struct_name}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the document model.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Attempts to rebuild `Self` from the document model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up `name` in a struct's object entries and deserializes it.
///
/// Generated code calls this once per field.
pub fn field<T: Deserialize>(
    entries: &[(String, Content)],
    name: &str,
    struct_name: &str,
) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(name, struct_name))?;
    T::from_content(value)
        .map_err(|e| DeError::custom(format!("field `{struct_name}.{name}`: {e}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range")))?,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let raw = u64::from_content(content)?;
        usize::try_from(raw).map_err(|_| DeError::custom(format!("integer {raw} out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v < 0 {
                    Content::I64(v)
                } else {
                    Content::U64(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range")))?,
                    Content::I64(v) => *v,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content
            .as_seq()
            .ok_or_else(|| DeError::expected("array", content))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::from_content)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length changed during conversion"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(DeError::expected("2-element array", content)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content.as_seq() {
            Some([a, b, c]) => Ok((
                A::from_content(a)?,
                B::from_content(b)?,
                C::from_content(c)?,
            )),
            _ => Err(DeError::expected("3-element array", content)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
    }

    #[test]
    fn unsigned_rejects_negative() {
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn option_and_tuple_round_trip() {
        let v: Option<u32> = Some(9);
        assert_eq!(Option::<u32>::from_content(&v.to_content()).unwrap(), v);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        let t = (3u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn array_length_is_checked() {
        let c = Content::Seq(vec![Content::U64(1)]);
        assert!(<[u32; 2]>::from_content(&c).is_err());
    }
}
