//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `rand::rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen::<u32 | u64 | f64 | bool>()`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction real `rand` 0.8 uses for `SmallRng` on 64-bit targets,
//! so statistical quality matches even though exact streams are not
//! guaranteed to be bit-identical with the registry crate. All workloads
//! in this repo are *self-consistent* synthetic traces: experiments
//! compare schemes on identical streams, which only requires determinism
//! for a given seed, not a particular stream.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a type from uniform random bits (stands in for real
/// rand's `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, matching real
    /// rand's `Standard` for `f64`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64: expands a 64-bit seed into the xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim does not distinguish the standard generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
