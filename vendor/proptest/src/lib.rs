//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest! { #[test] fn name(arg in strategy, ...) {..} }`
//! macro, range / `any::<T>()` / tuple / `prop::collection::vec`
//! strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, acceptable for this repo's tests:
//! cases are generated from a deterministic per-test seed (derived from
//! the test name) with no shrinking, and failures panic immediately with
//! the generated case count in the message.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each `proptest!` test runs.
pub const CASES: u32 = 64;

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeds from a test name so every run of a given test replays the
    /// same cases (stable CI, reproducible failures).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                ((self.start as u128) + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as u128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let u = rng.next_f64();
        let mag = (rng.next_f64() * 64.0).exp2();
        if u < 0.5 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T` — `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `prop::collection::vec` strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors `proptest::prop`, the module the prelude re-exports.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{SizeRange, VecStrategy};

        /// A strategy producing `Vec`s of `element` values with length
        /// drawn from `size`.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// The property-test entry point; see the crate docs for the supported
/// grammar.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                let mut __pt_rng = $crate::TestRng::from_name(stringify!($name));
                for __pt_case in 0..$crate::CASES {
                    let _ = __pt_case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality; identical to `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality; identical to `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro wires arguments, strategies, and assertions together.
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, v in prop::collection::vec(0u32..4, 2..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn tuples_and_any(pair in (0u64..100, any::<bool>()), f in 1.0f64..2.0) {
            prop_assert!(pair.0 < 100);
            prop_assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
