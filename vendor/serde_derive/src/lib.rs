//! Offline shim for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (see `vendor/serde`) by scanning the raw token stream — no
//! `syn`/`quote`, since the registry is unreachable in this container.
//!
//! Supported input shapes (exactly what the workspace contains):
//! - structs with named fields
//! - tuple structs with a single field (newtypes, encoded transparently)
//! - enums whose variants are units (encoded as the variant-name string)
//!   or named-field structs (encoded externally tagged:
//!   `{"Variant": {fields...}}`)
//!
//! Generics and `#[serde(...)]` attributes are not supported and panic
//! with a clear message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name only (types are irrelevant to codegen —
/// the trait methods dispatch on the value's own impl).
type Fields = Vec<String>;

enum Shape {
    /// `struct Name { a: A, b: B }`
    NamedStruct { name: String, fields: Fields },
    /// `struct Name(Inner);`
    NewtypeStruct { name: String },
    /// `enum Name { Unit, Other { x: X } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Fields>,
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(vec![{entries}])\n\
                 }}\n}}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
             ::serde::Serialize::to_content(&self.0)\n\
             }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_content({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![\
                                 (\"{vname}\".to_string(), \
                                 ::serde::Content::Map(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{ {arms} }}\n\
                 }}\n}}"
            )
        }
    };
    parse_generated(&code)
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let entries = content.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"object for struct {name}\", content))?;\n\
                 ::core::result::Result::Ok({name} {{ {inits} }})\n\
                 }}\n}}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) \
             -> ::core::result::Result<Self, ::serde::DeError> {{\n\
             ::core::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))\n\
             }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let struct_variants: Vec<&Variant> =
                variants.iter().filter(|v| v.fields.is_some()).collect();
            let map_arm = if struct_variants.is_empty() {
                String::new()
            } else {
                let key_arms: String = struct_variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        let inits: String = v
                            .fields
                            .as_ref()
                            .map(|fields| {
                                fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "{f}: ::serde::field(inner, \"{f}\", \"{vname}\")?,"
                                        )
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        format!(
                            "\"{vname}\" => {{\n\
                             let inner = value.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\
                             \"object payload for variant {vname}\", value))?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }},"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                     let (key, value) = &entries[0];\n\
                     match key.as_str() {{\n\
                     {key_arms}\n\
                     other => ::core::result::Result::Err(\
                     ::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                     }}\n\
                     }},"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match content {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::core::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                 }},\n\
                 {map_arm}\n\
                 other => ::core::result::Result::Err(::serde::DeError::expected(\
                 \"variant of enum {name}\", other)),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    };
    parse_generated(&code)
}

fn parse_generated(code: &str) -> TokenStream {
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => panic!("serde_derive shim produced invalid Rust: {e}\n{code}"),
    }
}

/// Parses the derive input item into one of the supported [`Shape`]s.
fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), &name);
                Shape::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive shim: tuple struct `{name}` has {arity} fields; \
                         only single-field newtypes are supported"
                    );
                }
                Shape::NewtypeStruct { name }
            }
            other => panic!("serde_derive shim: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream(), &name);
                Shape::Enum { name, variants }
            }
            other => panic!("serde_derive shim: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

/// Advances past any `#[...]` attributes (including doc comments).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // '[...]'
        }
    }
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Parses `name: Type, name: Type, ...` field lists, returning the names.
///
/// Commas *inside* generic argument lists (`Vec<(u64, f64)>`) are skipped
/// by tracking `<`/`>` nesting; parenthesized tuples arrive as single
/// group tokens, so only angle brackets need counting.
fn parse_named_fields(stream: TokenStream, owner: &str) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name in `{owner}`, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive shim: expected `:` after field `{owner}.{fname}`, got {other:?}"
            ),
        }
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // consume the comma (or run off the end after the last field)
        fields.push(fname);
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth: i32 = 0;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    arity += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    arity
}

/// Parses enum variants: `Unit, Struct { a: A }, ...`.
fn parse_variants(stream: TokenStream, owner: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name in `{owner}`, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream(), &vname);
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive shim: tuple variant `{owner}::{vname}` is not supported; \
                     use a struct variant"
                );
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant {
            name: vname,
            fields,
        });
    }
    variants
}
