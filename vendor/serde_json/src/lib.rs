//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`], and an [`Error`] type implementing `Display`.
//!
//! Values travel through the shim `serde::Content` document model; this
//! crate only renders that model to JSON text and parses JSON text back
//! into it.

#![forbid(unsafe_code)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A JSON value; alias for the shim document model.
pub type Value = Content;

/// Error from serialization, parsing, or deserialization.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching real serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let content = parse(text)?;
    Ok(T::from_content(&content)?)
}

/// Parses JSON bytes (must be UTF-8) and deserializes them into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

fn write_compact(value: &Content, out: &mut String) {
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Content, indent: usize, out: &mut String) {
    match value {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Writes an `f64` with shortest round-trip formatting; non-finite values
/// become `null`, matching real serde_json.
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into the content tree.
pub fn parse(text: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing at quote/backslash bytes is
            // always on a char boundary.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-5", "18446744073709551615"] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_compact(&v, &mut out);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn float_round_trips_exactly() {
        for v in [0.5f64, 4.0, 1e-9, 123456.789, -2.25] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, v, "via {text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2.5,"x\ny"],"b":{"c":null,"d":true}}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_compact(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"rows":[{"label":"gups","values":[1,2]}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""A😀""#).unwrap();
        assert_eq!(v, Content::Str("A😀".to_string()));
        let esc = parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(esc, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
