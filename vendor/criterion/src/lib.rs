//! Offline shim for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: a short warm-up, then timed batches until a fixed
//! wall-clock budget is spent, reporting mean time per iteration. No
//! statistics, plots, or baselines — just a stable number per benchmark,
//! enough to compare hot paths run-over-run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    /// Total iterations executed in the measured phase.
    iterations: u64,
    /// Wall time spent in the measured phase.
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: warm-up (~50 ms), then measured
    /// batches until the time budget (~300 ms) is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const WARMUP: Duration = Duration::from_millis(50);
        const BUDGET: Duration = Duration::from_millis(300);

        let warm_start = Instant::now();
        let mut batch: u64 = 1;
        while warm_start.elapsed() < WARMUP {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }

        let mut iterations: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iterations += batch;
            if start.elapsed() >= BUDGET {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry/driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Measures `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("{name}: no iterations recorded");
        } else {
            let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
            println!(
                "{name}: {per_iter:.1} ns/iter ({} iters in {:.1} ms)",
                bencher.iterations,
                bencher.elapsed.as_secs_f64() * 1e3,
            );
        }
        self
    }
}

/// Declares a benchmark group function invoking each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iterations > 0);
        assert!(b.elapsed > Duration::ZERO);
    }
}
