#!/usr/bin/env bash
# Full local CI: everything a change must pass before it merges.
#
#   ./ci.sh            # run every gate
#   ./ci.sh --quick    # skip the release build (fast iteration)
#
# Gates:
#   1. release build of the whole workspace
#   2. the full test suite (debug: keeps debug_assert! hooks live)
#   3. the test suite again with csalt-sim's `audit` feature, which
#      checks the CSALT-A1xx conservation laws at every epoch boundary
#   4. clippy with the workspace lint table, warnings denied
#   5. rustfmt check
#   6. the csalt-audit static sweep over every preset x scheme

set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n== %s ==\n' "$*"; }

if [[ $quick -eq 0 ]]; then
    step "cargo build --workspace --release"
    cargo build --workspace --release
fi

step "cargo test --workspace"
cargo test --workspace -q

step "cargo test -p csalt-sim --features audit (conservation laws live)"
cargo test -p csalt-sim --features audit -q

step "cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

step "cargo fmt --check"
cargo fmt --check

step "cargo run -p csalt-audit -- --all-presets"
cargo run -q -p csalt-audit -- --all-presets

printf '\nci.sh: all gates passed\n'
