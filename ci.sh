#!/usr/bin/env bash
# Full local CI: everything a change must pass before it merges.
#
#   ./ci.sh            # run every gate
#   ./ci.sh --quick    # skip the release build (fast iteration)
#
# Gates:
#   1. release build of the whole workspace
#   2. the full test suite (debug: keeps debug_assert! hooks live)
#   3. the test suite again with csalt-sim's `audit` feature, which
#      checks the CSALT-A1xx conservation laws at every epoch boundary
#   4. csalt-sim still builds with the `telemetry` feature off
#   5. telemetry stream round-trip: an instrumented run's JSONL must
#      pass `csalt-report --telemetry --check` (no parse errors, no
#      stage-sum violations)
#   5b. trace export round-trip: a smoke run with --trace must emit
#      Chrome trace JSON that passes `csalt-report trace --check`
#      (balanced spans, monotonic per-track timestamps) with at least
#      one repartition instant
#   5c. bench trajectory diff: `csalt-report bench-diff` over
#      BENCH_history.jsonl, warn-only (regressions print, never fail)
#   6. sweep cache gate: a smoke figure suite runs cold into a fresh
#      cache, then warm from it — the warm pass must simulate nothing
#      and reproduce byte-identical results, and cross-figure duplicate
#      configs must be simulated exactly once
#   6d. checkpoint gate: a smoke suite whose configs share warmup
#      prefixes runs with checkpointed warmup + shared staged traces
#      off and then on, both into fresh caches — the enabled pass must
#      be byte-identical to the disabled one and restore at least one
#      warmup snapshot (the fork-from-snapshot path provably ran)
#   6b. functional fast-forward smoke: a `--warmup-mode functional`
#      sampled-window run with the audit feature live (conservation
#      laws checked at every epoch boundary), run twice — the two
#      outputs must be byte-identical
#   6c. trace v2 convert round-trip: record a v1 trace, upgrade it with
#      `trace-convert`, which re-opens both files and verifies the
#      access stream converted byte-faithfully
#   7. pipelined determinism: the determinism snapshot again with
#      CSALT_PIPELINE=force, so the threaded producer path must hit the
#      exact pinned counters of the inline engine
#   7b. the same snapshot across CSALT_L0=off|on x CSALT_PIPELINE=force:
#      the L0 hit-way memo force-disabled and force-enabled must both
#      hit the pinned counters on the threaded path too (the inline
#      off/on matrix runs inside the suite itself)
#   7c. the same snapshot across CSALT_CKPT=off|on x CSALT_PIPELINE=force:
#      restored runs must hit the pinned counters bit-for-bit on the
#      threaded path too (the inline off/on matrix runs inside the
#      suite itself)
#   8. pipeline-vs-inline equality at release length: the full
#      (workload x scheme x virtualization) grid, longer runs than the
#      debug suite (skipped with --quick; needs a release build)
#   9. telemetry overhead smoke: NullRecorder within the <2% budget
#      (skipped with --quick; needs a release build)
#  10. engine throughput smoke: steady-state accesses/sec per scheme must
#      stay within 20% of the floor recorded in BENCH_throughput.json
#      (skipped with --quick; needs a release build)
#  11. clippy with the workspace lint table, warnings denied
#  12. rustfmt check
#  13. the csalt-audit static sweep over every preset x scheme
#  14. csalt-audit srclint: the source-level determinism lints
#      (S-rules) over every crates/*/src file — no hash-order
#      iteration, no wall-clock reads, SAFETY'd unsafe, integer
#      counters, Release/Acquire discipline; waivers must be reasoned
#  15. csalt-audit modelcheck: exhaustive schedule exploration of the
#      modeled SPSC ring and ThreadBudget ledger (M-properties), plus
#      the mutation suite proving the checker itself catches bugs

set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n== %s ==\n' "$*"; }

if [[ $quick -eq 0 ]]; then
    step "cargo build --workspace --release"
    cargo build --workspace --release
fi

step "cargo test --workspace"
cargo test --workspace -q

step "cargo test -p csalt-sim --features audit (conservation laws live)"
cargo test -p csalt-sim --features audit -q

step "cargo build -p csalt-sim --no-default-features (telemetry feature off)"
cargo build -q -p csalt-sim --no-default-features

step "telemetry stream round-trip (csalt-experiments run -> csalt-report --check)"
tmp_stream="$(mktemp -t csalt-telemetry-XXXXXX.jsonl)"
trap 'rm -f "$tmp_stream"' EXIT
CSALT_WARMUP=2000 CSALT_SCALE=0.05 cargo run -q -p csalt-sim --bin csalt-experiments -- \
    run gups csalt-cd --telemetry "$tmp_stream" --telemetry-sample 200 --accesses 8000
cargo run -q -p csalt-sim --bin csalt-report -- --telemetry "$tmp_stream" --check > /dev/null

step "trace export round-trip (--trace -> csalt-report trace --check)"
tmp_trace="$(mktemp -t csalt-trace-XXXXXX.json)"
trap 'rm -f "$tmp_stream" "$tmp_trace"' EXIT
CSALT_WARMUP=2000 CSALT_SCALE=0.05 cargo run -q -p csalt-sim --bin csalt-experiments -- \
    run gups csalt-cd --trace "$tmp_trace" --telemetry-sample 200 --accesses 8000
cargo run -q -p csalt-sim --bin csalt-report -- \
    trace "$tmp_trace" --check --expect-repartitions 1 > /dev/null

step "bench trajectory (csalt-report bench-diff, warn-only)"
cargo run -q -p csalt-sim --bin csalt-report -- bench-diff

step "sweep cache gate (warm re-run simulates nothing, results byte-identical)"
cargo run -q -p csalt-sim --bin csalt-experiments -- cache-gate

step "checkpoint gate (fork-from-snapshot byte-identical, >=1 restore)"
cargo run -q -p csalt-sim --bin csalt-experiments -- ckpt-gate

step "functional fast-forward smoke (audit laws live, bit-deterministic)"
tmp_ff_a="$(mktemp -t csalt-ff-a-XXXXXX.txt)"
tmp_ff_b="$(mktemp -t csalt-ff-b-XXXXXX.txt)"
tmp_v1="$(mktemp -t csalt-v1-XXXXXX.trace)"
tmp_v2="$(mktemp -t csalt-v2-XXXXXX.trace)"
trap 'rm -f "$tmp_stream" "$tmp_trace" "$tmp_ff_a" "$tmp_ff_b" "$tmp_v1" "$tmp_v2"' EXIT
ff_smoke() {
    CSALT_SCALE=0.05 CSALT_WARMUP=4000 \
        cargo run -q -p csalt-sim --features audit --bin csalt-experiments -- \
        run graph500_gups csalt-cd --accesses 12000 --warmup-mode functional \
        --sample-windows 2 --window-accesses 3000
}
ff_smoke > "$tmp_ff_a"
ff_smoke > "$tmp_ff_b"
cmp "$tmp_ff_a" "$tmp_ff_b"

step "trace v2 convert round-trip (record v1 -> convert -> verified)"
cargo run -q -p csalt-sim --bin csalt-experiments -- \
    trace-record gups "$tmp_v1" --count 20000 --scale 0.05 --v1
cargo run -q -p csalt-sim --bin csalt-experiments -- \
    trace-convert "$tmp_v1" "$tmp_v2" --asid 3

step "determinism snapshot under CSALT_PIPELINE=force (pinned counters, threaded path)"
CSALT_PIPELINE=force cargo test -q --test determinism

step "determinism snapshot under CSALT_L0=off|on x CSALT_PIPELINE=force (memo ablation)"
for l0 in off on; do
    CSALT_L0="$l0" CSALT_PIPELINE=force cargo test -q --test determinism
done

step "determinism snapshot under CSALT_CKPT=off|on x CSALT_PIPELINE=force (restore ablation)"
for ckpt in off on; do
    CSALT_CKPT="$ckpt" CSALT_PIPELINE=force cargo test -q --test determinism
done

if [[ $quick -eq 0 ]]; then
    step "pipeline-vs-inline equality, release length (full workload x scheme grid)"
    CSALT_EQ_ACCESSES=10000 CSALT_EQ_WARMUP=5000 \
        cargo test -q --release --test pipeline_equality

    step "telemetry overhead smoke (NullRecorder < 2%)"
    CSALT_SMOKE=1 cargo bench -q -p csalt-bench --bench telemetry_overhead

    step "throughput smoke (within 20% of BENCH_throughput.json floor)"
    CSALT_SMOKE=1 cargo bench -q -p csalt-bench --bench throughput
fi

step "cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

step "cargo fmt --check"
cargo fmt --check

step "cargo run -p csalt-audit -- --all-presets"
cargo run -q -p csalt-audit -- --all-presets

step "cargo run -p csalt-audit -- srclint (source-level determinism lints)"
cargo run -q -p csalt-audit -- srclint

step "cargo run -p csalt-audit -- modelcheck (exhaustive SPSC/budget schedules)"
cargo run -q -p csalt-audit -- modelcheck

printf '\nci.sh: all gates passed\n'
