#!/bin/bash
# Regenerates every table and figure. Output accumulates in bench_output.txt.
# Exits nonzero if any bench fails; stderr is captured, not discarded.
set -u
cd /root/repo
: > bench_output.txt
status=0
# One shared result cache for the whole bench session: configurations
# that recur across figures (the fig07 grid in fig08/10/11/13, the
# pom-tlb baselines everywhere) are simulated once and reused, and a
# re-run after an interrupted session resumes where it stopped. The
# cache is content-addressed and scoped to the engine fingerprint, so
# it never serves stale results (see EXPERIMENTS.md "The result cache").
export CSALT_CACHE_DIR="${CSALT_CACHE_DIR:-/root/repo/target/csalt-cache}"
# BENCH_*.json records stamp the git revision plus a dirty flag, and the
# recorders refuse to overwrite a clean-tree record for the same
# revision with dirty numbers (CSALT_BENCH_FORCE=1 overrides). Surface
# the tree state up front so a refusal later in the session is no
# surprise.
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    echo "git tree: DIRTY at $(git rev-parse --short HEAD 2>/dev/null || echo unknown) — BENCH records will be flagged dirty" | tee -a bench_output.txt
    DIRTY=true
else
    echo "git tree: clean at $(git rev-parse --short HEAD 2>/dev/null || echo unknown)" | tee -a bench_output.txt
    DIRTY=false
fi
# Session marker in the bench trajectory: one line per bench session,
# so `csalt-report bench-diff` can attribute metric lines to sessions.
printf '{"bench":"session","metric":"start","value":0,"better":"higher","git_rev":"%s","dirty":%s,"host_threads":%s,"timestamp":%s}\n' \
    "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    "$DIRTY" \
    "$(nproc 2>/dev/null || echo 1)" \
    "$(date +%s)" >> BENCH_history.jsonl
BENCHES="tab02_config fig01_tlb_mpki_ratio tab01_walk_cycles fig03_cache_occupancy \
fig07_performance fig08_walks_eliminated fig09_partition_trace fig10_l2_mpki \
fig11_l3_mpki fig12_native fig13_prior_work fig14_contexts fig15_epoch \
fig16_cs_interval ext_5level ext_tsb_csalt ext_huge_pages ext_drrip ablation_replacement \
ablation_static ablation_warmup"
for b in $BENCHES; do
    echo "=== bench: $b ($(date +%H:%M:%S)) ===" | tee -a bench_output.txt
    cargo bench -p csalt-bench --bench "$b" 2>&1 | tee -a bench_output.txt
    rc=${PIPESTATUS[0]}
    if [ "$rc" -ne 0 ]; then
        echo "FAILED: $b (exit $rc)" | tee -a bench_output.txt
        status=1
    fi
done
echo "=== micro_components (criterion) ===" | tee -a bench_output.txt
cargo bench -p csalt-bench --bench micro_components 2>&1 | tee -a bench_output.txt
rc=${PIPESTATUS[0]}
if [ "$rc" -ne 0 ]; then
    echo "FAILED: micro_components (exit $rc)" | tee -a bench_output.txt
    status=1
fi
echo "=== sweep (cold/warm timing -> BENCH_sweep.json) ===" | tee -a bench_output.txt
cargo bench -p csalt-bench --bench sweep 2>&1 | tee -a bench_output.txt
rc=${PIPESTATUS[0]}
if [ "$rc" -ne 0 ]; then
    echo "FAILED: sweep (exit $rc)" | tee -a bench_output.txt
    status=1
fi
echo "=== throughput (inline + pipeline -> BENCH_throughput.json) ===" | tee -a bench_output.txt
cargo bench -p csalt-bench --bench throughput 2>&1 | tee -a bench_output.txt
rc=${PIPESTATUS[0]}
if [ "$rc" -ne 0 ]; then
    echo "FAILED: throughput (exit $rc)" | tee -a bench_output.txt
    status=1
fi
if [ "$status" -ne 0 ]; then
    echo "SOME BENCHES FAILED $(date +%H:%M:%S)" | tee -a bench_output.txt
else
    echo "ALL BENCHES DONE $(date +%H:%M:%S)" | tee -a bench_output.txt
fi
exit "$status"
