//! The span event model: two clock domains, begin/end/instant phases,
//! and the in-memory [`TraceBuffer`] sink.
//!
//! Integer-only by policy (srclint S005): fractional values cross this
//! boundary preformatted as [`ArgValue::Str`].

/// Which clock a timestamp was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Domain {
    /// Simulated core cycles — deterministic engine events.
    Cycles,
    /// Microseconds of host wall clock — infrastructure events.
    Wall,
}

impl Domain {
    /// The Chrome-trace process id this domain exports under.
    #[must_use]
    pub fn pid(self) -> u32 {
        match self {
            Domain::Cycles => 1,
            Domain::Wall => 2,
        }
    }

    /// Export category string (`cat` field).
    #[must_use]
    pub fn category(self) -> &'static str {
        match self {
            Domain::Cycles => "cycles",
            Domain::Wall => "wall",
        }
    }
}

/// Event phase, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span start (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point event (`"i"`). Named `Mark` rather than after the Chrome
    /// term so the identifier stays clear of the S002 clock lint.
    Mark,
}

/// An argument value attached to an event. No float variant on
/// purpose — this module is in the integer-only srclint scope; format
/// fractional values into [`ArgValue::Str`] at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// Non-negative integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Preformatted text (also used for fractional values).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Begin, end, or instant.
    pub phase: Phase,
    /// Event name (span or marker label).
    pub name: &'static str,
    /// Clock domain the timestamp belongs to.
    pub domain: Domain,
    /// Track within the domain (core, VM, or worker thread).
    pub tid: u32,
    /// Timestamp in the domain's unit (cycles or microseconds).
    pub ts: u64,
    /// Attached key/value detail.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Sink for span events. [`TraceBuffer`] records them; [`NullSink`]
/// discards them (the disabled path, monomorphizing to nothing).
pub trait TraceSink {
    /// Opens a span on `(domain, tid)` at `ts`.
    fn begin(&mut self, domain: Domain, tid: u32, ts: u64, name: &'static str);
    /// Closes the innermost open span named `name` on `(domain, tid)`.
    fn end(&mut self, domain: Domain, tid: u32, ts: u64, name: &'static str);
    /// Records a point event with arguments.
    fn instant(
        &mut self,
        domain: Domain,
        tid: u32,
        ts: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    );
}

/// The always-off sink: every call compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn begin(&mut self, _: Domain, _: u32, _: u64, _: &'static str) {}
    fn end(&mut self, _: Domain, _: u32, _: u64, _: &'static str) {}
    fn instant(
        &mut self,
        _: Domain,
        _: u32,
        _: u64,
        _: &'static str,
        _: Vec<(&'static str, ArgValue)>,
    ) {
    }
}

/// In-memory event buffer with a track-name registry; the sink behind
/// `--trace`. Events are kept in emission order; [`crate::write_chrome`]
/// renders them.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    /// Registered `(domain, tid) -> display name`, insertion-ordered.
    tracks: Vec<(Domain, u32, String)>,
}

impl TraceBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a track for the exporter's `thread_name` metadata.
    /// Re-registering a `(domain, tid)` pair replaces the name.
    pub fn set_track_name(&mut self, domain: Domain, tid: u32, name: impl Into<String>) {
        let name = name.into();
        if let Some(t) = self
            .tracks
            .iter_mut()
            .find(|(d, id, _)| *d == domain && *id == tid)
        {
            t.2 = name;
        } else {
            self.tracks.push((domain, tid, name));
        }
    }

    /// Records a begin event with arguments.
    pub fn begin_args(
        &mut self,
        domain: Domain,
        tid: u32,
        ts: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            phase: Phase::Begin,
            name,
            domain,
            tid,
            ts,
            args,
        });
    }

    /// Records an end event with arguments.
    pub fn end_args(
        &mut self,
        domain: Domain,
        tid: u32,
        ts: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            phase: Phase::End,
            name,
            domain,
            tid,
            ts,
            args,
        });
    }

    /// Every recorded event in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Registered track names as `(domain, tid, name)`.
    #[must_use]
    pub fn tracks(&self) -> &[(Domain, u32, String)] {
        &self.tracks
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for TraceBuffer {
    fn begin(&mut self, domain: Domain, tid: u32, ts: u64, name: &'static str) {
        self.begin_args(domain, tid, ts, name, Vec::new());
    }

    fn end(&mut self, domain: Domain, tid: u32, ts: u64, name: &'static str) {
        self.end_args(domain, tid, ts, name, Vec::new());
    }

    fn instant(
        &mut self,
        domain: Domain,
        tid: u32,
        ts: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            phase: Phase::Mark,
            name,
            domain,
            tid,
            ts,
            args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_records_in_order_and_names_tracks() {
        let mut b = TraceBuffer::new();
        b.set_track_name(Domain::Cycles, 0, "partitioner");
        b.set_track_name(Domain::Cycles, 0, "partitioner (renamed)");
        b.begin(Domain::Cycles, 0, 10, "epoch");
        b.instant(
            Domain::Cycles,
            0,
            15,
            "repartition",
            vec![("data_ways", ArgValue::U64(12))],
        );
        b.end(Domain::Cycles, 0, 20, "epoch");
        assert_eq!(b.len(), 3);
        assert_eq!(b.events()[0].phase, Phase::Begin);
        assert_eq!(b.events()[1].args[0].1, ArgValue::U64(12));
        assert_eq!(b.tracks().len(), 1);
        assert_eq!(b.tracks()[0].2, "partitioner (renamed)");
    }

    #[test]
    fn null_sink_discards_everything() {
        let mut s = NullSink;
        s.begin(Domain::Wall, 1, 0, "x");
        s.end(Domain::Wall, 1, 1, "x");
        s.instant(Domain::Wall, 1, 2, "y", Vec::new());
    }

    #[test]
    fn domains_map_to_distinct_pids() {
        assert_ne!(Domain::Cycles.pid(), Domain::Wall.pid());
        assert_eq!(Domain::Cycles.category(), "cycles");
    }
}
