//! The crate's only wall-clock site, registered as a timing module in
//! `crates/audit/srclint.manifest` (S002 `clock-allow`).
//!
//! Infrastructure events timestamp with [`wall_micros`]: microseconds
//! since the first call in this process, which keeps wall timestamps
//! small, monotonic, and aligned across every track of the wall domain.
//! Nothing here may feed back into simulated results.

use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Microseconds of monotonic wall clock since the first call (which
/// itself returns 0).
#[must_use]
pub fn wall_micros() -> u64 {
    let start = START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let a = wall_micros();
        let b = wall_micros();
        assert!(b >= a);
    }
}
