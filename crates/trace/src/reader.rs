//! Minimal validating reader for exported Chrome traces.
//!
//! [`validate`] parses a trace JSON (vendored `serde_json`) and checks
//! the structural invariants the writer promises:
//!
//! * every track's begin/end events nest and balance (no span left
//!   open, no stray end, end names match the span they close);
//! * timestamps are monotonic (non-decreasing) per track within each
//!   clock domain;
//! * instant events carry thread scope.
//!
//! It also aggregates per-span-name durations so `csalt-report trace`
//! can print the wall-time / cycle attribution table without
//! re-parsing.

use serde_json::Value;

/// Per-`(pid, tid)` track statistics.
#[derive(Debug, Clone)]
pub struct TrackSummary {
    /// Chrome process id (1 = cycles domain, 2 = wall domain).
    pub pid: u64,
    /// Track id within the process.
    pub tid: u64,
    /// `thread_name` metadata, when present.
    pub name: Option<String>,
    /// Begin events seen.
    pub begins: u64,
    /// End events seen.
    pub ends: u64,
    /// Instant events seen.
    pub instants: u64,
    /// Deepest begin/end nesting reached.
    pub max_depth: u64,
    /// Last timestamp seen on the track.
    pub last_ts: u64,
}

/// Aggregate duration of all spans sharing a name within one process.
#[derive(Debug, Clone)]
pub struct SpanAggregate {
    /// Chrome process id the spans belong to.
    pub pid: u64,
    /// Span name.
    pub name: String,
    /// Closed spans with this name.
    pub count: u64,
    /// Summed `end.ts - begin.ts` over those spans, in the domain unit.
    pub total_duration: u64,
}

/// Validation outcome and aggregates for one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Non-metadata events read.
    pub events: u64,
    /// Per-track statistics, ordered by `(pid, tid)`.
    pub tracks: Vec<TrackSummary>,
    /// Closed-span aggregates, ordered by `(pid, name)`.
    pub spans: Vec<SpanAggregate>,
    /// `(pid, name, count)` for instant events, ordered by `(pid, name)`.
    pub instants: Vec<(u64, String, u64)>,
    /// Structural violations; empty means the trace is valid.
    pub errors: Vec<String>,
}

impl TraceSummary {
    /// Whether the trace passed every structural check.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }

    /// Count of instant events named `name` in process `pid`.
    #[must_use]
    pub fn instant_count(&self, pid: u64, name: &str) -> u64 {
        self.instants
            .iter()
            .find(|(p, n, _)| *p == pid && n == name)
            .map_or(0, |(_, _, c)| *c)
    }

    /// Count of closed spans named `name` in process `pid`.
    #[must_use]
    pub fn span_count(&self, pid: u64, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|a| a.pid == pid && a.name == name)
            .map_or(0, |a| a.count)
    }
}

/// One track's in-flight state while scanning.
struct TrackState {
    summary: TrackSummary,
    /// Open spans as `(name, begin_ts)`.
    stack: Vec<(String, u64)>,
}

fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Parses and validates a Chrome trace JSON document.
///
/// # Errors
///
/// Returns `Err` when the text is not JSON or lacks the
/// `{"traceEvents": [...]}` shape; structural violations inside a
/// well-formed document land in [`TraceSummary::errors`] instead.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let doc = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .as_map()
        .and_then(|m| field(m, "traceEvents"))
        .and_then(Value::as_seq)
        .ok_or_else(|| "missing traceEvents array".to_string())?;

    let mut summary = TraceSummary::default();
    // (pid, tid) -> state; linear scan keeps ordering deterministic.
    let mut tracks: Vec<((u64, u64), TrackState)> = Vec::new();
    // (pid, name) -> (count, total) accumulators.
    let mut spans: Vec<((u64, String), (u64, u64))> = Vec::new();
    let mut instants: Vec<((u64, String), u64)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let Some(map) = ev.as_map() else {
            summary.errors.push(format!("event {i}: not an object"));
            continue;
        };
        let ph = field(map, "ph").and_then(as_str).unwrap_or("");
        if ph == "M" {
            // Metadata: capture thread names for the report.
            if field(map, "name").and_then(as_str) == Some("thread_name") {
                let pid = field(map, "pid").and_then(as_u64).unwrap_or(0);
                let tid = field(map, "tid").and_then(as_u64).unwrap_or(0);
                let name = field(map, "args")
                    .and_then(Value::as_map)
                    .and_then(|a| field(a, "name"))
                    .and_then(as_str)
                    .map(str::to_string);
                let state = track_state(&mut tracks, pid, tid);
                state.summary.name = name;
            }
            continue;
        }
        summary.events += 1;
        let (Some(pid), Some(tid), Some(ts)) = (
            field(map, "pid").and_then(as_u64),
            field(map, "tid").and_then(as_u64),
            field(map, "ts").and_then(as_u64),
        ) else {
            summary
                .errors
                .push(format!("event {i}: missing integer pid/tid/ts"));
            continue;
        };
        let name = field(map, "name")
            .and_then(as_str)
            .unwrap_or("")
            .to_string();
        let state = track_state(&mut tracks, pid, tid);
        if state.summary.begins + state.summary.ends + state.summary.instants > 0
            && ts < state.summary.last_ts
        {
            summary.errors.push(format!(
                "event {i} ({name}): timestamp {ts} before {} on track pid {pid} tid {tid}",
                state.summary.last_ts
            ));
        }
        state.summary.last_ts = ts;
        match ph {
            "B" => {
                state.summary.begins += 1;
                state.stack.push((name, ts));
                state.summary.max_depth = state.summary.max_depth.max(state.stack.len() as u64);
            }
            "E" => {
                state.summary.ends += 1;
                match state.stack.pop() {
                    Some((open_name, begin_ts)) => {
                        if !name.is_empty() && name != open_name {
                            summary.errors.push(format!(
                                "event {i}: end `{name}` closes span `{open_name}` \
                                 on track pid {pid} tid {tid}"
                            ));
                        }
                        let key = (pid, open_name);
                        let slot = match spans.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, s)) => s,
                            None => {
                                spans.push((key, (0, 0)));
                                &mut spans.last_mut().expect("just pushed").1
                            }
                        };
                        slot.0 += 1;
                        slot.1 += ts.saturating_sub(begin_ts);
                    }
                    None => summary.errors.push(format!(
                        "event {i}: end `{name}` with no open span on track pid {pid} tid {tid}"
                    )),
                }
            }
            "i" | "I" => {
                state.summary.instants += 1;
                if field(map, "s").and_then(as_str).is_none() {
                    summary
                        .errors
                        .push(format!("event {i}: instant `{name}` without scope"));
                }
                let key = (pid, name);
                match instants.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, c)) => *c += 1,
                    None => instants.push((key, 1)),
                }
            }
            other => summary
                .errors
                .push(format!("event {i}: unsupported phase {other:?}")),
        }
    }

    for ((pid, tid), state) in &tracks {
        for (open_name, _) in &state.stack {
            summary.errors.push(format!(
                "span `{open_name}` left open on track pid {pid} tid {tid}"
            ));
        }
    }

    tracks.sort_by_key(|(k, _)| *k);
    summary.tracks = tracks.into_iter().map(|(_, s)| s.summary).collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    summary.spans = spans
        .into_iter()
        .map(|((pid, name), (count, total_duration))| SpanAggregate {
            pid,
            name,
            count,
            total_duration,
        })
        .collect();
    instants.sort_by(|a, b| a.0.cmp(&b.0));
    summary.instants = instants
        .into_iter()
        .map(|((pid, name), c)| (pid, name, c))
        .collect();
    Ok(summary)
}

fn track_state(tracks: &mut Vec<((u64, u64), TrackState)>, pid: u64, tid: u64) -> &mut TrackState {
    if let Some(i) = tracks.iter().position(|(k, _)| *k == (pid, tid)) {
        return &mut tracks[i].1;
    }
    tracks.push((
        (pid, tid),
        TrackState {
            summary: TrackSummary {
                pid,
                tid,
                name: None,
                begins: 0,
                ends: 0,
                instants: 0,
                max_depth: 0,
                last_ts: 0,
            },
            stack: Vec::new(),
        },
    ));
    &mut tracks.last_mut().expect("just pushed").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ArgValue, Domain, TraceBuffer, TraceSink};

    fn export(buf: &TraceBuffer) -> String {
        let mut bytes = Vec::new();
        crate::write_chrome(buf, &mut bytes).expect("write to Vec");
        String::from_utf8(bytes).expect("utf8")
    }

    #[test]
    fn round_trip_is_valid_and_aggregates() {
        let mut b = TraceBuffer::new();
        b.set_track_name(Domain::Cycles, 1, "core 0");
        b.begin(Domain::Cycles, 1, 100, "walk");
        b.begin(Domain::Cycles, 1, 110, "stage");
        b.end(Domain::Cycles, 1, 140, "stage");
        b.end(Domain::Cycles, 1, 150, "walk");
        b.instant(
            Domain::Cycles,
            0,
            160,
            "repartition",
            vec![("data_ways", ArgValue::U64(12))],
        );
        b.begin(Domain::Wall, 7, 5, "commit");
        b.end(Domain::Wall, 7, 25, "commit");
        let s = validate(&export(&b)).expect("parses");
        assert!(s.is_valid(), "{:?}", s.errors);
        assert_eq!(s.events, 7);
        assert_eq!(s.span_count(1, "walk"), 1);
        assert_eq!(s.span_count(2, "commit"), 1);
        assert_eq!(s.instant_count(1, "repartition"), 1);
        let walk = s
            .spans
            .iter()
            .find(|a| a.name == "walk")
            .expect("walk span");
        assert_eq!(walk.total_duration, 50);
        let core = s
            .tracks
            .iter()
            .find(|t| t.pid == 1 && t.tid == 1)
            .expect("core track");
        assert_eq!(core.name.as_deref(), Some("core 0"));
        assert_eq!(core.max_depth, 2);
    }

    #[test]
    fn unbalanced_and_nonmonotonic_traces_are_flagged() {
        let mut b = TraceBuffer::new();
        b.begin(Domain::Cycles, 1, 100, "walk");
        let s = validate(&export(&b)).expect("parses");
        assert!(!s.is_valid());
        assert!(s.errors[0].contains("left open"));

        let mut b = TraceBuffer::new();
        b.instant(Domain::Cycles, 1, 100, "a", Vec::new());
        b.instant(Domain::Cycles, 1, 50, "b", Vec::new());
        let s = validate(&export(&b)).expect("parses");
        assert!(s.errors.iter().any(|e| e.contains("before")));

        let mut b = TraceBuffer::new();
        b.end(Domain::Wall, 1, 10, "never-opened");
        let s = validate(&export(&b)).expect("parses");
        assert!(s.errors.iter().any(|e| e.contains("no open span")));
    }

    #[test]
    fn mismatched_end_name_is_flagged() {
        let mut b = TraceBuffer::new();
        b.begin(Domain::Cycles, 1, 1, "walk");
        b.end(Domain::Cycles, 1, 2, "epoch");
        let s = validate(&export(&b)).expect("parses");
        assert!(s.errors.iter().any(|e| e.contains("closes span")));
    }

    #[test]
    fn garbage_input_errors_out() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"other\":[]}").is_err());
    }
}
