//! Span-based tracing for the CSALT simulator (ISSUE 7).
//!
//! The engine's headline mechanism is *dynamic* — every epoch the
//! partitioner re-splits cache ways between data and translation
//! entries — yet counters and histograms only show aggregates. This
//! crate records *when* things happened, as begin/end/instant events on
//! named tracks, and exports them in the Chrome Trace Event Format so a
//! run can be opened in Perfetto or `chrome://tracing`.
//!
//! Two clock domains keep determinism intact:
//!
//! * [`Domain::Cycles`] — simulated core cycles. Engine events (epoch
//!   boundaries, repartition decisions, context switches, sampled page
//!   walks) live here; their timestamps are pure functions of
//!   (config, seed), so a trace of the engine domain is bit-identical
//!   across runs.
//! * [`Domain::Wall`] — microseconds of host wall clock since process
//!   start. Infrastructure events (sweep jobs, pipeline producer
//!   sessions, ring-stall markers, commit batches) live here; they
//!   never feed back into simulated results.
//!
//! The only wall-clock read in the crate is [`timing::wall_micros`],
//! registered as a timing module in `crates/audit/srclint.manifest`
//! (S002); everything else is integer-only (S005 `float-deny` scope),
//! which is why [`ArgValue`] has no float variant — callers format
//! fractional values (marginal utilities, ratios) as strings.
//!
//! Exported JSON maps each domain to a Chrome *process* (pid 1 =
//! simulated cycles, pid 2 = wall clock) and each track to a *thread*,
//! rendering one simulated cycle / one microsecond per Chrome `ts`
//! unit. [`reader::validate`] checks an exported trace: balanced
//! begin/end nesting per track and monotonic timestamps per domain.

pub mod chrome;
pub mod reader;
pub mod span;
pub mod timing;

pub use chrome::write_chrome;
pub use reader::{validate, SpanAggregate, TraceSummary, TrackSummary};
pub use span::{ArgValue, Domain, NullSink, Phase, TraceBuffer, TraceEvent, TraceSink};
