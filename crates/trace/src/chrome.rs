//! Hand-rolled Chrome Trace Event Format writer.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) that
//! Perfetto and `chrome://tracing` load directly. Each [`Domain`]
//! becomes a process (`pid`), each track a thread (`tid`), and one
//! domain unit (simulated cycle or wall microsecond) renders as one
//! `ts` microsecond — Perfetto's ruler then reads directly in cycles
//! for the engine process.
//!
//! No serializer dependency: events are integers and preformatted
//! strings, so the writer is a few string pushes per event.

use crate::span::{ArgValue, Domain, Phase, TraceBuffer};
use std::io::{self, Write};

/// Writes `buf` as Chrome Trace Event JSON.
///
/// Metadata events name the two processes and every registered track;
/// instant events carry thread scope (`"s":"t"`).
///
/// # Errors
///
/// Returns any I/O error from `w`.
pub fn write_chrome<W: Write>(buf: &TraceBuffer, w: &mut W) -> io::Result<()> {
    let mut out = String::with_capacity(buf.len() * 96 + 512);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push_event = |text: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&text);
    };

    for domain in [Domain::Cycles, Domain::Wall] {
        let name = match domain {
            Domain::Cycles => "engine (simulated cycles)",
            Domain::Wall => "infrastructure (wall clock)",
        };
        push_event(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                domain.pid(),
                escaped(name)
            ),
            &mut out,
            &mut first,
        );
    }
    for (domain, tid, name) in buf.tracks() {
        push_event(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                domain.pid(),
                escaped(name)
            ),
            &mut out,
            &mut first,
        );
    }

    for ev in buf.events() {
        let ph = match ev.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Mark => "i",
        };
        let mut text = format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            escaped(ev.name),
            ev.domain.category(),
            ev.domain.pid(),
            ev.tid,
            ev.ts
        );
        if ev.phase == Phase::Mark {
            text.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            text.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    text.push(',');
                }
                text.push_str(&escaped(k));
                text.push(':');
                match v {
                    ArgValue::U64(n) => text.push_str(&n.to_string()),
                    ArgValue::I64(n) => text.push_str(&n.to_string()),
                    ArgValue::Str(s) => text.push_str(&escaped(s)),
                }
            }
            text.push('}');
        }
        text.push('}');
        push_event(text, &mut out, &mut first);
    }

    out.push_str("]}");
    w.write_all(out.as_bytes())
}

/// JSON string literal (quoted, escaped).
fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let n = c as u32;
                for shift in [4u32, 0] {
                    let digit = (n >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceSink;

    #[test]
    fn output_is_valid_json_with_metadata_and_events() {
        let mut b = TraceBuffer::new();
        b.set_track_name(Domain::Cycles, 1, "core 0");
        b.begin(Domain::Cycles, 1, 100, "walk");
        b.instant(
            Domain::Cycles,
            1,
            150,
            "repartition",
            vec![
                ("data_ways", ArgValue::U64(12)),
                ("utility", ArgValue::Str("3.5".to_string())),
            ],
        );
        b.end(Domain::Cycles, 1, 200, "walk");
        let mut bytes = Vec::new();
        write_chrome(&b, &mut bytes).expect("write to Vec");
        let text = String::from_utf8(bytes).expect("utf8");
        let v = serde_json::parse(&text).expect("valid JSON");
        let map = v.as_map().expect("object");
        let events = map
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_seq())
            .expect("traceEvents array");
        // 2 process_name + 1 thread_name + 3 events.
        assert_eq!(events.len(), 6);
        assert!(text.contains("\"s\":\"t\""), "instants carry scope");
        assert!(text.contains("\"utility\":\"3.5\""));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(escaped("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
    }
}
