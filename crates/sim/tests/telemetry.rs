//! Integration tests for the instrumented run path: provenance-first
//! ordering, config round-tripping, epoch-delta conservation, walk-trace
//! cycle attribution, and behavioral equivalence with the plain `run`.
#![cfg(feature = "telemetry")]

use csalt_sim::{run, run_instrumented, Instrumentation, SimConfig};
use csalt_telemetry::{summarize_stream, MemoryRecorder, StreamRecorder, TelemetryRecord};
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};

/// Two cores, three exact epochs of 4k accesses each, short warmup.
fn small_cfg(scheme: TranslationScheme) -> SimConfig {
    let mut cfg = SimConfig::new(WorkloadSpec::homogeneous("gups", BenchKind::Gups), scheme);
    cfg.system.cores = 2;
    cfg.accesses_per_core = 6_000;
    cfg.warmup_accesses_per_core = 1_000;
    cfg.scale = 0.05;
    cfg.system.epoch_accesses = 4_000;
    cfg
}

fn instrumented(cfg: &SimConfig, sample_interval: u64) -> (csalt_sim::SimResult, MemoryRecorder) {
    let mut rec = MemoryRecorder::new();
    let mut inst = Instrumentation {
        recorder: &mut rec,
        sample_interval,
        progress_every_epochs: 0,
        trace: None,
    };
    let result = run_instrumented(cfg, &mut inst);
    (result, rec)
}

#[test]
fn provenance_comes_first_and_round_trips_the_config() {
    let cfg = small_cfg(TranslationScheme::CsaltCd);
    let (_, rec) = instrumented(&cfg, 0);
    let records = rec.records();
    assert!(!records.is_empty());
    let TelemetryRecord::Provenance { record } = &records[0] else {
        panic!("first record must be provenance, got {:?}", records[0]);
    };
    assert_eq!(record.workload, "gups");
    assert_eq!(record.scheme, "csalt-cd");
    let parsed: SimConfig =
        serde_json::from_str(&record.config_json).expect("provenance config parses back");
    assert_eq!(parsed, cfg, "config JSON must round-trip exactly");
}

#[test]
fn epoch_deltas_sum_to_the_final_snapshot() {
    let cfg = small_cfg(TranslationScheme::CsaltCd);
    let (result, rec) = instrumented(&cfg, 0);
    let epochs: Vec<_> = rec
        .records()
        .iter()
        .filter_map(|r| match r {
            TelemetryRecord::Epoch { record } => Some(record),
            _ => None,
        })
        .collect();
    // 12k total accesses / 4k epoch length = 3 exact epochs, no partial.
    assert_eq!(epochs.len(), 3);
    assert_eq!(epochs.last().expect("nonempty").at_access, 12_000);
    let sum =
        |f: fn(&csalt_telemetry::EpochRecord) -> u64| -> u64 { epochs.iter().map(|e| f(e)).sum() };
    assert_eq!(sum(|e| e.accesses), result.snapshot.accesses);
    assert_eq!(sum(|e| e.instructions), result.instructions);
    assert_eq!(sum(|e| e.page_walks), result.snapshot.page_walks);
    assert_eq!(
        sum(|e| e.translation_cycles),
        result.snapshot.translation_cycles
    );
    assert_eq!(sum(|e| e.data_cycles), result.snapshot.data_cycles);
    assert_eq!(sum(|e| e.context_switches), result.context_switches);
    assert_eq!(sum(|e| e.ddr_accesses), result.snapshot.ddr.accesses);
    assert_eq!(
        sum(|e| e.l2_tlb.accesses()),
        result.snapshot.l2_tlb.accesses()
    );
}

#[test]
fn partial_final_epoch_is_emitted() {
    let mut cfg = small_cfg(TranslationScheme::PomTlb);
    cfg.accesses_per_core = 5_000; // 10k total = 2 full epochs + 2k tail
    let (result, rec) = instrumented(&cfg, 0);
    let epochs: Vec<_> = rec
        .records()
        .iter()
        .filter_map(|r| match r {
            TelemetryRecord::Epoch { record } => Some(record),
            _ => None,
        })
        .collect();
    assert_eq!(epochs.len(), 3, "two full epochs plus the partial tail");
    assert_eq!(epochs.last().expect("nonempty").at_access, 10_000);
    let total: u64 = epochs.iter().map(|e| e.accesses).sum();
    assert_eq!(total, result.snapshot.accesses);
}

#[test]
fn walk_traces_are_sampled_and_cycle_consistent() {
    let cfg = small_cfg(TranslationScheme::CsaltCd);
    let (_, rec) = instrumented(&cfg, 500);
    let traces: Vec<_> = rec
        .records()
        .iter()
        .filter_map(|r| match r {
            TelemetryRecord::WalkTrace { record } => Some(record),
            _ => None,
        })
        .collect();
    // Indices 0, 500, ..., 11500 of the 12k measured accesses.
    assert_eq!(traces.len(), 24);
    for t in traces {
        let stage_sum: u64 = t.stages.iter().map(|s| s.cycles).sum();
        assert_eq!(
            stage_sum, t.total_cycles,
            "stage cycles must sum to the recorded total for {t:?}"
        );
        assert_eq!(t.total_cycles, t.translation_cycles + t.data_cycles);
    }
}

#[test]
fn histograms_cover_every_measured_access() {
    let cfg = small_cfg(TranslationScheme::Conventional);
    let (result, rec) = instrumented(&cfg, 0);
    let hists: Vec<_> = rec
        .records()
        .iter()
        .filter_map(|r| match r {
            TelemetryRecord::Histogram { record } => Some(record),
            _ => None,
        })
        .collect();
    let names: Vec<&str> = hists.iter().map(|h| h.name.as_str()).collect();
    for expected in ["translation_cycles", "data_cycles", "total_cycles"] {
        assert!(names.contains(&expected), "missing histogram {expected}");
    }
    for h in hists {
        assert_eq!(
            h.to_histogram().total(),
            result.snapshot.accesses,
            "histogram {} must have one sample per measured access",
            h.name
        );
    }
}

#[test]
fn instrumented_run_is_behaviorally_identical_to_plain_run() {
    for scheme in [
        TranslationScheme::Conventional,
        TranslationScheme::CsaltCd,
        TranslationScheme::Tsb,
    ] {
        let cfg = small_cfg(scheme);
        let plain = run(&cfg);
        let (inst, _) = instrumented(&cfg, 250);
        assert_eq!(
            plain.snapshot, inst.snapshot,
            "{scheme:?}: tracing must not perturb the simulation"
        );
        assert_eq!(plain.instructions, inst.instructions);
        assert_eq!(plain.core_cycles, inst.core_cycles);
        assert_eq!(plain.context_switches, inst.context_switches);
        assert_eq!(plain.final_partitions, inst.final_partitions);
    }
}

#[test]
fn jsonl_stream_parses_back_clean() {
    let path =
        std::env::temp_dir().join(format!("csalt-telemetry-test-{}.jsonl", std::process::id()));
    let cfg = small_cfg(TranslationScheme::CsaltCd);
    {
        let mut rec = StreamRecorder::create(&path).expect("create temp stream");
        let mut inst = Instrumentation {
            recorder: &mut rec,
            sample_interval: 1_000,
            progress_every_epochs: 0,
            trace: None,
        };
        run_instrumented(&cfg, &mut inst);
        assert_eq!(rec.records_skipped(), 0);
    }
    let file = std::fs::File::open(&path).expect("reopen stream");
    let summary = summarize_stream(std::io::BufReader::new(file)).expect("summarize");
    std::fs::remove_file(&path).ok();
    assert!(summary.is_clean(), "stream must be clean: {summary:?}");
    assert_eq!(summary.provenance, 1);
    assert_eq!(summary.epochs, 3);
    assert_eq!(summary.walk_traces, 12);
    assert!(summary
        .percentile_table("total_cycles", "Total")
        .expect("table renders")
        .contains("csalt-cd"));
}
