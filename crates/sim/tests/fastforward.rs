//! Functional fast-forward guarantees: determinism of the state-only
//! path across every scheme × native/virtualized, state equivalence
//! with timed warmup on timing-independent configurations, and the
//! sampled-window accounting contract.

use csalt_sim::{build_threads, run, run_inline, SimConfig, WarmupMode};
use csalt_types::TranslationScheme;
use csalt_workloads::BenchKind;
use csalt_workloads::{AnyGenerator, TraceFile, TraceGenerator, WorkloadSpec};

/// Every scheme the engine supports, including one static partition.
const SCHEMES: [TranslationScheme; 9] = [
    TranslationScheme::Conventional,
    TranslationScheme::PomTlb,
    TranslationScheme::CsaltD,
    TranslationScheme::CsaltCd,
    TranslationScheme::Dip,
    TranslationScheme::Tsb,
    TranslationScheme::TsbCsalt,
    TranslationScheme::Drrip,
    TranslationScheme::StaticPartition { data_ways: 8 },
];

fn quick(scheme: TranslationScheme) -> SimConfig {
    let mut cfg = SimConfig::new(WorkloadSpec::homogeneous("gups", BenchKind::Gups), scheme);
    cfg.system.cores = 2;
    cfg.system.cs_interval_cycles = 50_000;
    cfg.system.epoch_accesses = 20_000;
    cfg.system.psc.pml4_entries = 0;
    cfg.system.psc.pdp_entries = 0;
    cfg.system.psc.pde_entries = 0;
    cfg.accesses_per_core = 8_000;
    cfg.warmup_accesses_per_core = 8_000;
    cfg.scale = 0.05;
    cfg
}

fn json(r: &csalt_sim::SimResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

#[test]
fn functional_warmup_is_deterministic_across_schemes_and_modes() {
    for scheme in SCHEMES {
        for virtualized in [false, true] {
            let mut cfg = quick(scheme);
            cfg.virtualized = virtualized;
            cfg.warmup_mode = WarmupMode::Functional;
            let a = run(&cfg);
            let b = run(&cfg);
            assert_eq!(
                json(&a),
                json(&b),
                "functional warmup must be bit-deterministic \
                 ({scheme:?}, virtualized={virtualized})"
            );
        }
    }
}

#[test]
fn sampled_windows_are_deterministic() {
    let mut cfg = quick(TranslationScheme::CsaltCd);
    cfg.accesses_per_core = 24_000;
    cfg.sample_windows = 3;
    cfg.window_accesses = 4_000;
    cfg.warmup_mode = WarmupMode::Functional;
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(json(&a), json(&b));
}

/// On a timing-independent configuration — one context per core (no
/// quantum scheduling) and a scheme whose replacement never reads the
/// cycle-derived criticality weights — the state after functional
/// warmup must equal the state after timed warmup exactly, so the
/// measured phases land bit-identical counters.
#[test]
fn functional_warmup_matches_timed_state_when_timing_independent() {
    for scheme in [
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::Dip,
    ] {
        let mut timed = quick(scheme);
        timed.system.contexts_per_core = 1;
        timed.warmup_mode = WarmupMode::Timed;
        let mut functional = timed.clone();
        functional.warmup_mode = WarmupMode::Functional;
        let a = run(&timed);
        let b = run(&functional);
        assert_eq!(
            a.snapshot, b.snapshot,
            "warmup mode changed steady state on a timing-independent config ({scheme:?})"
        );
        assert_eq!(a.core_cycles, b.core_cycles, "{scheme:?}");
    }
}

/// Sampled-window runs report exactly the windows' accesses: the
/// functional gaps consume the stream but never the counters.
#[test]
fn sampled_windows_report_only_window_accesses() {
    let mut cfg = quick(TranslationScheme::PomTlb);
    cfg.accesses_per_core = 20_000;
    cfg.sample_windows = 4;
    cfg.window_accesses = 2_000;
    let r = run(&cfg);
    let cores = u64::from(cfg.system.cores);
    let measured = cfg.sample_windows * cfg.window_accesses * cores;
    assert_eq!(r.snapshot.accesses, measured);
    assert_eq!(r.snapshot.l1d.total().accesses(), measured);
    assert!(
        r.instructions > measured,
        "timed windows retire instructions"
    );
    assert!(r.ipc() > 0.0);

    // The same config without sampling measures the full stream — the
    // sampled run is a strict subset.
    let mut full = cfg.clone();
    full.sample_windows = 0;
    full.window_accesses = 0;
    let f = run(&full);
    assert_eq!(f.snapshot.accesses, cfg.accesses_per_core * cores);
    assert!(f.instructions > r.instructions);
}

#[test]
#[should_panic(expected = "sample windows")]
fn oversized_windows_are_rejected() {
    let mut cfg = quick(TranslationScheme::PomTlb);
    cfg.accesses_per_core = 1_000;
    cfg.sample_windows = 2;
    cfg.window_accesses = 1_000;
    let _ = run(&cfg);
}

/// A staged (v2) trace matrix replays through the zero-repack source;
/// the result must be bit-identical to replaying the same records
/// unstaged (v1 semantics) through the classic inline source.
#[test]
fn staged_replay_matches_unstaged_replay_bit_for_bit() {
    let cfg = quick(TranslationScheme::CsaltCd);
    let per_core = cfg.accesses_per_core + cfg.warmup_accesses_per_core;

    // One recorded stream per (vm, core), from the exact generators a
    // generated run would use.
    let mut recording = build_threads(&cfg);
    let record = |g: &mut AnyGenerator| {
        let mut v = Vec::with_capacity(per_core as usize);
        for _ in 0..per_core {
            v.push(g.next_access());
        }
        v
    };
    let records: Vec<Vec<Vec<_>>> = recording
        .iter_mut()
        .map(|row| row.iter_mut().map(record).collect())
        .collect();

    let matrix = |staged: bool| -> Vec<Vec<AnyGenerator>> {
        records
            .iter()
            .enumerate()
            .map(|(vm, row)| {
                row.iter()
                    .map(|recs| {
                        let mut t = TraceFile::from_records(recs.clone());
                        if staged {
                            // Deliberately stage for the wrong ASID: the
                            // engine must restage for the run's ASIDs.
                            t.restage(csalt_types::Asid::new(40 + vm as u16));
                        }
                        AnyGenerator::Trace(t)
                    })
                    .collect()
            })
            .collect()
    };

    let unstaged = csalt_sim::run_with_generators(&cfg, matrix(false));
    let staged = csalt_sim::run_with_generators(&cfg, matrix(true));
    assert_eq!(json(&unstaged), json(&staged));

    // And both match the generated run they were recorded from.
    let generated = run_inline(&cfg);
    assert_eq!(json(&generated), json(&staged));
}
