//! Sweep-engine contract tests: the cached, deduped and
//! freshly-simulated paths must agree bit-for-bit, a warm re-run must
//! simulate nothing, and a damaged cache must degrade to simulation —
//! never to wrong results.

use csalt_sim::sweep::config_key;
use csalt_sim::{run, SimConfig, SimResult, Sweep, SweepOptions};
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};
use std::path::PathBuf;

fn small(scheme: TranslationScheme) -> SimConfig {
    let mut c = SimConfig::new(
        WorkloadSpec::pair("g500_gups", BenchKind::Graph500, BenchKind::Gups),
        scheme,
    );
    c.system.cores = 1;
    c.accesses_per_core = 2_000;
    c.warmup_accesses_per_core = 1_000;
    c.scale = 0.05;
    c
}

/// A per-test scratch cache directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("csalt-sweep-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn json(r: &SimResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

#[test]
fn warm_rerun_performs_zero_simulations() {
    let tmp = TempDir::new("warm");
    let configs = vec![
        small(TranslationScheme::Conventional),
        small(TranslationScheme::PomTlb),
        small(TranslationScheme::CsaltCd),
    ];

    let cold = Sweep::new(SweepOptions::with_dir(&tmp.0));
    let first = cold.run_batch(configs.clone());
    assert_eq!(cold.stats().simulated, 3);
    assert_eq!(cold.stats().cache_hits, 0);

    let warm = Sweep::new(SweepOptions::with_dir(&tmp.0));
    assert_eq!(warm.stats().persisted_loaded, 3);
    let second = warm.run_batch(configs);
    assert_eq!(warm.stats().simulated, 0, "warm re-run must not simulate");
    assert_eq!(warm.stats().cache_hits, 3);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(json(a), json(b), "cached result must be bit-identical");
    }
}

#[test]
fn corrupt_cache_entries_fall_back_to_simulating() {
    let tmp = TempDir::new("corrupt");
    let configs = vec![
        small(TranslationScheme::PomTlb),
        small(TranslationScheme::CsaltD),
    ];
    let cold = Sweep::new(SweepOptions::with_dir(&tmp.0));
    let first = cold.run_batch(configs.clone());
    assert_eq!(cold.stats().simulated, 2);

    // Damage the store: keep the first line, replace the second with a
    // torn tail (as if the process died mid-append) plus pure garbage.
    let file = std::fs::read_dir(&tmp.0)
        .expect("cache dir readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("results-"))
        })
        .expect("results file written");
    let text = std::fs::read_to_string(&file).expect("cache readable");
    let mut lines = text.lines();
    let intact = lines.next().expect("two entries persisted");
    let torn = &lines.next().expect("two entries persisted")[..40];
    std::fs::write(&file, format!("{intact}\n{torn}\nnot json at all\n")).expect("cache writable");

    let warm = Sweep::new(SweepOptions::with_dir(&tmp.0));
    assert_eq!(warm.stats().persisted_loaded, 1);
    assert_eq!(warm.stats().cache_errors, 2, "torn + garbage lines counted");
    let second = warm.run_batch(configs);
    assert_eq!(
        warm.stats().simulated,
        1,
        "only the damaged entry re-simulates"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(json(a), json(b), "fallback must reproduce the run exactly");
    }
}

#[test]
fn cached_deduped_and_fresh_paths_agree() {
    let tmp = TempDir::new("agree");
    let cfg = small(TranslationScheme::CsaltCd);
    let other = small(TranslationScheme::Dip);

    // Fresh: the plain sequential path every figure is pinned against.
    let fresh = json(&run(&cfg));

    // Deduped: three copies interleaved with another config, one batch.
    let sweep = Sweep::new(SweepOptions::with_dir(&tmp.0));
    let batch = sweep.run_batch(vec![cfg.clone(), other.clone(), cfg.clone(), cfg.clone()]);
    assert_eq!(sweep.stats().simulated, 2);
    assert_eq!(sweep.stats().deduped, 2);
    assert_eq!(batch[0].scheme, cfg.scheme, "submission order preserved");
    assert_eq!(batch[1].scheme, other.scheme);
    assert_eq!(json(&batch[0]), fresh);
    assert_eq!(json(&batch[2]), fresh);
    assert_eq!(json(&batch[3]), fresh);

    // Cached: a new sweep over the persisted store.
    let warm = Sweep::new(SweepOptions::with_dir(&tmp.0));
    let cached = warm.run_batch(vec![cfg]);
    assert_eq!(warm.stats().simulated, 0);
    assert_eq!(json(&cached[0]), fresh);
}

#[test]
fn single_worker_override_matches_parallel_results() {
    let configs = vec![
        small(TranslationScheme::Conventional),
        small(TranslationScheme::Tsb),
        small(TranslationScheme::Drrip),
    ];
    let serial = Sweep::new(SweepOptions {
        cache_dir: None,
        jobs: Some(1),
    });
    let parallel = Sweep::new(SweepOptions {
        cache_dir: None,
        jobs: Some(4),
    });
    let a = serial.run_batch(configs.clone());
    let b = parallel.run_batch(configs);
    assert_eq!(serial.stats().simulated, 3);
    assert_eq!(parallel.stats().simulated, 3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(json(x), json(y), "worker count must not affect results");
    }
}

#[test]
fn cost_model_persists_observed_timings() {
    let tmp = TempDir::new("costs");
    let cfg = small(TranslationScheme::PomTlb);
    let sweep = Sweep::new(SweepOptions::with_dir(&tmp.0));
    sweep.run_batch(vec![cfg.clone()]);

    let costs = std::fs::read_to_string(tmp.0.join("costs.jsonl")).expect("cost model persisted");
    let key = config_key(&cfg);
    let line = costs
        .lines()
        .find(|l| l.contains(&key))
        .expect("an observation for the simulated config");
    assert!(line.contains("wall_secs"), "observation carries wall-clock");
}

#[cfg(feature = "telemetry")]
#[test]
fn per_job_timing_flows_through_telemetry() {
    use csalt_telemetry::{NullRecorder, StreamRecorder};

    let tmp = TempDir::new("telemetry");
    std::fs::create_dir_all(&tmp.0).expect("scratch dir");
    let stream_path = tmp.0.join("sweep.jsonl");
    let sweep = Sweep::new(SweepOptions::default());
    let stream = StreamRecorder::create(&stream_path).expect("stream opens");
    sweep.set_recorder(Box::new(stream));
    sweep.run_batch(vec![
        small(TranslationScheme::PomTlb),
        small(TranslationScheme::CsaltCd),
    ]);
    // Swap the stream back out; dropping it flushes the buffer.
    drop(sweep.set_recorder(Box::new(NullRecorder)));

    let text = std::fs::read_to_string(&stream_path).expect("stream written");
    assert!(
        text.contains("sweep.jobs_simulated"),
        "job counter recorded: {text}"
    );
    assert!(
        text.contains("sweep.job_wall_us"),
        "per-job wall-clock histogram recorded: {text}"
    );
}
