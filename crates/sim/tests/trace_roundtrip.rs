//! Round-trip tests for the span trace: a traced run must (a) leave
//! the simulated results bit-identical to an untraced run, and (b)
//! export a Chrome trace that the validating reader accepts — balanced
//! spans, per-track monotonic timestamps — with the engine events the
//! timeline promises (epoch spans, at least one repartition instant per
//! epoch boundary for a CSALT scheme, context switches, sampled walks).
#![cfg(feature = "telemetry")]

use csalt_sim::{run, run_instrumented, Instrumentation, SimConfig};
use csalt_telemetry::MemoryRecorder;
use csalt_trace::{reader, write_chrome, Domain, TraceBuffer};
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};

/// Two cores, three exact epochs of 4k accesses, a context-switch
/// quantum short enough to fire several times per epoch, and the
/// partition trace on (as `--trace` would set it).
fn traced_cfg() -> SimConfig {
    let mut cfg = SimConfig::new(
        WorkloadSpec::homogeneous("gups", BenchKind::Gups),
        TranslationScheme::CsaltCd,
    );
    cfg.system.cores = 2;
    cfg.accesses_per_core = 6_000;
    cfg.warmup_accesses_per_core = 1_000;
    cfg.scale = 0.05;
    cfg.system.epoch_accesses = 4_000;
    cfg.system.cs_interval_cycles = 20_000;
    cfg.trace_partitions = true;
    cfg
}

/// Runs the config with a trace buffer attached and returns the result
/// plus the buffer.
fn traced_run(cfg: &SimConfig, sample_interval: u64) -> (csalt_sim::SimResult, TraceBuffer) {
    let mut rec = MemoryRecorder::new();
    let mut buf = TraceBuffer::new();
    let mut inst = Instrumentation {
        recorder: &mut rec,
        sample_interval,
        progress_every_epochs: 0,
        trace: Some(&mut buf),
    };
    let result = run_instrumented(cfg, &mut inst);
    (result, buf)
}

fn export(buf: &TraceBuffer) -> String {
    let mut bytes = Vec::new();
    write_chrome(buf, &mut bytes).expect("write to Vec");
    String::from_utf8(bytes).expect("chrome export is utf8")
}

#[test]
fn tracing_does_not_perturb_results() {
    let cfg = traced_cfg();
    let plain = run(&cfg);
    let (traced, buf) = traced_run(&cfg, 500);
    assert!(!buf.is_empty(), "trace buffer captured events");
    assert_eq!(
        serde_json::to_string(&plain.snapshot).expect("snapshot serializes"),
        serde_json::to_string(&traced.snapshot).expect("snapshot serializes"),
        "traced run must be bit-identical to the plain run"
    );
    assert_eq!(plain.instructions, traced.instructions);
    assert_eq!(plain.core_cycles, traced.core_cycles);
}

#[test]
fn exported_chrome_trace_round_trips_through_the_reader() {
    let cfg = traced_cfg();
    let (_, buf) = traced_run(&cfg, 500);
    let summary = reader::validate(&export(&buf)).expect("export parses");
    assert!(
        summary.is_valid(),
        "structural violations: {:?}",
        summary.errors
    );

    // Three exact epochs of the measured phase.
    let epochs = summary.span_count(1, "epoch");
    assert_eq!(epochs, 3, "4k-access epochs over 12k measured accesses");
    // At least one repartition instant per epoch boundary: csalt-cd
    // partitions the L3 from the first epoch on.
    assert!(
        summary.instant_count(1, "repartition") >= epochs,
        "every epoch boundary must carry a repartition instant"
    );
    // The short quantum forces context switches on the core tracks.
    assert!(summary.instant_count(1, "context_switch") > 0);
    // Sampled page walks appear as nested spans on core tracks.
    assert!(summary.span_count(1, "walk") > 0);
    let walk_agg = summary
        .spans
        .iter()
        .find(|a| a.pid == 1 && a.name == "walk")
        .expect("walk aggregate");
    assert!(walk_agg.total_duration > 0, "walks accumulate cycles");
    // One wall-domain commit span per epoch.
    assert_eq!(summary.span_count(2, "commit"), epochs);

    // Track metadata: the partitioner track plus one per core in the
    // cycles domain, the commit stage in the wall domain.
    let name_of = |pid: u64, tid: u64| {
        summary
            .tracks
            .iter()
            .find(|t| t.pid == pid && t.tid == tid)
            .and_then(|t| t.name.clone())
    };
    assert_eq!(name_of(1, 0).as_deref(), Some("partitioner"));
    assert_eq!(name_of(1, 1).as_deref(), Some("core 0"));
    assert_eq!(name_of(2, 0).as_deref(), Some("commit stage"));
}

#[test]
fn trace_events_carry_both_clock_domains() {
    let cfg = traced_cfg();
    let (_, buf) = traced_run(&cfg, 0);
    let cycles = buf
        .events()
        .iter()
        .filter(|e| e.domain == Domain::Cycles)
        .count();
    let wall = buf
        .events()
        .iter()
        .filter(|e| e.domain == Domain::Wall)
        .count();
    assert!(cycles > 0, "engine events on the simulated-cycles clock");
    assert!(wall > 0, "infrastructure events on the wall clock");
}
