//! Shared staged-trace store: materialize each workload tuple once,
//! replay it everywhere.
//!
//! Every scheme in a figure grid drives the *same* access streams —
//! the generators are seeded by `(workload, seed, scale)` and the
//! matrix shape by `(cores, contexts_per_core)`; nothing else reaches
//! them. Without the store, every job re-runs the generator math and
//! per-access key packing. With it, the first job for a tuple records
//! the streams into staged (v2) [`TraceFile`]s — in memory, and on
//! disk under the sweep cache directory, scoped to the engine
//! fingerprint — and every job for that tuple rides the zero-repack
//! `StagedReplay` commit path instead.
//!
//! Replay is bit-identical to generation by construction: the records
//! *are* the generator's output, recorded long enough that the replay
//! cursor never wraps, and the staged keys are recomputed for the
//! run's ASID assignment exactly as `execute` restages any trace.
//!
//! `CSALT_TRACE_STORE=off` disables the layer;
//! `CSALT_TRACE_STORE_MAX_BYTES` bounds the in-memory store (default
//! 512 MiB) — tuples past the cap simply run their generators inline,
//! and the oldest resident tuple is evicted first.

use crate::simulator::{build_threads, SimConfig};
use crate::sweep::{canonical_json, engine_fingerprint, SweepOptions};
use csalt_types::ckpt::fnv1a_bytes;
use csalt_types::Asid;
use csalt_workloads::{AnyGenerator, TraceFile, TraceGenerator};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Whether the shared staged-trace store runs (the `CSALT_TRACE_STORE`
/// env var). Both settings are bit-identical; the switch exists for
/// the determinism gates and the bench's ablation rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStoreRequest {
    /// Every job drives its own generators.
    Off,
    /// Materialize each workload tuple once and replay it (default).
    On,
}

impl TraceStoreRequest {
    /// Parses a `CSALT_TRACE_STORE` value. `0`/`off`/`false` (any
    /// case) disable; everything else — including unset — enables.
    #[must_use]
    pub fn parse(value: Option<&str>) -> Self {
        match value.map(str::to_ascii_lowercase).as_deref() {
            Some("0" | "off" | "false") => TraceStoreRequest::Off,
            _ => TraceStoreRequest::On,
        }
    }

    /// The request selected by the `CSALT_TRACE_STORE` env variable.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::var("CSALT_TRACE_STORE").ok().as_deref())
    }

    /// Whether the store should be enabled.
    #[must_use]
    pub fn enabled(self) -> bool {
        self == TraceStoreRequest::On
    }
}

/// Default in-memory budget: 512 MiB of trace records.
const DEFAULT_MAX_BYTES: u64 = 512 * 1024 * 1024;

fn max_bytes() -> u64 {
    std::env::var("CSALT_TRACE_STORE_MAX_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_BYTES)
}

/// Default on-disk persistence cap per tuple: 8 MiB. Regenerating a
/// large tuple costs tens of milliseconds of generator math, while
/// writing its streams costs tens of megabytes of disk — a losing
/// trade past a few MiB, so big tuples stay memory-only and only small
/// ones are persisted for other processes (`CSALT_TRACE_STORE_DISK_MAX_BYTES`).
const DEFAULT_DISK_MAX_BYTES: u64 = 8 * 1024 * 1024;

fn disk_max_bytes() -> u64 {
    std::env::var("CSALT_TRACE_STORE_DISK_MAX_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_DISK_MAX_BYTES)
}

// ---------------------------------------------------------------------
// Counters (mirroring the checkpoint module's).
// ---------------------------------------------------------------------

static MATERIALIZED: AtomicU64 = AtomicU64::new(0);
static REPLAYS: AtomicU64 = AtomicU64::new(0);
static DISK_LOADS: AtomicU64 = AtomicU64::new(0);

/// Process-wide staged-trace-store activity (monotonic counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Tuples generated from scratch (the expensive path, once each).
    pub materialized: u64,
    /// Jobs served a staged replay matrix from the store.
    pub replays: u64,
    /// Tuples loaded back from the on-disk cache instead of generated.
    pub disk_loads: u64,
}

/// Snapshot of the process-wide trace-store counters.
#[must_use]
pub fn stats() -> TraceStoreStats {
    TraceStoreStats {
        materialized: MATERIALIZED.load(Ordering::Relaxed),
        replays: REPLAYS.load(Ordering::Relaxed),
        disk_loads: DISK_LOADS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Tuple identity.
// ---------------------------------------------------------------------

/// Canonical JSON of the stream-determining subset of `cfg`: the
/// workload pairing, seed, footprint scale, and the matrix shape
/// (cores × contexts per core). Nothing else reaches the generators.
fn trace_tuple_json(cfg: &SimConfig) -> String {
    use serde_json::Value;
    let mut keep: Vec<(String, Value)> = Vec::new();
    if let Value::Map(entries) = cfg.to_content() {
        for (k, v) in entries {
            match k.as_str() {
                "workload" | "seed" | "scale" => keep.push((k, v)),
                "system" => {
                    if let Value::Map(sys) = v {
                        for (sk, sv) in sys {
                            if matches!(sk.as_str(), "cores" | "contexts_per_core") {
                                keep.push((format!("system.{sk}"), sv));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    canonical_json(&Value::Map(keep))
}

/// The workload-tuple key: 16 hex digits of FNV-1a over
/// [`trace_tuple_json`]. Configs with equal keys drive byte-identical
/// generator streams, so they share one materialized trace matrix.
#[must_use]
pub fn trace_key(cfg: &SimConfig) -> String {
    format!("{:016x}", fnv1a_bytes(trace_tuple_json(cfg).as_bytes()))
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

/// One resident tuple: the staged matrix plus bookkeeping for the
/// byte-budget eviction.
struct Resident {
    matrix: Arc<Vec<Vec<TraceFile>>>,
    /// Records per stream (every stream has the same length).
    len: u64,
    bytes: u64,
    /// Insertion stamp: smallest evicts first.
    stamp: u64,
}

struct Store {
    tuples: BTreeMap<String, Resident>,
    total_bytes: u64,
    next_stamp: u64,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(Store {
            tuples: BTreeMap::new(),
            total_bytes: 0,
            next_stamp: 0,
        })
    })
}

/// Empties the process-wide resident store (the monotonic counters are
/// untouched). For benches and tests that measure multiple passes in
/// one process: a pass advertised as cold must not inherit tuples a
/// previous pass materialized.
pub fn clear_resident() {
    let mut s = store().lock().unwrap_or_else(PoisonError::into_inner);
    s.tuples.clear();
    s.total_bytes = 0;
}

/// Per-tuple materialization gates: when a whole scheduling wave
/// misses the same tuple at once, one worker generates it while the
/// rest block on the gate and then hit the resident fast path, instead
/// of every worker redundantly running the generators.
fn inflight(key: &str) -> Arc<Mutex<()>> {
    static INFLIGHT: OnceLock<Mutex<BTreeMap<String, Arc<Mutex<()>>>>> = OnceLock::new();
    let map = INFLIGHT.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut g = map.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(g.entry(key.to_string()).or_default())
}

/// 32 bytes per record, `cores × vms` streams.
fn matrix_bytes(cfg: &SimConfig, len: u64) -> u64 {
    len.saturating_mul(32)
        .saturating_mul(u64::from(cfg.system.cores))
        .saturating_mul(u64::from(cfg.system.contexts_per_core))
}

/// On-disk path of one `(vm, core)` stream of a tuple.
fn stream_path(dir: &std::path::Path, key: &str, vm: usize, core: usize) -> PathBuf {
    dir.join(format!(
        "trace-{}-{key}-v{vm}c{core}.trace",
        engine_fingerprint()
    ))
}

/// Tries to load a complete tuple matrix (length ≥ `needed`) from the
/// on-disk cache. Any missing, short or unreadable stream means the
/// whole tuple regenerates — a torn file can never corrupt a run
/// because `TraceFile::open` validates before the records are used.
fn load_from_disk(cfg: &SimConfig, key: &str, needed: u64) -> Option<Vec<Vec<TraceFile>>> {
    let dir = SweepOptions::from_env().cache_dir?;
    let cores = cfg.system.cores as usize;
    let vms = cfg.system.contexts_per_core as usize;
    let mut matrix = Vec::with_capacity(vms);
    for vm in 0..vms {
        let mut row = Vec::with_capacity(cores);
        for core in 0..cores {
            let mut t = TraceFile::open(stream_path(&dir, key, vm, core)).ok()?;
            if (t.len() as u64) < needed {
                return None;
            }
            t.restage(Asid::new(vm as u16 + 1));
            row.push(t);
        }
        matrix.push(row);
    }
    Some(matrix)
}

/// Records `len` accesses of every `(vm, core)` generator stream into
/// staged traces, and (best-effort) persists them for other processes.
fn generate(cfg: &SimConfig, key: &str, len: u64) -> Vec<Vec<TraceFile>> {
    let dir = SweepOptions::from_env()
        .cache_dir
        .filter(|_| matrix_bytes(cfg, len) <= disk_max_bytes());
    if let Some(d) = &dir {
        let _ = std::fs::create_dir_all(d);
    }
    let mut threads = build_threads(cfg);
    threads
        .iter_mut()
        .enumerate()
        .map(|(vm, row)| {
            row.iter_mut()
                .enumerate()
                .map(|(core, g)| {
                    let records = (0..len).map(|_| g.next_access()).collect();
                    let mut t = TraceFile::from_records(records);
                    t.restage(Asid::new(vm as u16 + 1));
                    if let Some(dir) = &dir {
                        let _ = t.save_v2(stream_path(dir, key, vm, core));
                    }
                    t
                })
                .collect()
        })
        .collect()
}

/// The store's entry point: a staged generator matrix for `cfg`, or
/// `None` when the store is off, the tuple is over budget, or the run
/// consumes no accesses. The returned matrix clones cheaply out of the
/// shared store; `run_with_generators` turns it into the zero-repack
/// `StagedReplay` plan.
pub(crate) fn staged_threads(cfg: &SimConfig) -> Option<Vec<Vec<AnyGenerator>>> {
    if !TraceStoreRequest::from_env().enabled() {
        return None;
    }
    // Longest prefix any single stream can be asked for: one core's
    // whole access budget could come from one VM's stream.
    let needed = cfg
        .warmup_accesses_per_core
        .checked_add(cfg.accesses_per_core)?;
    if needed == 0 {
        return None;
    }
    let budget = max_bytes();
    if matrix_bytes(cfg, needed) > budget {
        return None;
    }
    let key = trace_key(cfg);

    // Fast path: an adequate matrix is already resident.
    {
        let mut s = store().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(r) = s.tuples.get(&key) {
            if r.len >= needed {
                let m = Arc::clone(&r.matrix);
                drop(s);
                REPLAYS.fetch_add(1, Ordering::Relaxed);
                return Some(to_generators(&m));
            }
            // Too short for this request: drop it, regenerate longer.
            let r = s.tuples.remove(&key).expect("checked present");
            s.total_bytes -= r.bytes;
        }
    }

    // Slow path: disk, then generation. Run outside the store lock so
    // distinct tuples materialize in parallel, but under a per-tuple
    // gate so same-tuple workers block and then reuse the first
    // worker's matrix rather than regenerating it.
    let gate = inflight(&key);
    let _gate = gate.lock().unwrap_or_else(PoisonError::into_inner);
    {
        let s = store().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(r) = s.tuples.get(&key) {
            if r.len >= needed {
                let m = Arc::clone(&r.matrix);
                drop(s);
                REPLAYS.fetch_add(1, Ordering::Relaxed);
                return Some(to_generators(&m));
            }
        }
    }
    let matrix = match load_from_disk(cfg, &key, needed) {
        Some(m) => {
            DISK_LOADS.fetch_add(1, Ordering::Relaxed);
            m
        }
        None => {
            MATERIALIZED.fetch_add(1, Ordering::Relaxed);
            generate(cfg, &key, needed)
        }
    };
    let len = matrix[0][0].len() as u64;
    let bytes = matrix_bytes(cfg, len);
    let matrix = Arc::new(matrix);

    let mut s = store().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(r) = s.tuples.get(&key) {
        if r.len >= len {
            // A concurrent materializer won; use its (adequate) copy.
            let m = Arc::clone(&r.matrix);
            drop(s);
            REPLAYS.fetch_add(1, Ordering::Relaxed);
            return Some(to_generators(&m));
        }
        let old = s.tuples.remove(&key).expect("checked present");
        s.total_bytes -= old.bytes;
    }
    // Evict oldest-first until this tuple fits the byte budget.
    while s.total_bytes.saturating_add(bytes) > budget && !s.tuples.is_empty() {
        let oldest = s
            .tuples
            .iter()
            .min_by_key(|(_, r)| r.stamp)
            .map(|(k, _)| k.clone())
            .expect("non-empty");
        let r = s.tuples.remove(&oldest).expect("checked present");
        s.total_bytes -= r.bytes;
    }
    let stamp = s.next_stamp;
    s.next_stamp += 1;
    s.total_bytes += bytes;
    s.tuples.insert(
        key,
        Resident {
            matrix: Arc::clone(&matrix),
            len,
            bytes,
            stamp,
        },
    );
    drop(s);
    REPLAYS.fetch_add(1, Ordering::Relaxed);
    Some(to_generators(&matrix))
}

/// Clones the shared matrix into the owned generator matrix one run
/// consumes (replay advances per-stream cursors, so each run needs its
/// own copy of the cursor — the record buffers are memcpy'd).
fn to_generators(matrix: &Arc<Vec<Vec<TraceFile>>>) -> Vec<Vec<AnyGenerator>> {
    matrix
        .iter()
        .map(|row| row.iter().map(|t| AnyGenerator::Trace(t.clone())).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::TranslationScheme;
    use csalt_workloads::WorkloadSpec;

    fn cfg() -> SimConfig {
        let mut c = SimConfig::new(
            WorkloadSpec::homogeneous("gups", csalt_workloads::BenchKind::Gups),
            TranslationScheme::CsaltCd,
        );
        c.system.cores = 2;
        c.accesses_per_core = 1_000;
        c.warmup_accesses_per_core = 500;
        c
    }

    #[test]
    fn parse_matches_l0_conventions() {
        assert_eq!(TraceStoreRequest::parse(None), TraceStoreRequest::On);
        assert_eq!(
            TraceStoreRequest::parse(Some("off")),
            TraceStoreRequest::Off
        );
        assert_eq!(TraceStoreRequest::parse(Some("1")), TraceStoreRequest::On);
    }

    #[test]
    fn trace_key_ignores_scheme_and_measured_knobs() {
        let a = cfg();
        let mut b = a.clone();
        b.scheme = TranslationScheme::Tsb;
        b.virtualized = false;
        b.accesses_per_core *= 7;
        b.warmup_accesses_per_core = 0;
        b.system.epoch_accesses = 999;
        assert_eq!(trace_key(&a), trace_key(&b));
    }

    #[test]
    fn trace_key_tracks_stream_determining_fields() {
        let base = cfg();
        let mut seed = base.clone();
        seed.seed ^= 1;
        assert_ne!(trace_key(&base), trace_key(&seed));
        let mut cores = base.clone();
        cores.system.cores = 4;
        assert_ne!(trace_key(&base), trace_key(&cores));
        let mut wl = base.clone();
        wl.workload = WorkloadSpec::homogeneous("gups2", csalt_workloads::BenchKind::Gups);
        assert_ne!(trace_key(&base), trace_key(&wl));
    }

    #[test]
    fn replay_matrix_matches_generator_streams() {
        // The store's matrix must reproduce the generators' streams
        // record-for-record — the property every scheme's bit-identity
        // rests on.
        let c = cfg();
        std::env::set_var("CSALT_NO_CACHE", "1");
        let staged = staged_threads(&c);
        std::env::remove_var("CSALT_NO_CACHE");
        let mut staged = staged.expect("store enabled by default");
        let mut reference = build_threads(&c);
        for (vm, row) in reference.iter_mut().enumerate() {
            for (core, g) in row.iter_mut().enumerate() {
                let t = &mut staged[vm][core];
                for i in 0..(c.warmup_accesses_per_core + c.accesses_per_core) {
                    assert_eq!(
                        t.next_access(),
                        g.next_access(),
                        "stream (vm {vm}, core {core}) diverged at record {i}"
                    );
                }
            }
        }
    }
}
