//! Functional fast-forward: state-only execution for warmup and for the
//! gaps between sampled measurement windows.
//!
//! The loop drives the same per-core round-robin schedule as the timed
//! phase — including context-switch ASID churn — but commits accesses
//! through [`MemoryHierarchy::access_functional`], which updates TLB,
//! cache and page-table *state* (fills, replacement stamps, radix-table
//! population) while skipping all cycle accounting, DRAM charging and
//! partitioner utility math. That is the classic functional/timing
//! split ("Fast TLB Simulation for RISC-V Systems"): state transitions
//! are cheap, timing is expensive, and warmup only needs the former.
//!
//! This module is integer-only by policy (srclint `float-deny`): it has
//! no cycle clock, so switches are scheduled by retired instructions —
//! the quantum's instruction equivalent is computed by the caller and
//! arrives here as a plain integer.

use crate::simulator::{AccessSource, CoreState};
use csalt_core::{BlockAccess, MemoryHierarchy};
use csalt_types::{ContextId, CoreId};

/// Accesses gathered per batched functional commit. Unlike the timed
/// phase, a block may span multiple sweeps: the functional schedule
/// keys on instruction counts recorded at gather time and has no
/// feedback from commit, so gathering ahead is exact.
const BLOCK: usize = 64;

/// The integer context-switch schedule of a functional phase.
///
/// The timed phase switches a core when its cycle counter crosses the
/// quantum; with no cycles here, the equivalent instruction count
/// (`quantum / base_cpi`, precomputed by the caller) stands in. The
/// approximation only shifts *where* in the stream switches land, not
/// whether the ASID churn the paper studies happens.
pub(crate) struct FunctionalSchedule {
    /// Instructions a core retires between context switches (≥ 1).
    pub(crate) instr_per_switch: u64,
}

/// Runs every core `accesses_per_core` further accesses through the
/// functional (state-only) path.
///
/// Mirrors the timed phase's sweep order — core 0..n per round — so a
/// functional phase consumes each `(core, vm)` stream in the same
/// deterministic interleaving. Per-phase progress is tracked locally:
/// `CoreState::accesses_done`, cycle and instruction counters are left
/// untouched (fast-forwarded work is by definition unmeasured), but
/// `current_vm` *does* advance so the measured phase resumes from the
/// schedule position warmup ended on, exactly like a timed warmup.
pub(crate) fn functional_phase<S: AccessSource>(
    hier: &mut MemoryHierarchy,
    source: &mut S,
    vm_ctx: &[ContextId],
    cores_state: &mut [CoreState],
    accesses_per_core: u64,
    sched: &FunctionalSchedule,
) {
    if accesses_per_core == 0 {
        return;
    }
    let vms = vm_ctx.len() as u32;
    let cores = cores_state.len();
    let mut done = vec![0u64; cores];
    let mut instr = vec![0u64; cores];
    let mut remaining = cores;
    // Gather whole sweeps into a block, then commit the block through
    // the batched functional entry point. Commit order equals gather
    // order equals the historical interleaved order, so the state
    // transitions are bit-identical; only the call granularity changes.
    let mut block: Vec<BlockAccess> = Vec::with_capacity(BLOCK + cores);
    while remaining > 0 {
        block.clear();
        while remaining > 0 && block.len() < BLOCK {
            for core in 0..cores {
                if done[core] >= accesses_per_core {
                    continue;
                }
                if vms > 1 && instr[core] >= sched.instr_per_switch {
                    instr[core] = 0;
                    cores_state[core].current_vm = (cores_state[core].current_vm + 1) % vms;
                    // Drop the core's memoized hit-ways on the switch,
                    // as the timed phase does. Stats-only.
                    hier.l0_note_context_switch(core);
                }
                let vm = cores_state[core].current_vm as usize;
                let staged = source.next(core, vm);
                instr[core] += staged.acc.instructions();
                block.push(BlockAccess {
                    core: CoreId::new(core as u8),
                    ctx: vm_ctx[vm],
                    acc: staged.acc,
                    hint: staged.hint,
                });
                done[core] += 1;
                if done[core] >= accesses_per_core {
                    remaining -= 1;
                }
            }
        }
        hier.access_block_functional(&block);
    }
}
