//! Functional fast-forward: state-only execution for warmup and for the
//! gaps between sampled measurement windows.
//!
//! The loop drives the same per-core round-robin schedule as the timed
//! phase — including context-switch ASID churn — but commits accesses
//! through [`MemoryHierarchy::access_functional`], which updates TLB,
//! cache and page-table *state* (fills, replacement stamps, radix-table
//! population) while skipping all cycle accounting, DRAM charging and
//! partitioner utility math. That is the classic functional/timing
//! split ("Fast TLB Simulation for RISC-V Systems"): state transitions
//! are cheap, timing is expensive, and warmup only needs the former.
//!
//! This module is integer-only by policy (srclint `float-deny`): it has
//! no cycle clock, so switches are scheduled by retired instructions —
//! the quantum's instruction equivalent is computed by the caller and
//! arrives here as a plain integer.

use crate::simulator::{AccessSource, CoreState};
use csalt_core::MemoryHierarchy;
use csalt_types::{ContextId, CoreId};

/// The integer context-switch schedule of a functional phase.
///
/// The timed phase switches a core when its cycle counter crosses the
/// quantum; with no cycles here, the equivalent instruction count
/// (`quantum / base_cpi`, precomputed by the caller) stands in. The
/// approximation only shifts *where* in the stream switches land, not
/// whether the ASID churn the paper studies happens.
pub(crate) struct FunctionalSchedule {
    /// Instructions a core retires between context switches (≥ 1).
    pub(crate) instr_per_switch: u64,
}

/// Runs every core `accesses_per_core` further accesses through the
/// functional (state-only) path.
///
/// Mirrors the timed phase's sweep order — core 0..n per round — so a
/// functional phase consumes each `(core, vm)` stream in the same
/// deterministic interleaving. Per-phase progress is tracked locally:
/// `CoreState::accesses_done`, cycle and instruction counters are left
/// untouched (fast-forwarded work is by definition unmeasured), but
/// `current_vm` *does* advance so the measured phase resumes from the
/// schedule position warmup ended on, exactly like a timed warmup.
pub(crate) fn functional_phase<S: AccessSource>(
    hier: &mut MemoryHierarchy,
    source: &mut S,
    vm_ctx: &[ContextId],
    cores_state: &mut [CoreState],
    accesses_per_core: u64,
    sched: &FunctionalSchedule,
) {
    if accesses_per_core == 0 {
        return;
    }
    let vms = vm_ctx.len() as u32;
    let cores = cores_state.len();
    let mut done = vec![0u64; cores];
    let mut instr = vec![0u64; cores];
    let mut remaining = cores;
    while remaining > 0 {
        for core in 0..cores {
            if done[core] >= accesses_per_core {
                continue;
            }
            if vms > 1 && instr[core] >= sched.instr_per_switch {
                instr[core] = 0;
                cores_state[core].current_vm = (cores_state[core].current_vm + 1) % vms;
            }
            let vm = cores_state[core].current_vm as usize;
            let staged = source.next(core, vm);
            instr[core] += staged.acc.instructions();
            hier.access_functional(
                CoreId::new(core as u8),
                vm_ctx[vm],
                staged.acc,
                &staged.hint,
            );
            done[core] += 1;
            if done[core] >= accesses_per_core {
                remaining -= 1;
            }
        }
    }
}
