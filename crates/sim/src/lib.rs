//! The CSALT experiment simulator: multi-core trace-driven runs with VM
//! context switching, plus one experiment runner per table/figure of
//! the paper's evaluation.
//!
//! * [`SimConfig`] / [`run`] — simulate one (workload, scheme)
//!   configuration on the 8-core machine of Table 2.
//! * [`experiments`] — the per-figure harnesses (`fig01` … `fig16`,
//!   `tab01`), each returning a printable [`experiments::Table`].
//!
//! # Example
//!
//! ```
//! use csalt_sim::{run, SimConfig};
//! use csalt_types::TranslationScheme;
//! use csalt_workloads::{BenchKind, WorkloadSpec};
//!
//! let mut cfg = SimConfig::new(
//!     WorkloadSpec::homogeneous("gups", BenchKind::Gups),
//!     TranslationScheme::CsaltCd,
//! );
//! cfg.system.cores = 1;          // keep the doctest fast
//! cfg.accesses_per_core = 5_000;
//! cfg.scale = 0.05;
//! let result = run(&cfg);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod experiments;
mod fastforward;
mod simulator;
pub mod sweep;
pub mod trace_store;

pub use checkpoint::{CkptRequest, CkptStats};
pub use csalt_pipeline::{PipelineStats, ThreadBudget};
pub use simulator::{
    build_threads, run, run_inline, run_pipelined, run_with_generators, run_with_stats, L0Request,
    OccupancySample, PipelineRequest, SimConfig, SimResult, WarmupMode,
};
pub use sweep::{Sweep, SweepOptions, SweepStats};
pub use trace_store::{TraceStoreRequest, TraceStoreStats};

#[cfg(feature = "telemetry")]
pub use simulator::{run_instrumented, run_instrumented_with_stats, Instrumentation};
