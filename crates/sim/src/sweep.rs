//! Sweep engine v2: content-addressed result caching, in-process
//! dedup, and a cost-model scheduler for the full figure suite.
//!
//! Reproducing the paper's evaluation (§5) means running hundreds of
//! [`SimConfig`]s across 17+ bench targets, many byte-identical across
//! figures (the fig07 baseline grid reappears in fig08/10/11/13), and
//! every run pays a measurement-length warmup. This module makes the
//! sweep layer — not the simulator — do the saving, in three layers:
//!
//! 1. **Content-addressed result cache.** Every config is keyed by
//!    [`config_key`] — an FNV-1a hash of its canonical JSON (sorted
//!    object keys, shortest-round-trip floats) — and results persist as
//!    JSONL under a cache directory, in a file scoped to the current
//!    [`engine_fingerprint`] (workspace version + git revision + a
//!    dirty-diff hash). A warm re-run of an unchanged suite performs
//!    *zero* simulations; any engine change invalidates everything
//!    automatically because the fingerprint (and hence the file) moves.
//!    Correctness never rests on the 64-bit hash: the in-memory store
//!    is keyed by the full canonical JSON text, so a colliding key can
//!    at worst miss, never alias.
//!
//! 2. **In-process dedup.** Identical configs submitted by different
//!    figures within one process run once and share the result, both
//!    within a batch (duplicates are folded before scheduling) and
//!    across batches (the in-memory store survives between
//!    [`Sweep::run_batch`] calls on the same engine).
//!
//! 3. **Cost-model scheduler.** Jobs are pre-sorted longest-first using
//!    persisted per-config wall-clock observations (falling back to an
//!    `accesses × cores` estimate calibrated against everything seen so
//!    far), then claimed by workers through an atomic index — no job
//!    mutex, no LIFO tail-straggling — and each worker writes its
//!    result into a disjoint [`OnceLock`] slot, so there is no results
//!    mutex either. Per-job timings flow back into the persisted cost
//!    model and out through a [`csalt_telemetry::Recorder`], so the
//!    schedule self-improves run over run.
//!
//! Results are bit-identical to sequential execution: `run` is a pure
//! function of the config, the vendored JSON layer round-trips `f64`s
//! exactly (shortest-round-trip formatting), and the sweep-level tests
//! pin that cached, deduped, and freshly-simulated paths agree.

use crate::simulator::{run, SimConfig, SimResult};
use csalt_pipeline::ThreadBudget;
use csalt_telemetry::{HistogramRecord, NullRecorder, Recorder, TelemetryRecord};
use csalt_trace::{ArgValue, Domain, TraceBuffer, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------
// Canonical hashing and the engine fingerprint.
// ---------------------------------------------------------------------

/// FNV-1a over `bytes`; the workspace's standard cheap stable hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Recursively sorts every object's keys so that serialization order
/// can never leak into the hash.
fn sort_content(value: serde_json::Value) -> serde_json::Value {
    use serde_json::Value;
    match value {
        Value::Seq(items) => Value::Seq(items.into_iter().map(sort_content).collect()),
        Value::Map(entries) => {
            let mut entries: Vec<(String, Value)> = entries
                .into_iter()
                .map(|(k, v)| (k, sort_content(v)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Map(entries)
        }
        other => other,
    }
}

/// Canonical JSON for any serializable value: compact, object keys
/// sorted recursively, floats in shortest-round-trip form. Two values
/// have the same canonical JSON iff serde sees them identically, so it
/// is invariant under serde round-trips.
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    let sorted = sort_content(value.to_content());
    serde_json::to_string(&sorted).unwrap_or_else(|_| String::from("null"))
}

/// The content address of one [`SimConfig`]: 16 hex digits of FNV-1a
/// over [`canonical_json`]. Used to key persisted cache entries and the
/// cost model; equality of full canonical text (collision-proof) gates
/// every actual result reuse.
pub fn config_key(cfg: &SimConfig) -> String {
    format!("{:016x}", fnv1a(canonical_json(cfg).as_bytes()))
}

/// The workspace root (compile-time, like every other on-disk anchor in
/// this repo).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn git_output(args: &[&str]) -> Option<Vec<u8>> {
    std::process::Command::new("git")
        .args(args)
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| o.stdout)
}

/// `git rev-parse --short HEAD` at the workspace root, or `"unknown"`.
/// Shared by the bench harness (`BENCH_throughput.json`,
/// `BENCH_sweep.json`) and the engine fingerprint below.
pub fn git_rev() -> String {
    git_output(&["rev-parse", "--short", "HEAD"])
        .and_then(|out| String::from_utf8(out).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD (`git status --porcelain`
/// non-empty, untracked files included). The bench recorders embed this
/// in `BENCH_*.json` and refuse to overwrite a clean-tree record for
/// the same revision with dirty-tree numbers.
pub fn git_dirty() -> bool {
    git_output(&["status", "--porcelain"]).is_some_and(|out| !out.is_empty())
}

/// Identifies the simulation engine build: workspace version + git
/// revision, plus a hash of the uncommitted diff when the tree is
/// dirty. Any engine change moves the fingerprint and thereby orphans
/// every persisted result (conservative over-invalidation: doc-only
/// commits also invalidate, which costs one cold run and risks nothing).
pub fn engine_fingerprint() -> String {
    static FP: OnceLock<String> = OnceLock::new();
    FP.get_or_init(|| {
        let mut fp = format!("v{}-{}", env!("CARGO_PKG_VERSION"), git_rev());
        let status = git_output(&["status", "--porcelain"]).unwrap_or_default();
        if !status.is_empty() {
            // Untracked files only appear in the status listing, so hash
            // both it and the tracked-content diff.
            let mut bytes = status;
            bytes.extend(git_output(&["diff", "HEAD"]).unwrap_or_default());
            fp.push_str(&format!("-d{:08x}", fnv1a(&bytes) as u32));
        }
        fp.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '-'
                }
            })
            .collect()
    })
    .clone()
}

// ---------------------------------------------------------------------
// Options and statistics.
// ---------------------------------------------------------------------

/// Construction-time knobs for a [`Sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Where persisted results and the cost model live; `None` disables
    /// persistence (in-process dedup still applies).
    pub cache_dir: Option<PathBuf>,
    /// Fixed worker count; `None` = available parallelism.
    pub jobs: Option<usize>,
}

impl SweepOptions {
    /// Persist under `dir` with default parallelism.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            cache_dir: Some(dir.into()),
            jobs: None,
        }
    }

    /// The process-wide defaults: `CSALT_NO_CACHE` (set = no
    /// persistence), `CSALT_CACHE_DIR` (default
    /// `target/csalt-cache/`), `CSALT_JOBS` (default: all CPUs).
    pub fn from_env() -> Self {
        let cache_dir = if std::env::var_os("CSALT_NO_CACHE").is_some() {
            None
        } else {
            Some(
                std::env::var_os("CSALT_CACHE_DIR")
                    .map_or_else(Self::default_cache_dir, PathBuf::from),
            )
        };
        Self {
            cache_dir,
            jobs: std::env::var("CSALT_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n > 0),
        }
    }

    /// `target/csalt-cache/` at the workspace root.
    pub fn default_cache_dir() -> PathBuf {
        repo_root().join("target/csalt-cache")
    }
}

/// What one [`Sweep`] has done so far (monotonic counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Simulations actually executed.
    pub simulated: u64,
    /// Configs resolved without simulating: from the persisted store or
    /// from an earlier batch in this process.
    pub cache_hits: u64,
    /// Duplicate configs folded within batches (beyond the first copy).
    pub deduped: u64,
    /// Persisted results loaded for the current engine fingerprint.
    pub persisted_loaded: u64,
    /// Corrupt or mismatched cache lines skipped (each falls back to
    /// simulation).
    pub cache_errors: u64,
    /// Simulations that restored a warmup checkpoint instead of
    /// simulating their warmup prefix (a subset of `simulated`).
    pub restored: u64,
}

#[derive(Debug, Default)]
struct Counters {
    simulated: AtomicU64,
    cache_hits: AtomicU64,
    deduped: AtomicU64,
    persisted_loaded: AtomicU64,
    cache_errors: AtomicU64,
    restored: AtomicU64,
}

// ---------------------------------------------------------------------
// Persistence schema.
// ---------------------------------------------------------------------

/// One persisted result line in `results-<fingerprint>.jsonl`.
#[derive(Debug, Serialize, Deserialize)]
struct CacheEntry {
    /// [`config_key`] of the config (debugging + cost-model join).
    key: String,
    /// Full canonical config JSON — the collision-proof identity.
    config: String,
    /// Observed simulation wall-clock, seconds.
    wall_secs: f64,
    /// The simulation outcome, bit-identical under JSON round-trip.
    result: SimResult,
}

/// One persisted cost observation in `costs.jsonl` (append-only, later
/// lines win; deliberately *not* fingerprint-scoped — stale timings
/// still sort a fresh engine's jobs far better than the heuristic).
#[derive(Debug)]
struct CostEntry {
    /// [`config_key`] of the config.
    key: String,
    /// Observed wall-clock, seconds.
    wall_secs: f64,
    /// Total simulated accesses (warmup + measured, all cores), for
    /// calibrating the fallback estimate.
    accesses: u64,
    /// Whether the run restored a warmup checkpoint. Restored timings
    /// are recorded but kept out of the *cold* cost model — a restored
    /// wall-clock would make the scheduler (and the fallback
    /// throughput calibration) systematically underestimate cold runs.
    restored: bool,
}

// Manual serde: the vendored derive has no `default` attribute, and
// `costs.jsonl` lines written before the `restored` field existed must
// keep loading (missing field ⇒ `false`, i.e. a cold observation).
impl Serialize for CostEntry {
    fn to_content(&self) -> serde_json::Value {
        serde_json::Value::Map(vec![
            ("key".to_owned(), self.key.to_content()),
            ("wall_secs".to_owned(), self.wall_secs.to_content()),
            ("accesses".to_owned(), self.accesses.to_content()),
            ("restored".to_owned(), self.restored.to_content()),
        ])
    }
}

impl Deserialize for CostEntry {
    fn from_content(content: &serde_json::Value) -> Result<Self, serde::DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("object for struct CostEntry", content))?;
        Ok(CostEntry {
            key: serde::field(entries, "key", "CostEntry")?,
            wall_secs: serde::field(entries, "wall_secs", "CostEntry")?,
            accesses: serde::field(entries, "accesses", "CostEntry")?,
            restored: serde::field(entries, "restored", "CostEntry").unwrap_or(false),
        })
    }
}

/// Warmup + measured accesses across all cores: the cost heuristic's
/// size proxy for a config never timed before.
fn total_accesses(cfg: &SimConfig) -> u64 {
    (cfg.accesses_per_core + cfg.warmup_accesses_per_core) * u64::from(cfg.system.cores)
}

// ---------------------------------------------------------------------
// The sweep engine.
// ---------------------------------------------------------------------

fn lock<'a, T>(m: &'a Mutex<T>, _what: &str) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A content-addressed, deduplicating, cost-model-scheduled batch
/// runner for [`SimConfig`]s. See the module docs for the design.
pub struct Sweep {
    fingerprint: String,
    jobs: Option<usize>,
    /// canonical config JSON → result (persisted hits + this process's
    /// completed runs).
    results: Mutex<BTreeMap<String, SimResult>>,
    /// [`config_key`] → (wall seconds, total accesses).
    costs: Mutex<BTreeMap<String, (f64, u64)>>,
    results_file: Mutex<Option<File>>,
    costs_file: Mutex<Option<File>>,
    recorder: Mutex<Box<dyn Recorder>>,
    /// Wall-domain span sink (`--trace` on figure suites): per-job
    /// `simulate` spans on per-worker tracks plus batch-level
    /// cache-hit/dedup instants. `None` keeps the engine untraced.
    trace: Mutex<Option<TraceBuffer>>,
    counters: Counters,
}

/// One traced job: `(worker, job index, begin µs, end µs, restored)`.
type JobSpan = (usize, usize, u64, u64, bool);

impl Sweep {
    /// Builds a sweep, loading any persisted results for the current
    /// engine fingerprint and the full cost model from `cache_dir`.
    pub fn new(options: SweepOptions) -> Self {
        let fingerprint = engine_fingerprint();
        let mut sweep = Self {
            fingerprint: fingerprint.clone(),
            jobs: options.jobs,
            results: Mutex::new(BTreeMap::new()),
            costs: Mutex::new(BTreeMap::new()),
            results_file: Mutex::new(None),
            costs_file: Mutex::new(None),
            recorder: Mutex::new(Box::new(NullRecorder)),
            trace: Mutex::new(None),
            counters: Counters::default(),
        };
        if let Some(dir) = options.cache_dir {
            sweep.attach_cache_dir(&dir);
        }
        sweep
    }

    /// The process-wide sweep every [`crate::experiments::run_parallel`]
    /// call routes through, configured from the environment on first
    /// touch (`CSALT_CACHE_DIR`, `CSALT_NO_CACHE`, `CSALT_JOBS`).
    pub fn global() -> &'static Sweep {
        static GLOBAL: OnceLock<Sweep> = OnceLock::new();
        GLOBAL.get_or_init(|| Sweep::new(SweepOptions::from_env()))
    }

    /// The engine fingerprint this sweep's persistence is scoped to.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            simulated: self.counters.simulated.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            deduped: self.counters.deduped.load(Ordering::Relaxed),
            persisted_loaded: self.counters.persisted_loaded.load(Ordering::Relaxed),
            cache_errors: self.counters.cache_errors.load(Ordering::Relaxed),
            restored: self.counters.restored.load(Ordering::Relaxed),
        }
    }

    /// Swaps in a telemetry recorder for per-job timing records
    /// (`sweep.jobs_simulated`, `sweep.job_wall_us`, batch gauges),
    /// returning the previous one so callers can inspect or flush it.
    pub fn set_recorder(&self, recorder: Box<dyn Recorder>) -> Box<dyn Recorder> {
        std::mem::replace(&mut *lock(&self.recorder, "recorder"), recorder)
    }

    /// Installs a span-trace sink, mirroring [`Self::set_recorder`]:
    /// subsequent batches emit wall-domain `simulate` spans (one per
    /// job, on its worker's track) and batch instants into it.
    pub fn set_trace(&self, buffer: TraceBuffer) -> Option<TraceBuffer> {
        lock(&self.trace, "trace").replace(buffer)
    }

    /// Removes and returns the installed trace sink, if any — callers
    /// export it with [`csalt_trace::write_chrome`].
    pub fn take_trace(&self) -> Option<TraceBuffer> {
        lock(&self.trace, "trace").take()
    }

    fn attach_cache_dir(&mut self, dir: &Path) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("csalt-sweep: cannot create {}: {e}", dir.display());
            return;
        }
        let results_path = dir.join(format!("results-{}.jsonl", self.fingerprint));
        let costs_path = dir.join("costs.jsonl");
        self.load_results(&results_path);
        self.load_costs(&costs_path);
        let open = |path: &Path| OpenOptions::new().append(true).create(true).open(path).ok();
        *self
            .results_file
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = open(&results_path);
        *self
            .costs_file
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = open(&costs_path);
    }

    /// Loads persisted results, skipping (and counting) any corrupt or
    /// inconsistent line — a truncated tail or a damaged entry just
    /// means that config simulates again.
    fn load_results(&mut self, path: &Path) {
        let Ok(text) = std::fs::read_to_string(path) else {
            return;
        };
        let results = self
            .results
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<CacheEntry>(line) {
                Ok(entry) if entry.key == format!("{:016x}", fnv1a(entry.config.as_bytes())) => {
                    results.insert(entry.config, entry.result);
                    *self.counters.persisted_loaded.get_mut() += 1;
                }
                _ => *self.counters.cache_errors.get_mut() += 1,
            }
        }
    }

    fn load_costs(&mut self, path: &Path) {
        let Ok(text) = std::fs::read_to_string(path) else {
            return;
        };
        let costs = self.costs.get_mut().unwrap_or_else(PoisonError::into_inner);
        for line in text.lines() {
            if let Ok(entry) = serde_json::from_str::<CostEntry>(line) {
                // Restored timings never enter the cold model (see
                // `CostEntry::restored`).
                if !entry.restored {
                    costs.insert(entry.key, (entry.wall_secs, entry.accesses));
                }
            }
        }
    }

    /// Predicted wall-clock for a job: its own last observation if the
    /// cost model has one, else its access count over the calibrated
    /// throughput of everything observed so far (fallback 1M acc/s).
    fn predicted_secs(&self, key: &str, cfg: &SimConfig) -> f64 {
        let costs = lock(&self.costs, "costs");
        if let Some(&(secs, _)) = costs.get(key) {
            return secs;
        }
        let (mut sum_acc, mut sum_secs) = (0.0f64, 0.0f64);
        for &(secs, accesses) in costs.values() {
            sum_acc += accesses as f64;
            sum_secs += secs;
        }
        let throughput = if sum_secs > 0.0 && sum_acc > 0.0 {
            sum_acc / sum_secs
        } else {
            1.0e6
        };
        total_accesses(cfg) as f64 / throughput
    }

    fn worker_count(&self, jobs: usize) -> usize {
        self.jobs
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZero::get)
                    .unwrap_or(4)
            })
            .clamp(1, jobs.max(1))
    }

    /// Runs a batch of configurations, returning one result per config
    /// in submission order. Cached and duplicate configs are never
    /// simulated; everything else is scheduled longest-job-first over
    /// `jobs` workers and the outcomes (plus timings) are persisted.
    pub fn run_batch(&self, configs: Vec<SimConfig>) -> Vec<SimResult> {
        let canon: Vec<String> = configs.iter().map(canonical_json).collect();
        let mut out: Vec<Option<SimResult>> = vec![None; configs.len()];
        // Checkpoint activity over the batch (saves/restores/fallbacks
        // are process-wide monotonic counters; the delta is this
        // batch's contribution, reported as trace instants below).
        let ckpt_before = crate::checkpoint::stats();

        // Layer 1+2a: resolve against the in-memory store (persisted
        // hits and earlier batches).
        let mut batch_hits: u64 = 0;
        {
            let mem = lock(&self.results, "results");
            for (slot, text) in out.iter_mut().zip(&canon) {
                if let Some(r) = mem.get(text) {
                    *slot = Some(r.clone());
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    batch_hits += 1;
                }
            }
        }

        // Layer 2b: fold duplicates within the batch.
        let mut batch_deduped: u64 = 0;
        let mut job_of: BTreeMap<&str, usize> = BTreeMap::new();
        let mut jobs: Vec<(&str, &SimConfig)> = Vec::new();
        for (i, text) in canon.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            if job_of.contains_key(text.as_str()) {
                self.counters.deduped.fetch_add(1, Ordering::Relaxed);
                batch_deduped += 1;
            } else {
                job_of.insert(text, jobs.len());
                jobs.push((text, &configs[i]));
            }
        }

        // Layer 3: longest-job-first over an atomic claim index into
        // disjoint slots. (Execution order cannot affect results —
        // `run` is a pure function of its config — it only shapes the
        // parallel schedule's tail.)
        if !jobs.is_empty() {
            let mut order: Vec<(f64, usize)> = jobs
                .iter()
                .enumerate()
                .map(|(j, (text, cfg))| {
                    let key = format!("{:016x}", fnv1a(text.as_bytes()));
                    (self.predicted_secs(&key, cfg), j)
                })
                .collect();
            order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let schedule: Vec<usize> = order.into_iter().map(|(_, j)| j).collect();

            // Fork-from-snapshot scheduling: jobs sharing a canonical
            // warmup prefix run in two waves. The first job of each
            // prefix group in predicted-longest-first order leads — it
            // simulates the warmup and saves the checkpoint; the
            // group's remaining jobs (the followers) run in the second
            // wave, restore the snapshot, and simulate only their
            // measured phase. With checkpointing off (or warmup-free /
            // cache-less configs) every job leads and the schedule is
            // exactly the classic single wave.
            let ckpt_grouping = crate::checkpoint::CkptRequest::from_env().enabled()
                && SweepOptions::from_env().cache_dir.is_some();
            let mut leaders: Vec<usize> = Vec::new();
            let mut followers: Vec<usize> = Vec::new();
            let mut lead_of: BTreeMap<String, usize> = BTreeMap::new();
            for &j in &schedule {
                let cfg = jobs[j].1;
                if ckpt_grouping && cfg.warmup_accesses_per_core > 0 {
                    use std::collections::btree_map::Entry;
                    match lead_of.entry(crate::checkpoint::warmup_key(cfg)) {
                        Entry::Vacant(e) => {
                            e.insert(j);
                            leaders.push(j);
                        }
                        Entry::Occupied(_) => followers.push(j),
                    }
                } else {
                    leaders.push(j);
                }
            }

            let slots: Vec<OnceLock<(SimResult, f64, bool)>> =
                (0..jobs.len()).map(|_| OnceLock::new()).collect();
            // Reserve the workers from the shared thread budget for the
            // batch's duration, so pipelined runs nested inside a worker
            // see no free capacity and auto-fall back to inline — sweep
            // workers × pipeline producers never oversubscribes the
            // host. An explicit `jobs` option is honored even past the
            // budget (the user asked for it); the derived default yields
            // to whatever is still free, keeping at least one worker.
            let want = self.worker_count(jobs.len());
            let floor = if self.jobs.is_some() { want } else { 1 };
            let reservation = ThreadBudget::global().reserve_at_least(want, floor);
            let workers = reservation.granted();
            // Workers push one span after each job, so contention is
            // one lock per job.
            let tracing = lock(&self.trace, "trace").is_some();
            let job_spans: Mutex<Vec<JobSpan>> = Mutex::new(Vec::new());
            let run_wave = |wave: &[usize]| {
                let next = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    let (next, jobs, slots, spans) = (&next, &jobs, &slots, &job_spans);
                    for w in 0..workers {
                        s.spawn(move || loop {
                            let pos = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&j) = wave.get(pos) else {
                                break;
                            };
                            let begin = if tracing {
                                csalt_trace::timing::wall_micros()
                            } else {
                                0
                            };
                            let t = Instant::now();
                            let cfg = jobs[j].1;
                            // The shared staged-trace store serves every
                            // job of a workload tuple one materialized
                            // zero-repack replay matrix; configs it
                            // declines fall back to plain `run`.
                            let r = crate::trace_store::staged_threads(cfg)
                                .map(|threads| crate::simulator::run_with_generators(cfg, threads))
                                .unwrap_or_else(|| run(cfg));
                            let restored = crate::checkpoint::last_run_restored();
                            let secs = t.elapsed().as_secs_f64();
                            self.counters.simulated.fetch_add(1, Ordering::Relaxed);
                            if restored {
                                self.counters.restored.fetch_add(1, Ordering::Relaxed);
                            }
                            if tracing {
                                let end = csalt_trace::timing::wall_micros();
                                lock(spans, "job spans").push((w, j, begin, end, restored));
                            }
                            assert!(
                                slots[j].set((r, secs, restored)).is_ok(),
                                "disjoint job slots"
                            );
                        });
                    }
                });
            };
            run_wave(&leaders);
            if !followers.is_empty() {
                run_wave(&followers);
            }
            self.trace_jobs(
                job_spans
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner),
                &jobs,
            );

            // Integrate: memory store, persistence, cost model,
            // telemetry — all on the cold path, once per batch.
            let mut mem = lock(&self.results, "results");
            let mut recorder = lock(&self.recorder, "recorder");
            for (slot, (text, cfg)) in slots.into_iter().zip(&jobs) {
                let (result, secs, restored) =
                    slot.into_inner().expect("every claimed job completed");
                let key = format!("{:016x}", fnv1a(text.as_bytes()));
                let accesses = total_accesses(cfg);
                self.persist_result(&key, text, secs, &result);
                self.persist_cost(&key, secs, accesses, restored);
                if !restored {
                    lock(&self.costs, "costs").insert(key, (secs, accesses));
                }
                if recorder.is_enabled() {
                    recorder.counter("sweep.jobs_simulated", 1);
                    recorder.observe("sweep.job_wall_us", (secs * 1.0e6) as u64);
                }
                mem.insert((*text).to_owned(), result);
            }
            drop(mem);
            if recorder.is_enabled() {
                let stats = self.stats();
                recorder.gauge("sweep.cache_hits", stats.cache_hits as f64);
                recorder.gauge("sweep.deduped", stats.deduped as f64);
                recorder.gauge("sweep.restored", stats.restored as f64);
                let ckpt = crate::checkpoint::stats();
                for (name, delta) in [
                    (
                        "checkpoint.save",
                        ckpt.saves.saturating_sub(ckpt_before.saves),
                    ),
                    (
                        "checkpoint.restore",
                        ckpt.restores.saturating_sub(ckpt_before.restores),
                    ),
                    (
                        "checkpoint.fallback",
                        ckpt.fallbacks.saturating_sub(ckpt_before.fallbacks),
                    ),
                ] {
                    if delta > 0 {
                        recorder.counter(name, delta);
                    }
                }
                if let Some(h) = recorder.take_histogram("sweep.job_wall_us") {
                    if let Some(record) = HistogramRecord::from_histogram(
                        "sweep.job_wall_us",
                        "sweep",
                        &self.fingerprint,
                        &h,
                    ) {
                        recorder.record(&TelemetryRecord::Histogram { record });
                    }
                }
                recorder.flush();
            }
        }

        // Batch-level trace instants: how much of the batch the cache
        // and dedup layers absorbed (emitted even for all-hit batches,
        // where no worker ever spawns — the warm pass IS the story).
        if let Some(t) = lock(&self.trace, "trace").as_mut() {
            let now = csalt_trace::timing::wall_micros();
            t.set_track_name(Domain::Wall, 0, "sweep batch");
            if batch_hits > 0 {
                t.instant(
                    Domain::Wall,
                    0,
                    now,
                    "cache_hit",
                    vec![("count", ArgValue::U64(batch_hits))],
                );
            }
            if batch_deduped > 0 {
                t.instant(
                    Domain::Wall,
                    0,
                    now,
                    "dedup",
                    vec![("count", ArgValue::U64(batch_deduped))],
                );
            }
            let ckpt = crate::checkpoint::stats();
            for (name, delta) in [
                (
                    "checkpoint.save",
                    ckpt.saves.saturating_sub(ckpt_before.saves),
                ),
                (
                    "checkpoint.restore",
                    ckpt.restores.saturating_sub(ckpt_before.restores),
                ),
                (
                    "checkpoint.fallback",
                    ckpt.fallbacks.saturating_sub(ckpt_before.fallbacks),
                ),
            ] {
                if delta > 0 {
                    t.instant(
                        Domain::Wall,
                        0,
                        now,
                        name,
                        vec![("count", ArgValue::U64(delta))],
                    );
                }
            }
        }

        // Fill every unresolved slot from the store (its own run for
        // unique configs, the first copy's run for duplicates).
        let mem = lock(&self.results, "results");
        out.into_iter()
            .zip(&canon)
            .map(|(slot, text)| {
                slot.unwrap_or_else(|| mem.get(text).expect("batch resolved every config").clone())
            })
            .collect()
    }

    /// Emits one wall-domain `simulate` span per completed job onto its
    /// worker's track. Spans are sorted by `(worker, begin)` before
    /// emission: each worker ran its jobs serially, so the sort makes
    /// every track's event order monotonic regardless of the order the
    /// workers' pushes interleaved in.
    fn trace_jobs(&self, mut spans: Vec<JobSpan>, jobs: &[(&str, &SimConfig)]) {
        if spans.is_empty() {
            return;
        }
        let mut trace = lock(&self.trace, "trace");
        let Some(t) = trace.as_mut() else { return };
        spans.sort_unstable_by_key(|&(w, _, begin, _, _)| (w, begin));
        for (w, j, begin, end, restored) in spans {
            let tid = 1 + w as u32;
            t.set_track_name(Domain::Wall, tid, format!("sweep worker {w}"));
            let cfg = jobs[j].1;
            t.begin_args(
                Domain::Wall,
                tid,
                begin,
                "simulate",
                vec![
                    ("workload", ArgValue::from(cfg.workload.name.clone())),
                    ("scheme", ArgValue::from(cfg.scheme.label())),
                    ("accesses", ArgValue::U64(total_accesses(cfg))),
                    ("restored", ArgValue::U64(u64::from(restored))),
                ],
            );
            t.end(Domain::Wall, tid, end.max(begin), "simulate");
        }
    }

    fn persist_result(&self, key: &str, config: &str, wall_secs: f64, result: &SimResult) {
        let mut file = lock(&self.results_file, "results file");
        if let Some(f) = file.as_mut() {
            let entry = CacheEntry {
                key: key.to_owned(),
                config: config.to_owned(),
                wall_secs,
                result: result.clone(),
            };
            if let Ok(mut line) = serde_json::to_string(&entry) {
                line.push('\n');
                // One write per line: concurrent appenders from other
                // processes interleave at line granularity, and a torn
                // tail is skipped (and counted) at load time.
                if f.write_all(line.as_bytes()).is_err() {
                    self.counters.cache_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn persist_cost(&self, key: &str, wall_secs: f64, accesses: u64, restored: bool) {
        let mut file = lock(&self.costs_file, "costs file");
        if let Some(f) = file.as_mut() {
            let entry = CostEntry {
                key: key.to_owned(),
                wall_secs,
                accesses,
                restored,
            };
            if let Ok(mut line) = serde_json::to_string(&entry) {
                line.push('\n');
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::TranslationScheme;
    use csalt_workloads::{BenchKind, WorkloadSpec};

    fn tiny(scheme: TranslationScheme) -> SimConfig {
        let mut c = SimConfig::new(WorkloadSpec::homogeneous("gups", BenchKind::Gups), scheme);
        c.system.cores = 1;
        c.accesses_per_core = 1_500;
        c.warmup_accesses_per_core = 500;
        c.scale = 0.05;
        c
    }

    #[test]
    fn canonical_json_sorts_keys_and_round_trips() {
        let cfg = tiny(TranslationScheme::CsaltCd);
        let text = canonical_json(&cfg);
        let back: SimConfig = serde_json::from_str(&text).expect("canonical json parses");
        assert_eq!(canonical_json(&back), text);
        assert_eq!(config_key(&back), config_key(&cfg));
        // Sorted: "accesses_per_core" precedes "system" in the text.
        let a = text.find("accesses_per_core").expect("field present");
        let s = text.find("\"system\"").expect("field present");
        assert!(a < s, "object keys are sorted");
    }

    #[test]
    fn config_key_separates_configs() {
        let a = tiny(TranslationScheme::CsaltCd);
        let mut b = a.clone();
        b.seed ^= 1;
        assert_ne!(canonical_json(&a), canonical_json(&b));
        assert_ne!(config_key(&a), config_key(&b));
    }

    #[test]
    fn fingerprint_is_stable_and_filename_safe() {
        let fp = engine_fingerprint();
        assert_eq!(fp, engine_fingerprint());
        assert!(fp
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
    }

    #[test]
    fn unpersisted_sweep_dedups_in_process() {
        let sweep = Sweep::new(SweepOptions::default());
        let cfg = tiny(TranslationScheme::PomTlb);
        let first = sweep.run_batch(vec![cfg.clone(), cfg.clone()]);
        assert_eq!(sweep.stats().simulated, 1);
        assert_eq!(sweep.stats().deduped, 1);
        let second = sweep.run_batch(vec![cfg]);
        assert_eq!(sweep.stats().simulated, 1, "second batch hit memory");
        assert_eq!(sweep.stats().cache_hits, 1);
        let json = |r: &SimResult| serde_json::to_string(r).expect("result serializes");
        assert_eq!(json(&first[0]), json(&first[1]));
        assert_eq!(json(&first[0]), json(&second[0]));
    }
}
