//! Checkpointed warmup: fork-from-snapshot cold runs.
//!
//! A run's warmup phase is a pure function of the *warmup-determining*
//! subset of its [`SimConfig`] — the machine, scheme, workload, seed
//! and warmup length, but **not** the measured-phase knobs (access
//! budget, sample windows, occupancy scans). Two configs that agree on
//! that subset land in byte-identical post-warmup state, so the first
//! one to run can serialize the whole simulator ([`HierarchyCheckpoint`])
//! and every sibling can restore it and run only its measured phase.
//!
//! Images live under the sweep cache directory
//! (`target/csalt-cache/`, `CSALT_CACHE_DIR`, disabled by
//! `CSALT_NO_CACHE`), named `ckpt-<engine-fingerprint>-<warmup-key>.bin`
//! and framed by the [`csalt_types::ckpt`] envelope: magic, version,
//! fingerprint, length-validated payload, trailing checksum. A torn,
//! stale or corrupt image is *never* an error — the run falls back to a
//! cold warmup and the rejection is counted ([`stats`]).
//!
//! The hard contract — a restored run is bit-identical to a
//! straight-through run — is pinned by `tests/determinism.rs` across
//! every scheme, both virtualization modes and the pipelined commit
//! path, and re-proven by the `ckpt-gate` CI step. `CSALT_CKPT=off` is
//! the escape hatch that disables the whole layer.
//!
//! This module is integer-only (the envelope stores `f64` state as bit
//! patterns) and never reads a clock; `srclint` pins both properties.

use crate::simulator::SimConfig;
use crate::sweep::{canonical_json, engine_fingerprint, SweepOptions};
use csalt_core::MemoryHierarchy;
use csalt_types::ckpt::fnv1a_bytes;
use csalt_types::{CkptError, CkptReader, CkptWriter};
use serde::Serialize;
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether checkpointed warmup runs (the `CSALT_CKPT` env var). The
/// restore path is bit-identical to a cold run by contract, so it
/// defaults on; the switch exists for the determinism gates and the
/// bench's ablation rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptRequest {
    /// Never save or restore warmup checkpoints.
    Off,
    /// Save after a cold warmup, restore when an image exists (default).
    On,
}

impl CkptRequest {
    /// Parses a `CSALT_CKPT` value. `0`/`off`/`false` (any case)
    /// disable; everything else — including unset — enables.
    #[must_use]
    pub fn parse(value: Option<&str>) -> Self {
        match value.map(str::to_ascii_lowercase).as_deref() {
            Some("0" | "off" | "false") => CkptRequest::Off,
            _ => CkptRequest::On,
        }
    }

    /// The request selected by the `CSALT_CKPT` environment variable.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::var("CSALT_CKPT").ok().as_deref())
    }

    /// Whether checkpointing should be enabled.
    #[must_use]
    pub fn enabled(self) -> bool {
        self == CkptRequest::On
    }
}

// ---------------------------------------------------------------------
// Telemetry counters.
// ---------------------------------------------------------------------

static SAVES: AtomicU64 = AtomicU64::new(0);
static RESTORES: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide checkpoint activity (monotonic counters): what the
/// sweep's telemetry records and the CI gate asserts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CkptStats {
    /// Images written after a cold warmup.
    pub saves: u64,
    /// Runs that skipped warmup by restoring an image.
    pub restores: u64,
    /// Images that existed but were rejected (torn tail, bad checksum,
    /// stale fingerprint, geometry mismatch) — each fell back to a cold
    /// warmup.
    pub fallbacks: u64,
}

/// Snapshot of the process-wide checkpoint counters.
#[must_use]
pub fn stats() -> CkptStats {
    CkptStats {
        saves: SAVES.load(Ordering::Relaxed),
        restores: RESTORES.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
    }
}

thread_local! {
    static LAST_RUN_RESTORED: Cell<bool> = const { Cell::new(false) };
}

/// Whether the most recent `run` on *this thread* restored its warmup
/// from a checkpoint. The sweep's workers read this right after each
/// job to keep restored-job wall-clock out of the cold-cost model.
#[must_use]
pub fn last_run_restored() -> bool {
    LAST_RUN_RESTORED.with(Cell::get)
}

pub(crate) fn set_last_run_restored(restored: bool) {
    LAST_RUN_RESTORED.with(|c| c.set(restored));
}

// ---------------------------------------------------------------------
// The warmup-prefix key.
// ---------------------------------------------------------------------

/// The [`SimConfig`] fields (by serde name) that determine post-warmup
/// state. Everything else — `accesses_per_core`, `sample_windows`,
/// `window_accesses`, `occupancy_scan_interval` — only shapes the
/// measured phase, which runs *after* the checkpoint capture point.
const WARMUP_FIELDS: [&str; 12] = [
    "huge_fraction",
    "profiler_interval",
    "scale",
    "scheme",
    "seed",
    "switch_overhead_cycles",
    "system",
    "trace_partitions",
    "virtualized",
    "warmup_accesses_per_core",
    "warmup_mode",
    "workload",
];

/// Canonical JSON of the warmup-determining subset of `cfg` (sorted
/// keys, shortest-round-trip floats — same canonical form as the sweep
/// result cache).
fn warmup_prefix_json(cfg: &SimConfig) -> String {
    use serde_json::Value;
    let mut keep: Vec<(String, Value)> = Vec::with_capacity(WARMUP_FIELDS.len());
    if let Value::Map(entries) = cfg.to_content() {
        for (k, v) in entries {
            if WARMUP_FIELDS.contains(&k.as_str()) {
                keep.push((k, v));
            }
        }
    }
    canonical_json(&Value::Map(keep))
}

/// The warmup-prefix key of a config: 16 hex digits of FNV-1a over the
/// canonical warmup-subset JSON. Configs with equal keys share
/// post-warmup state (and therefore a checkpoint image); the sweep
/// groups jobs by this key to run one warmup materializer per group.
#[must_use]
pub fn warmup_key(cfg: &SimConfig) -> String {
    format!("{:016x}", fnv1a_bytes(warmup_prefix_json(cfg).as_bytes()))
}

// ---------------------------------------------------------------------
// The checkpoint image.
// ---------------------------------------------------------------------

/// Section tag for the scheduling/stream metadata.
const SECTION_META: u32 = 0x4d45_5441; // "META"
/// Section tag for the serialized hierarchy.
const SECTION_HIER: u32 = 0x4849_4552; // "HIER"

/// Everything a restored run needs beyond the hierarchy itself: where
/// each core's round-robin schedule stood, and how many records each
/// `(vm, core)` generator stream had popped — the restore path
/// fast-forwards the streams by those counts instead of serializing
/// generator internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyCheckpoint {
    /// Per-core VM the scheduler had resident at the capture point.
    pub current_vms: Vec<u32>,
    /// Warmup pops per `[vm][core]` stream.
    pub pops: Vec<Vec<u64>>,
}

impl HierarchyCheckpoint {
    /// Serializes scheduling metadata plus the full hierarchy into a
    /// framed image scoped to `fingerprint`.
    #[must_use]
    pub fn encode(&self, hier: &MemoryHierarchy, fingerprint: &str) -> Vec<u8> {
        let mut w = CkptWriter::new();
        let m = w.begin_section(SECTION_META);
        w.len64(self.current_vms.len());
        for &vm in &self.current_vms {
            w.u32(vm);
        }
        w.len64(self.pops.len());
        for row in &self.pops {
            w.slice_u64(row);
        }
        w.end_section(m);
        let m = w.begin_section(SECTION_HIER);
        hier.ckpt_save(&mut w);
        w.end_section(m);
        w.finish(fingerprint)
    }

    /// Validates `data` against `fingerprint` and restores it into
    /// `hier`, returning the scheduling metadata. `cores`/`vms` guard
    /// the metadata's shape against the receiving config.
    ///
    /// On *any* error the caller must discard `hier` — the hierarchy
    /// may be partially overwritten — and run cold.
    pub fn decode_into(
        data: &[u8],
        fingerprint: &str,
        hier: &mut MemoryHierarchy,
        cores: usize,
        vms: usize,
    ) -> Result<Self, CkptError> {
        let mut r = CkptReader::open(data, fingerprint)?;
        let end = r.begin_section(SECTION_META)?;
        let n_cores = r.len64()?;
        if n_cores != cores {
            return Err(CkptError::Mismatch("checkpoint core count"));
        }
        let mut current_vms = Vec::with_capacity(n_cores);
        for _ in 0..n_cores {
            let vm = r.u32()?;
            if vm as usize >= vms {
                return Err(CkptError::Corrupt("resident vm out of range"));
            }
            current_vms.push(vm);
        }
        let n_vms = r.len64()?;
        if n_vms != vms {
            return Err(CkptError::Mismatch("checkpoint vm count"));
        }
        let mut pops = Vec::with_capacity(n_vms);
        for _ in 0..n_vms {
            let row = r.vec_u64()?;
            if row.len() != cores {
                return Err(CkptError::Mismatch("pop-count row width"));
            }
            pops.push(row);
        }
        r.end_section(end)?;
        let end = r.begin_section(SECTION_HIER)?;
        hier.ckpt_load(&mut r)?;
        r.end_section(end)?;
        r.finish()?;
        Ok(Self { current_vms, pops })
    }
}

// ---------------------------------------------------------------------
// On-disk plumbing.
// ---------------------------------------------------------------------

/// One run's checkpoint plan: resolved once before warmup. `None`
/// (from [`plan`]) means the layer is off for this run.
#[derive(Debug, Clone)]
pub(crate) struct CkptPlan {
    path: PathBuf,
    fingerprint: String,
}

/// Decides whether (and where) this run checkpoints: requires
/// `CSALT_CKPT` on, a cache directory, and a nonzero warmup (a
/// zero-warmup checkpoint would save nothing).
pub(crate) fn plan(cfg: &SimConfig) -> Option<CkptPlan> {
    if !CkptRequest::from_env().enabled() || cfg.warmup_accesses_per_core == 0 {
        return None;
    }
    let dir = SweepOptions::from_env().cache_dir?;
    let fingerprint = engine_fingerprint();
    let path = dir.join(format!("ckpt-{}-{}.bin", fingerprint, warmup_key(cfg)));
    Some(CkptPlan { path, fingerprint })
}

impl CkptPlan {
    /// Attempts to restore this plan's image into `hier`.
    ///
    /// * `Ok(Some(meta))` — restored; counted.
    /// * `Ok(None)` — no image on disk; run cold (not a fallback).
    /// * `Err(_)` — image present but rejected; counted as a fallback.
    ///   `hier` may be partially overwritten: rebuild it before use.
    pub(crate) fn try_restore(
        &self,
        hier: &mut MemoryHierarchy,
        cores: usize,
        vms: usize,
    ) -> Result<Option<HierarchyCheckpoint>, CkptError> {
        let Ok(data) = std::fs::read(&self.path) else {
            return Ok(None);
        };
        match HierarchyCheckpoint::decode_into(&data, &self.fingerprint, hier, cores, vms) {
            Ok(meta) => {
                RESTORES.fetch_add(1, Ordering::Relaxed);
                Ok(Some(meta))
            }
            Err(e) => {
                FALLBACKS.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Writes the image atomically (unique temp file + rename), so a
    /// concurrent reader sees either no file or a complete one. Write
    /// failures are swallowed — the checkpoint layer must never break a
    /// run — and simply leave the next sibling to warm up cold.
    pub(crate) fn save(&self, hier: &MemoryHierarchy, meta: &HierarchyCheckpoint) {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        if let Some(dir) = self.path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let image = meta.encode(hier, &self.fingerprint);
        let tmp = self.path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, &image).is_ok() {
            if std::fs::rename(&tmp, &self.path).is_ok() {
                SAVES.fetch_add(1, Ordering::Relaxed);
            } else {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::TranslationScheme;
    use csalt_workloads::{BenchKind, WorkloadSpec};

    fn cfg() -> SimConfig {
        let mut c = SimConfig::new(
            WorkloadSpec::homogeneous("gups", BenchKind::Gups),
            TranslationScheme::CsaltCd,
        );
        c.system.cores = 2;
        c.accesses_per_core = 4_000;
        c.warmup_accesses_per_core = 2_000;
        c
    }

    #[test]
    fn parse_matches_l0_conventions() {
        assert_eq!(CkptRequest::parse(None), CkptRequest::On);
        assert_eq!(CkptRequest::parse(Some("off")), CkptRequest::Off);
        assert_eq!(CkptRequest::parse(Some("0")), CkptRequest::Off);
        assert_eq!(CkptRequest::parse(Some("FALSE")), CkptRequest::Off);
        assert_eq!(CkptRequest::parse(Some("on")), CkptRequest::On);
        assert_eq!(CkptRequest::parse(Some("1")), CkptRequest::On);
    }

    #[test]
    fn warmup_key_ignores_measured_phase_knobs() {
        let a = cfg();
        let mut b = a.clone();
        b.accesses_per_core *= 3;
        b.sample_windows = 2;
        b.window_accesses = 1_000;
        b.occupancy_scan_interval = 500;
        assert_eq!(warmup_key(&a), warmup_key(&b));
    }

    #[test]
    fn warmup_key_tracks_warmup_determining_fields() {
        let base = cfg();
        let mut seed = base.clone();
        seed.seed ^= 1;
        assert_ne!(warmup_key(&base), warmup_key(&seed));
        let mut scheme = base.clone();
        scheme.scheme = TranslationScheme::Tsb;
        assert_ne!(warmup_key(&base), warmup_key(&scheme));
        let mut warm = base.clone();
        warm.warmup_accesses_per_core += 1;
        assert_ne!(warmup_key(&base), warmup_key(&warm));
        let mut native = base.clone();
        native.virtualized = false;
        assert_ne!(warmup_key(&base), warmup_key(&native));
    }

    #[test]
    fn warmup_prefix_json_keeps_every_listed_field() {
        let text = warmup_prefix_json(&cfg());
        for field in WARMUP_FIELDS {
            assert!(
                text.contains(&format!("\"{field}\"")),
                "warmup prefix JSON lost field {field}"
            );
        }
        assert!(!text.contains("accesses_per_core\":4000"));
    }
}
