//! One runner per table/figure of the paper's evaluation (§5).
//!
//! # Scaling
//!
//! The paper simulates 10 billion instructions per workload with 10 ms
//! context-switch quanta and 256 K-access repartitioning epochs. This
//! harness reproduces the *regime*, not the instruction count:
//!
//! * workload footprints stay at their full size (64–256 MiB per
//!   region) so every scattered region exceeds both the L2 TLB reach
//!   (6 MiB) and the PDE paging-structure-cache reach (64 MiB) — the
//!   two thresholds below which the translation problem disappears;
//! * scattered regions *spread* their pages (stride 9) so each touched
//!   page owns its own leaf-PTE line, as it would in the paper's
//!   multi-GB footprints;
//! * quantum and epoch are scaled down ~100× together with the run
//!   length, preserving the quantum : epoch : phase-length ratios;
//! * every run warms up for a full measurement-length window and then
//!   resets statistics, so results are steady-state (the paper's
//!   10-billion-instruction runs are overwhelmingly steady state).
//!
//! Absolute IPCs therefore differ from the paper; the *shape* — who
//! wins, by roughly what factor, where the crossovers sit — is the
//! reproduction target (see EXPERIMENTS.md for paper-vs-measured).
//!
//! Environment knobs: `CSALT_ACCESSES` overrides the per-core access
//! count (e.g. `CSALT_ACCESSES=50000` for a smoke run), `CSALT_WARMUP`
//! the warmup length, and `CSALT_SCALE` the footprint multiplier.
//! `CSALT_WARMUP_MODE` (`timed` | `functional`) selects the warmup
//! execution path, and `CSALT_SAMPLE_WINDOWS` / `CSALT_WINDOW_ACCESSES`
//! turn on SMARTS-style sampled measurement: N timed windows of M
//! accesses each, functionally fast-forwarded in between — the figure
//! suite's lever for 10×+ longer access streams at similar wall clock.

use crate::simulator::{run, SimConfig, SimResult, WarmupMode};
use csalt_types::{geomean, Cycle, TranslationScheme};
use csalt_workloads::{paper_workloads, BenchKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Scaled stand-ins for the paper's time-like parameters.
pub mod scaled {
    use csalt_types::Cycle;

    /// Per-core program accesses per run (the same number again is
    /// spent on warmup).
    pub const ACCESSES_PER_CORE: u64 = 120_000;
    /// Workload footprint multiplier. Kept at 1.0: the generators'
    /// default footprints (64–256 MiB per region) are already the
    /// minimum that keeps every scattered region larger than both the
    /// L2 TLB reach (6 MiB) *and* the PDE paging-structure-cache reach
    /// (32 × 2 MiB = 64 MiB) — below that, PSC-accelerated walks become
    /// nearly free and the entire translation problem vanishes.
    pub const SCALE: f64 = 1.0;
    /// ≙ the paper's 10 ms quantum (40 M cycles at 4 GHz).
    pub const QUANTUM_10MS: Cycle = 400_000;
    /// ≙ 5 ms.
    pub const QUANTUM_5MS: Cycle = 200_000;
    /// ≙ 30 ms.
    pub const QUANTUM_30MS: Cycle = 1_200_000;
    /// ≙ the paper's 256 K-access epoch.
    pub const EPOCH_256K: u64 = 32_000;
    /// ≙ 128 K accesses.
    pub const EPOCH_128K: u64 = 16_000;
    /// ≙ 512 K accesses.
    pub const EPOCH_512K: u64 = 64_000;
}

/// The experiment harness's default configuration for one (workload,
/// scheme) pair: virtualized, 2 contexts/core, scaled quantum and epoch.
pub fn default_config(workload: WorkloadSpec, scheme: TranslationScheme) -> SimConfig {
    let mut cfg = SimConfig::new(workload, scheme);
    cfg.accesses_per_core = env_u64("CSALT_ACCESSES").unwrap_or(scaled::ACCESSES_PER_CORE);
    cfg.warmup_accesses_per_core = env_u64("CSALT_WARMUP").unwrap_or(cfg.accesses_per_core);
    cfg.scale = env_f64("CSALT_SCALE").unwrap_or(scaled::SCALE);
    cfg.system.cs_interval_cycles = scaled::QUANTUM_10MS;
    cfg.system.epoch_accesses = scaled::EPOCH_256K;
    if let Some(mode) = std::env::var("CSALT_WARMUP_MODE")
        .ok()
        .as_deref()
        .and_then(WarmupMode::parse)
    {
        cfg.warmup_mode = mode;
    }
    cfg.sample_windows = env_u64("CSALT_SAMPLE_WINDOWS").unwrap_or(0);
    cfg.window_accesses = env_u64("CSALT_WINDOW_ACCESSES").unwrap_or(0);
    cfg
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.parse().ok()
}

/// Runs configurations in parallel, returning one result per config in
/// submission order.
///
/// Routes through the process-global [`crate::sweep::Sweep`]: cached
/// results (persisted under `CSALT_CACHE_DIR`, default
/// `target/csalt-cache/`, keyed by content hash + engine fingerprint)
/// and configs already simulated earlier in this process are never
/// re-simulated; the rest are claimed longest-job-first by an atomic
/// index over `CSALT_JOBS` workers writing into disjoint slots.
/// Results are bit-identical to sequential execution — see
/// `crates/sim/tests/sweep.rs` and `tests/determinism.rs`.
pub fn run_parallel(configs: Vec<SimConfig>) -> Vec<SimResult> {
    crate::sweep::Sweep::global().run_batch(configs)
}

/// A generic labelled series row: one workload, one value per column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Workload (or benchmark) label.
    pub label: String,
    /// Values in column order.
    pub values: Vec<f64>,
}

/// A complete experiment outcome: column names plus per-workload rows
/// and the geometric-mean row the paper appends to every figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id ("Figure 7", "Table 1", …).
    pub id: String,
    /// What the values mean.
    pub columns: Vec<String>,
    /// Per-workload rows.
    pub rows: Vec<Row>,
    /// Geometric mean across rows (same arity as `columns`).
    pub geomean: Vec<f64>,
}

impl Table {
    fn new(id: &str, columns: &[&str], rows: Vec<Row>) -> Self {
        let n = columns.len();
        let geomean = (0..n)
            .map(|c| geomean(rows.iter().map(|r| r.values[c])).unwrap_or(0.0))
            .collect();
        Self {
            id: id.to_string(),
            columns: columns.iter().map(ToString::to_string).collect(),
            rows,
            geomean,
        }
    }

    /// Renders the table as a GitHub-flavoured markdown table (used to
    /// assemble EXPERIMENTS.md from the persisted results).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| workload |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("| {} |", r.label));
            for v in &r.values {
                out.push_str(&format!(" {v:.3} |"));
            }
            out.push('\n');
        }
        out.push_str("| **geomean** |");
        for v in &self.geomean {
            out.push_str(&format!(" **{v:.3}** |"));
        }
        out.push('\n');
        out
    }

    /// Renders the table as aligned plain text (the bench harness's
    /// stdout format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.id));
        out.push_str(&format!("{:<18}", "workload"));
        for c in &self.columns {
            out.push_str(&format!("{c:>16}"));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:<18}", r.label));
            for v in &r.values {
                out.push_str(&format!("{v:>16.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<18}", "geomean"));
        for v in &self.geomean {
            out.push_str(&format!("{v:>16.3}"));
        }
        out.push('\n');
        out
    }
}

/// The six standalone benchmarks of Tables 1 and Figure 3.
fn homogeneous_six() -> Vec<WorkloadSpec> {
    BenchKind::ALL
        .iter()
        .map(|&b| WorkloadSpec::homogeneous(b.name(), b))
        .collect()
}

// ---------------------------------------------------------------------
// Figure 1 — L2 TLB MPKI ratio, context-switched vs not.
// ---------------------------------------------------------------------

/// Figure 1: ratio of L2 TLB MPKI with 2 contexts/core over the
/// non-context-switched baseline, conventional translation. For
/// heterogeneous pairs the baseline is the instruction-weighted blend
/// of each benchmark run alone with a single context (the paper's
/// non-context-switch case runs each program by itself). Paper:
/// geomean > 6×.
pub fn fig01() -> Table {
    let mut configs = Vec::new();
    for w in paper_workloads() {
        // The context-switched pair.
        configs.push(default_config(w.clone(), TranslationScheme::Conventional));
        // Each member alone, one context per core.
        for i in 0..2 {
            let b = w.context_bench(i);
            let mut c = default_config(
                WorkloadSpec::homogeneous(b.name(), b),
                TranslationScheme::Conventional,
            );
            c.system.contexts_per_core = 1;
            configs.push(c);
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(3)
        .map(|group| {
            let cs = &group[0];
            let solo_misses: u64 = group[1..].iter().map(|r| r.snapshot.l2_tlb.misses).sum();
            let solo_instructions: u64 = group[1..].iter().map(|r| r.instructions).sum();
            let nocs_mpki = solo_misses as f64 * 1000.0 / solo_instructions as f64;
            let ratio = if nocs_mpki > 0.0 {
                cs.l2_tlb_mpki() / nocs_mpki
            } else {
                0.0
            };
            Row {
                label: cs.workload.clone(),
                values: vec![cs.l2_tlb_mpki(), nocs_mpki, ratio],
            }
        })
        .collect();
    Table::new(
        "Figure 1: L2 TLB MPKI ratio (context-switch / no-context-switch)",
        &["mpki_2ctx", "mpki_1ctx", "ratio"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Table 1 — page-walk cycles per L2 TLB miss, native vs virtualized.
// ---------------------------------------------------------------------

/// Table 1: average page-walk cycles per walk under the conventional
/// scheme, native vs virtualized. Paper: canneal 53/61, ccomp 44/1158,
/// graph500 79/80, gups 43/70, pagerank 51/61, streamcluster 74/76.
pub fn tab01() -> Table {
    let mut configs = Vec::new();
    for w in homogeneous_six() {
        for virtualized in [false, true] {
            let mut c = default_config(w.clone(), TranslationScheme::Conventional);
            c.virtualized = virtualized;
            configs.push(c);
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(2)
        .map(|pair| Row {
            label: pair[0].workload.clone(),
            values: vec![
                pair[0].snapshot.walk_cycles_per_walk(),
                pair[1].snapshot.walk_cycles_per_walk(),
            ],
        })
        .collect();
    Table::new(
        "Table 1: page-walk cycles per walk (native vs virtualized)",
        &["native", "virtualized"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Figure 3 — fraction of cache capacity occupied by TLB entries.
// ---------------------------------------------------------------------

/// Figure 3: mean fraction of L2/L3 data-cache capacity holding
/// translation entries under POM-TLB. Paper: ~60% average, up to 80%
/// for connected component.
pub fn fig03() -> Table {
    let five = [
        BenchKind::Canneal,
        BenchKind::ConnectedComponent,
        BenchKind::Graph500,
        BenchKind::Gups,
        BenchKind::PageRank,
    ];
    let configs: Vec<SimConfig> = five
        .iter()
        .map(|&b| {
            let mut c = default_config(
                WorkloadSpec::homogeneous(b.name(), b),
                TranslationScheme::PomTlb,
            );
            c.occupancy_scan_interval = c.accesses_per_core / 32;
            c
        })
        .collect();
    let results = run_parallel(configs);
    let rows = results
        .iter()
        .map(|r| {
            let (l2, l3) = r.mean_occupancy();
            Row {
                label: r.workload.clone(),
                values: vec![l2, l3],
            }
        })
        .collect();
    Table::new(
        "Figure 3: fraction of cache capacity occupied by TLB entries",
        &["l2_dcache", "l3_dcache"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Figures 7, 8, 10, 11 — the main performance comparison.
// ---------------------------------------------------------------------

/// The four schemes of Figure 7, in presentation order.
pub const FIG7_SCHEMES: [TranslationScheme; 4] = [
    TranslationScheme::Conventional,
    TranslationScheme::PomTlb,
    TranslationScheme::CsaltD,
    TranslationScheme::CsaltCd,
];

/// Raw results of the main comparison, reused by Figures 7, 8, 10, 11.
pub struct MainComparison {
    /// `results[w][s]` for workload `w`, scheme `s` (Figure 7 order).
    pub results: Vec<Vec<SimResult>>,
}

/// Runs the 10 workloads × 4 schemes grid once. Figures 7, 8, 10 and
/// 11 — four views of the same grid — share a single computation: the
/// sweep layer under [`run_parallel`] dedups the grid in-process and
/// persists it content-addressed across invocations (the old ad-hoc
/// `main_comparison.json` cache is subsumed by `target/csalt-cache/`).
pub fn main_comparison() -> MainComparison {
    let workloads = paper_workloads();
    let mut configs = Vec::new();
    for w in &workloads {
        for s in FIG7_SCHEMES {
            configs.push(default_config(w.clone(), s));
        }
    }
    let flat = run_parallel(configs);
    let results: Vec<Vec<SimResult>> = flat
        .chunks(FIG7_SCHEMES.len())
        .map(<[SimResult]>::to_vec)
        .collect();
    MainComparison { results }
}

impl MainComparison {
    /// Figure 7: IPC of every scheme normalized to POM-TLB. Paper
    /// geomeans: conventional ≈ 0.68, CSALT-D ≈ 1.11, CSALT-CD ≈ 1.25
    /// (ccomp: 2.24 for CSALT-CD).
    pub fn fig07(&self) -> Table {
        let rows = self
            .results
            .iter()
            .map(|per_scheme| {
                let pom_ipc = per_scheme[1].ipc();
                Row {
                    label: per_scheme[0].workload.clone(),
                    values: per_scheme.iter().map(|r| r.ipc() / pom_ipc).collect(),
                }
            })
            .collect();
        Table::new(
            "Figure 7: performance normalized to POM-TLB",
            &["conventional", "pom-tlb", "csalt-d", "csalt-cd"],
            rows,
        )
    }

    /// Figure 8: fraction of page walks eliminated by the POM-TLB
    /// (relative to the conventional scheme's walks). Paper: avg 97%.
    pub fn fig08(&self) -> Table {
        let rows = self
            .results
            .iter()
            .map(|per_scheme| {
                let conv_walks = per_scheme[0].snapshot.page_walks as f64;
                let pom_walks = per_scheme[1].snapshot.page_walks as f64;
                let eliminated = if conv_walks > 0.0 {
                    1.0 - pom_walks / conv_walks
                } else {
                    0.0
                };
                Row {
                    label: per_scheme[0].workload.clone(),
                    values: vec![eliminated],
                }
            })
            .collect();
        Table::new(
            "Figure 8: fraction of page walks eliminated by POM-TLB",
            &["fraction_eliminated"],
            rows,
        )
    }

    /// Figure 10: L2 data-cache MPKI relative to POM-TLB. Paper: up to
    /// 30% reduction (ccomp), geomean ≈ 0.92 for CSALT-CD.
    pub fn fig10(&self) -> Table {
        self.relative_mpki(false)
    }

    /// Figure 11: L3 data-cache MPKI relative to POM-TLB. Paper: up to
    /// 26% reduction (ccomp) for CSALT-CD.
    pub fn fig11(&self) -> Table {
        self.relative_mpki(true)
    }

    fn relative_mpki(&self, l3: bool) -> Table {
        let rows = self
            .results
            .iter()
            .map(|per_scheme| {
                let mpki = |r: &SimResult| {
                    if l3 {
                        r.l3_cache_mpki()
                    } else {
                        r.l2_cache_mpki()
                    }
                };
                let pom = mpki(&per_scheme[1]).max(1e-9);
                Row {
                    label: per_scheme[0].workload.clone(),
                    values: vec![1.0, mpki(&per_scheme[2]) / pom, mpki(&per_scheme[3]) / pom],
                }
            })
            .collect();
        Table::new(
            if l3 {
                "Figure 11: relative L3 data-cache MPKI vs POM-TLB"
            } else {
                "Figure 10: relative L2 data-cache MPKI vs POM-TLB"
            },
            &["pom-tlb", "csalt-d", "csalt-cd"],
            rows,
        )
    }
}

// ---------------------------------------------------------------------
// Figure 9 — partition allocation over time (connected component).
// ---------------------------------------------------------------------

/// Figure 9's time series: (progress, L2 TLB fraction, L3 TLB fraction)
/// of the way partition under CSALT-CD for connected component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionTraceResult {
    /// (fraction of run completed, fraction of L2 ways granted to TLB).
    pub l2: Vec<(f64, f64)>,
    /// Same for the shared L3.
    pub l3: Vec<(f64, f64)>,
}

/// Figure 9: runs ccomp under CSALT-CD with partition tracing. Paper:
/// the TLB allocation tracks the workload's iteration phases, and L3
/// TLB allocation dips when L2 allocation rises.
pub fn fig09() -> PartitionTraceResult {
    let mut cfg = default_config(
        WorkloadSpec::homogeneous("ccomp", BenchKind::ConnectedComponent),
        TranslationScheme::CsaltCd,
    );
    cfg.trace_partitions = true;
    let r = run(&cfg);
    let normalize = |series: &[(u64, f64)]| {
        let max = series.iter().map(|&(a, _)| a).max().unwrap_or(1).max(1) as f64;
        series
            .iter()
            .map(|&(a, f)| (a as f64 / max, f))
            .collect::<Vec<_>>()
    };
    PartitionTraceResult {
        l2: normalize(&r.l2_partition_trace),
        l3: normalize(&r.l3_partition_trace),
    }
}

// ---------------------------------------------------------------------
// Figure 12 — native (non-virtualized) CSALT.
// ---------------------------------------------------------------------

/// Figure 12: CSALT-CD speedup over POM-TLB with native 1D walks.
/// Paper: geomean ≈ 1.05, up to 1.30 on connected component.
pub fn fig12() -> Table {
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
            let mut c = default_config(w.clone(), s);
            c.virtualized = false;
            configs.push(c);
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(2)
        .map(|pair| Row {
            label: pair[0].workload.clone(),
            values: vec![pair[1].ipc() / pair[0].ipc()],
        })
        .collect();
    Table::new(
        "Figure 12: CSALT-CD speedup over POM-TLB (native)",
        &["speedup"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Figure 13 — prior-work comparison: TSB, DIP, CSALT-CD.
// ---------------------------------------------------------------------

/// Figure 13: TSB, DIP and CSALT-CD normalized to POM-TLB. Paper:
/// TSB mostly < 1, DIP ≈ 1, CSALT-CD ≈ 1.25–1.3 over DIP on average.
pub fn fig13() -> Table {
    let schemes = [
        TranslationScheme::PomTlb,
        TranslationScheme::Tsb,
        TranslationScheme::Dip,
        TranslationScheme::CsaltCd,
    ];
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for s in schemes {
            configs.push(default_config(w.clone(), s));
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(schemes.len())
        .map(|group| {
            let pom = group[0].ipc();
            Row {
                label: group[0].workload.clone(),
                values: group[1..].iter().map(|r| r.ipc() / pom).collect(),
            }
        })
        .collect();
    Table::new(
        "Figure 13: prior-work comparison (normalized to POM-TLB)",
        &["tsb", "dip", "csalt-cd"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Figure 14 — context-count sensitivity.
// ---------------------------------------------------------------------

/// Figure 14: CSALT-CD speedup over POM-TLB at 1, 2 and 4 contexts per
/// core. Paper: gains grow with contexts (1 < 2 < 4; ~1.33 at 4).
pub fn fig14() -> Table {
    let counts = [1u32, 2, 4];
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for &n in &counts {
            for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
                let mut c = default_config(w.clone(), s);
                c.system.contexts_per_core = n;
                configs.push(c);
            }
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(counts.len() * 2)
        .map(|group| {
            let values = group
                .chunks(2)
                .map(|pair| pair[1].ipc() / pair[0].ipc())
                .collect();
            Row {
                label: group[0].workload.clone(),
                values,
            }
        })
        .collect();
    Table::new(
        "Figure 14: CSALT-CD speedup over POM-TLB by context count",
        &["1_context", "2_contexts", "4_contexts"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Figure 15 — epoch-length sensitivity.
// ---------------------------------------------------------------------

/// Figure 15: CSALT-CD IPC at epoch lengths ≙128 K / 256 K / 512 K,
/// normalized to the default (256 K). Paper: the default wins on most
/// workloads, with ccomp/streamcluster preferring other lengths.
pub fn fig15() -> Table {
    let epochs = [scaled::EPOCH_128K, scaled::EPOCH_256K, scaled::EPOCH_512K];
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for &e in &epochs {
            let mut c = default_config(w.clone(), TranslationScheme::CsaltCd);
            c.system.epoch_accesses = e;
            configs.push(c);
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(epochs.len())
        .map(|group| {
            let base = group[1].ipc();
            Row {
                label: group[0].workload.clone(),
                values: group.iter().map(|r| r.ipc() / base).collect(),
            }
        })
        .collect();
    Table::new(
        "Figure 15: epoch-length sensitivity (normalized to 256K)",
        &["epoch_128K", "epoch_256K", "epoch_512K"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Figure 16 — context-switch-interval sensitivity.
// ---------------------------------------------------------------------

/// Figure 16: CSALT-CD speedup over POM-TLB at 5 / 10 / 30 ms quanta.
/// Paper: steady gains, slightly lower (-8%) at 30 ms than 10 ms.
pub fn fig16() -> Table {
    let quanta: [Cycle; 3] = [
        scaled::QUANTUM_5MS,
        scaled::QUANTUM_10MS,
        scaled::QUANTUM_30MS,
    ];
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for &q in &quanta {
            for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
                let mut c = default_config(w.clone(), s);
                c.system.cs_interval_cycles = q;
                configs.push(c);
            }
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(quanta.len() * 2)
        .map(|group| {
            let values = group
                .chunks(2)
                .map(|pair| pair[1].ipc() / pair[0].ipc())
                .collect();
            Row {
                label: group[0].workload.clone(),
                values,
            }
        })
        .collect();
    Table::new(
        "Figure 16: CSALT-CD speedup over POM-TLB by CS interval",
        &["5ms", "10ms", "30ms"],
        rows,
    )
}

// ---------------------------------------------------------------------
// Extensions and ablations beyond the paper's figures.
// ---------------------------------------------------------------------

/// Extension: 5-level paging (Intel LA57). The paper's introduction
/// argues deeper tables "only strengthen the motivation" for CSALT;
/// this experiment quantifies it: conventional walk cost grows with
/// depth while CSALT-CD's large-TLB path is unaffected, so CSALT's gain
/// over conventional widens at 5 levels.
pub fn ext_5level() -> Table {
    let mut configs = Vec::new();
    for w in homogeneous_six() {
        for levels in [4u8, 5] {
            for s in [TranslationScheme::Conventional, TranslationScheme::CsaltCd] {
                let mut c = default_config(w.clone(), s);
                c.system.pt_levels = levels;
                configs.push(c);
            }
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(4)
        .map(|g| {
            let (conv4, csalt4, conv5, csalt5) = (g[0].ipc(), g[1].ipc(), g[2].ipc(), g[3].ipc());
            Row {
                label: g[0].workload.clone(),
                values: vec![conv5 / conv4, csalt4 / conv4, csalt5 / conv5],
            }
        })
        .collect();
    Table::new(
        "Extension: 5-level paging (LA57)",
        &["conv_5lvl_vs_4lvl", "csalt_gain_4lvl", "csalt_gain_5lvl"],
        rows,
    )
}

/// Extension: CSALT partitioning layered over the TSB (§5.2/§6 claim
/// the TSB organization "can leverage CSALT cache partitioning").
pub fn ext_tsb_csalt() -> Table {
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for s in [TranslationScheme::Tsb, TranslationScheme::TsbCsalt] {
            configs.push(default_config(w.clone(), s));
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(2)
        .map(|pair| Row {
            label: pair[0].workload.clone(),
            values: vec![1.0, pair[1].ipc() / pair[0].ipc()],
        })
        .collect();
    Table::new(
        "Extension: CSALT partitioning over the TSB",
        &["tsb", "tsb_csalt"],
        rows,
    )
}

/// Extension: Transparent Huge Pages. The POM-TLB "supports caching TLB
/// entries for multiple page sizes" (§6); sweep the 2 MiB-backed
/// fraction and report CSALT-CD's speedup over POM-TLB at each point —
/// huge pages shrink the translation working set, so partitioning's
/// opportunity shrinks with them.
pub fn ext_huge_pages() -> Table {
    let four = [
        BenchKind::Canneal,
        BenchKind::Graph500,
        BenchKind::Gups,
        BenchKind::PageRank,
    ];
    let fractions = [0.0f64, 0.5, 1.0];
    let mut configs = Vec::new();
    for &b in &four {
        for &f in &fractions {
            for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
                let mut c = default_config(WorkloadSpec::homogeneous(b.name(), b), s);
                c.huge_fraction = f;
                configs.push(c);
            }
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(fractions.len() * 2)
        .map(|g| {
            let values = g
                .chunks(2)
                .map(|pair| pair[1].ipc() / pair[0].ipc())
                .collect();
            Row {
                label: g[0].workload.clone(),
                values,
            }
        })
        .collect();
    Table::new(
        "Extension: CSALT-CD speedup over POM-TLB under THP",
        &["thp_0%", "thp_50%", "thp_100%"],
        rows,
    )
}

/// Extension: DRRIP (Jaleel et al., ISCA'10) over POM-TLB — the second
/// content-oblivious replacement baseline the related work (§6)
/// discusses. Like DIP, DRRIP cannot exploit the data/TLB distinction,
/// so it should track POM-TLB while CSALT-CD pulls ahead.
pub fn ext_drrip() -> Table {
    let schemes = [
        TranslationScheme::PomTlb,
        TranslationScheme::Dip,
        TranslationScheme::Drrip,
        TranslationScheme::CsaltCd,
    ];
    let mut configs = Vec::new();
    for w in paper_workloads() {
        for s in schemes {
            configs.push(default_config(w.clone(), s));
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(schemes.len())
        .map(|group| {
            let pom = group[0].ipc();
            Row {
                label: group[0].workload.clone(),
                values: group[1..].iter().map(|r| r.ipc() / pom).collect(),
            }
        })
        .collect();
    Table::new(
        "Extension: DRRIP vs DIP vs CSALT-CD (normalized to POM-TLB)",
        &["dip", "drrip", "csalt-cd"],
        rows,
    )
}

/// Ablation (§3.4): CSALT-CD under True-LRU, NRU and BT-PLRU
/// replacement, normalized to True-LRU. The paper (citing Kędzierski et
/// al.) expects only minor degradation from pseudo-LRU stack-position
/// estimation.
pub fn ablation_replacement() -> Table {
    use csalt_types::ReplacementKind;
    let kinds = [
        ReplacementKind::TrueLru,
        ReplacementKind::Nru,
        ReplacementKind::BtPlru,
    ];
    let mut configs = Vec::new();
    for w in homogeneous_six() {
        for &k in &kinds {
            let mut c = default_config(w.clone(), TranslationScheme::CsaltCd);
            c.system.replacement = k;
            configs.push(c);
        }
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(kinds.len())
        .map(|g| {
            let base = g[0].ipc();
            Row {
                label: g[0].workload.clone(),
                values: g.iter().map(|r| r.ipc() / base).collect(),
            }
        })
        .collect();
    Table::new(
        "Ablation: replacement policy under CSALT-CD (normalized to True-LRU)",
        &["true-lru", "nru", "bt-plru"],
        rows,
    )
}

/// Ablation (footnote 6): static way partitions vs dynamic CSALT-CD,
/// normalized to unpartitioned POM-TLB. The paper found "no one static
/// scheme performed well across all workloads".
pub fn ablation_static() -> Table {
    let statics = [4u32, 8, 12];
    let mut configs = Vec::new();
    for w in homogeneous_six() {
        configs.push(default_config(w.clone(), TranslationScheme::PomTlb));
        for &d in &statics {
            configs.push(default_config(
                w.clone(),
                TranslationScheme::StaticPartition { data_ways: d },
            ));
        }
        configs.push(default_config(w.clone(), TranslationScheme::CsaltCd));
    }
    let results = run_parallel(configs);
    let rows = results
        .chunks(statics.len() + 2)
        .map(|g| {
            let base = g[0].ipc();
            Row {
                label: g[0].workload.clone(),
                values: g[1..].iter().map(|r| r.ipc() / base).collect(),
            }
        })
        .collect();
    Table::new(
        "Ablation: static partitions vs CSALT-CD (normalized to POM-TLB)",
        &["static-4", "static-8", "static-12", "csalt-cd"],
        rows,
    )
}

/// Ablation: functional-warmup drift. Runs the fig07 grid twice — timed
/// warmup vs functional fast-forward warmup — and reports the L2 TLB
/// MPKI ratio (functional / timed, 1.0 = no drift) per scheme. Timing-
/// independent schemes must land at exactly 1.0; the criticality-
/// weighted ones (`csalt-cd`) may drift, because functional warmup
/// cannot compute the cycle-derived replacement weights and degrades
/// to unit weights until the measured phase begins.
pub fn ablation_warmup() -> Table {
    let workloads = paper_workloads();
    let mut configs = Vec::new();
    for w in &workloads {
        for s in FIG7_SCHEMES {
            for mode in [WarmupMode::Timed, WarmupMode::Functional] {
                let mut c = default_config(w.clone(), s);
                c.warmup_mode = mode;
                configs.push(c);
            }
        }
    }
    let flat = run_parallel(configs);
    let rows = flat
        .chunks(FIG7_SCHEMES.len() * 2)
        .map(|per_w| Row {
            label: per_w[0].workload.clone(),
            values: per_w
                .chunks(2)
                .map(|pair| {
                    let timed = pair[0].l2_tlb_mpki();
                    let functional = pair[1].l2_tlb_mpki();
                    if timed > 0.0 {
                        functional / timed
                    } else {
                        1.0
                    }
                })
                .collect(),
        })
        .collect();
    Table::new(
        "Ablation: functional-warmup L2 TLB MPKI drift (functional / timed)",
        &["conventional", "pom-tlb", "csalt-d", "csalt-cd"],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_is_aligned_and_complete() {
        let t = Table::new(
            "Test",
            &["a", "b"],
            vec![
                Row {
                    label: "w1".into(),
                    values: vec![1.0, 2.0],
                },
                Row {
                    label: "w2".into(),
                    values: vec![4.0, 8.0],
                },
            ],
        );
        assert_eq!(t.geomean, vec![2.0, 4.0]);
        let s = t.render();
        assert!(s.contains("w1"));
        assert!(s.contains("geomean"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn default_config_uses_scaled_parameters() {
        let w = WorkloadSpec::homogeneous("gups", BenchKind::Gups);
        let c = default_config(w.clone(), TranslationScheme::CsaltCd);
        assert_eq!(c.system.epoch_accesses, scaled::EPOCH_256K);
        assert_eq!(c.system.cs_interval_cycles, scaled::QUANTUM_10MS);
        assert!(c.virtualized);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let mk = |scheme| {
            let mut c = SimConfig::new(WorkloadSpec::homogeneous("gups", BenchKind::Gups), scheme);
            c.system.cores = 1;
            c.accesses_per_core = 2_000;
            c.scale = 0.05;
            c
        };
        let results = run_parallel(vec![
            mk(TranslationScheme::Conventional),
            mk(TranslationScheme::PomTlb),
            mk(TranslationScheme::CsaltCd),
        ]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].scheme, TranslationScheme::Conventional);
        assert_eq!(results[1].scheme, TranslationScheme::PomTlb);
        assert_eq!(results[2].scheme, TranslationScheme::CsaltCd);
    }
}
