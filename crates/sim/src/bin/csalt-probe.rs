//! Quick single-workload probe: runs one workload under several schemes
//! and prints IPC, TLB/cache MPKIs, walk counts and occupancy.
//!
//! Usage: `csalt-probe [workload] [accesses_per_core]`
//! where `workload` is one of the Figure 7 labels (default `gups`).

use csalt_sim::experiments::default_config;
use csalt_sim::run;
use csalt_types::TranslationScheme;
use csalt_workloads::paper_workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gups");
    let accesses: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150_000);

    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use a Figure 7 label");
            std::process::exit(1);
        });

    println!(
        "{:<14}{:>8}{:>10}{:>10}{:>10}{:>10}{:>10}{:>9}{:>9}{:>10}",
        "scheme",
        "ipc",
        "tlb_mpki",
        "l2_mpki",
        "l3_mpki",
        "walks",
        "walk_cyc",
        "l2_occ",
        "l3_occ",
        "xl_cyc/acc"
    );
    for scheme in [
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::CsaltCd,
        TranslationScheme::Dip,
        TranslationScheme::Tsb,
    ] {
        let mut cfg = default_config(workload.clone(), scheme);
        cfg.accesses_per_core = accesses;
        cfg.occupancy_scan_interval = accesses / 16;
        let r = run(&cfg);
        let (l2o, l3o) = r.mean_occupancy();
        let part = match r.final_partitions {
            (Some(a), Some(b)) => format!("{a}/{b}"),
            _ => "-".into(),
        };
        // Never-probed TLB partitions print "-" rather than a fake 0%.
        let pct = |rate: Option<f64>| {
            rate.map_or_else(|| "-".to_owned(), |v| format!("{:.2}", v * 100.0))
        };
        println!(
            "{:<14}{:>8.4}{:>10.2}{:>10.2}{:>10.2}{:>10}{:>10.0}{:>9.3}{:>9.3}{:>10.1}  part(d):{} l2t%:{} l3t%:{} stk:{} ddr:{}",
            scheme.label(),
            r.ipc(),
            r.l2_tlb_mpki(),
            r.l2_cache_mpki(),
            r.l3_cache_mpki(),
            r.snapshot.page_walks,
            r.snapshot.walk_cycles_per_walk(),
            l2o,
            l3o,
            r.snapshot.translation_cycles as f64 / r.snapshot.accesses as f64,
            part,
            pct(r.snapshot.l2.tlb.hit_rate()),
            pct(r.snapshot.l3.tlb.hit_rate()),
            r.snapshot.stacked.accesses,
            r.snapshot.ddr.accesses,
        );
    }
}
