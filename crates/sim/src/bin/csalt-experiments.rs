//! Experiment runner CLI: regenerate any of the paper's tables/figures
//! (or the extensions) without going through `cargo bench`.
//!
//! ```sh
//! csalt-experiments list
//! csalt-experiments fig07 fig08
//! csalt-experiments all --jobs 4
//! csalt-experiments run gups csalt-cd --telemetry out.jsonl --telemetry-sample 1000
//! csalt-experiments cache-gate
//! ```
//!
//! Honors the same environment knobs as the bench harness
//! (`CSALT_ACCESSES`, `CSALT_WARMUP`, `CSALT_SCALE`), plus the sweep
//! engine's: `--jobs N` / `CSALT_JOBS` bounds worker parallelism,
//! `--cache-dir <path>` / `CSALT_CACHE_DIR` relocates the persisted
//! result cache (default `target/csalt-cache/`), and `--no-cache` /
//! `CSALT_NO_CACHE` disables persistence (in-process dedup remains).
//! `--pipeline[=auto|force|off]` / `CSALT_PIPELINE` selects the
//! pipelined execution mode (producer threads stage accesses over SPSC
//! rings ahead of the serial commit stage; results are bit-identical).

use csalt_sim::experiments as exp;
#[cfg(feature = "telemetry")]
use csalt_sim::{run_instrumented_with_stats, Instrumentation};
use csalt_sim::{sweep, SimConfig, Sweep, SweepOptions};
#[cfg(feature = "telemetry")]
use csalt_telemetry::{NullRecorder, Recorder, StreamRecorder};
#[cfg(feature = "telemetry")]
use csalt_trace::TraceBuffer;
use csalt_types::{Asid, TranslationScheme};
#[cfg(feature = "telemetry")]
use csalt_workloads::paper_workloads;
use csalt_workloads::{BenchKind, TraceFile, TraceGenerator, WorkloadSpec};
use std::path::PathBuf;

struct Entry {
    name: &'static str,
    about: &'static str,
    run: fn() -> Option<exp::Table>,
}

fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "fig01",
            about: "L2 TLB MPKI ratio, context-switch vs not",
            run: || Some(exp::fig01()),
        },
        Entry {
            name: "tab01",
            about: "page-walk cycles, native vs virtualized",
            run: || Some(exp::tab01()),
        },
        Entry {
            name: "fig03",
            about: "TLB entries' share of cache capacity",
            run: || Some(exp::fig03()),
        },
        Entry {
            name: "fig07",
            about: "main comparison, normalized to POM-TLB",
            run: || Some(exp::main_comparison().fig07()),
        },
        Entry {
            name: "fig08",
            about: "page walks eliminated by POM-TLB",
            run: || Some(exp::main_comparison().fig08()),
        },
        Entry {
            name: "fig09",
            about: "partition allocation over time (ccomp)",
            run: || {
                let t = exp::fig09();
                println!("L3 trace: {:?}", t.l3);
                println!("L2 trace: {:?}", t.l2);
                None
            },
        },
        Entry {
            name: "fig10",
            about: "relative L2 data-cache MPKI",
            run: || Some(exp::main_comparison().fig10()),
        },
        Entry {
            name: "fig11",
            about: "relative L3 data-cache MPKI",
            run: || Some(exp::main_comparison().fig11()),
        },
        Entry {
            name: "fig12",
            about: "native-mode CSALT-CD",
            run: || Some(exp::fig12()),
        },
        Entry {
            name: "fig13",
            about: "TSB vs DIP vs CSALT-CD",
            run: || Some(exp::fig13()),
        },
        Entry {
            name: "fig14",
            about: "context-count sensitivity",
            run: || Some(exp::fig14()),
        },
        Entry {
            name: "fig15",
            about: "epoch-length sensitivity",
            run: || Some(exp::fig15()),
        },
        Entry {
            name: "fig16",
            about: "context-switch-interval sensitivity",
            run: || Some(exp::fig16()),
        },
        Entry {
            name: "ext_5level",
            about: "extension: 5-level (LA57) paging",
            run: || Some(exp::ext_5level()),
        },
        Entry {
            name: "ext_tsb_csalt",
            about: "extension: CSALT partitioning over the TSB",
            run: || Some(exp::ext_tsb_csalt()),
        },
        Entry {
            name: "ext_huge_pages",
            about: "extension: THP sensitivity",
            run: || Some(exp::ext_huge_pages()),
        },
        Entry {
            name: "ext_drrip",
            about: "extension: DRRIP replacement baseline",
            run: || Some(exp::ext_drrip()),
        },
        Entry {
            name: "ablation_replacement",
            about: "ablation: pseudo-LRU replacement under CSALT",
            run: || Some(exp::ablation_replacement()),
        },
        Entry {
            name: "ablation_static",
            about: "ablation: static partitions vs dynamic",
            run: || Some(exp::ablation_static()),
        },
        Entry {
            name: "ablation_warmup",
            about: "ablation: functional vs timed warmup drift",
            run: || Some(exp::ablation_warmup()),
        },
    ]
}

/// `csalt-experiments run <workload> [scheme] [flags]` — one
/// instrumented simulation with the telemetry stream on disk.
///
/// Flags: `--telemetry <path>` (JSONL or CSV by extension; omitted =
/// discard records, still useful with `--progress`),
/// `--telemetry-sample <N>` (trace every Nth translation; 0 = off),
/// `--trace <path>` (span trace in Chrome Trace Event JSON — open in
/// Perfetto/`chrome://tracing`, or inspect with `csalt-report trace`),
/// `--progress <N>` (heartbeat every N epochs on stderr),
/// `--accesses <N>` (per-core access budget override).
#[cfg(feature = "telemetry")]
fn run_single(args: &[String]) {
    let mut workload_name: Option<&str> = None;
    let mut scheme = TranslationScheme::CsaltCd;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut sample_interval: u64 = 0;
    let mut progress: u64 = 0;
    let mut accesses: Option<u64> = None;
    let mut warmup_mode: Option<csalt_sim::WarmupMode> = None;
    let mut sample_windows: Option<u64> = None;
    let mut window_accesses: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--telemetry" => telemetry_path = Some(PathBuf::from(value("--telemetry"))),
            "--trace" => trace_path = Some(PathBuf::from(value("--trace"))),
            "--telemetry-sample" => {
                sample_interval = parse_or_die(value("--telemetry-sample"), "--telemetry-sample");
            }
            "--progress" => progress = parse_or_die(value("--progress"), "--progress"),
            "--accesses" => accesses = Some(parse_or_die(value("--accesses"), "--accesses")),
            "--warmup-mode" => {
                let v = value("--warmup-mode");
                warmup_mode = Some(csalt_sim::WarmupMode::parse(v).unwrap_or_else(|| {
                    eprintln!("--warmup-mode: '{v}' is not one of timed, functional");
                    std::process::exit(2);
                }));
            }
            "--sample-windows" => {
                sample_windows = Some(parse_or_die(value("--sample-windows"), "--sample-windows"));
            }
            "--window-accesses" => {
                window_accesses = Some(parse_or_die(
                    value("--window-accesses"),
                    "--window-accesses",
                ));
            }
            name if workload_name.is_none() => workload_name = Some(name),
            label => {
                scheme = TranslationScheme::parse_label(label).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scheme '{label}' — try conventional, pom-tlb, csalt-d, \
                         csalt-cd, dip, tsb, tsb-csalt, drrip or static-<ways>"
                    );
                    std::process::exit(2);
                });
            }
        }
    }

    let Some(name) = workload_name else {
        eprintln!("usage: csalt-experiments run <workload> [scheme] [--telemetry <path>] [--telemetry-sample <N>] [--trace <path>] [--progress <N>] [--accesses <N>]");
        std::process::exit(2);
    };
    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            let known: Vec<String> = paper_workloads().into_iter().map(|w| w.name).collect();
            eprintln!("unknown workload '{name}' — one of: {}", known.join(", "));
            std::process::exit(2);
        });

    let mut cfg = exp::default_config(workload, scheme);
    if let Some(n) = accesses {
        cfg.accesses_per_core = n;
    }
    if let Some(m) = warmup_mode {
        cfg.warmup_mode = m;
    }
    if let Some(n) = sample_windows {
        cfg.sample_windows = n;
    }
    if let Some(n) = window_accesses {
        cfg.window_accesses = n;
    }
    if (cfg.sample_windows == 0) != (cfg.window_accesses == 0) {
        eprintln!("--sample-windows and --window-accesses must be set together");
        std::process::exit(2);
    }
    // The span trace reads repartition decisions (and their
    // marginal-utility curves) off the partition trace, so turn it on.
    if trace_path.is_some() {
        cfg.trace_partitions = true;
    }

    let mut stream: Option<StreamRecorder> = telemetry_path.as_deref().map(|path| {
        StreamRecorder::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    let mut null = NullRecorder;
    let recorder: &mut dyn Recorder = match stream.as_mut() {
        Some(s) => s,
        None => &mut null,
    };
    let mut trace_buf = trace_path.as_ref().map(|_| TraceBuffer::new());
    let mut inst = Instrumentation {
        recorder,
        sample_interval,
        progress_every_epochs: progress,
        trace: trace_buf.as_mut(),
    };
    let (result, pipeline) = run_instrumented_with_stats(&cfg, &mut inst);

    println!(
        "{} / {}: ipc {:.4}, l2-tlb mpki {:.2}, walks {}, translation cyc/acc {:.1}",
        cfg.workload.name,
        scheme.label(),
        result.ipc(),
        result.l2_tlb_mpki(),
        result.snapshot.page_walks,
        result.snapshot.translation_cycles as f64 / result.snapshot.accesses.max(1) as f64,
    );
    if let Some(p) = &pipeline {
        println!(
            "pipeline: {} producers over {}-slot rings, {} staged / {} committed, \
             stalls {} producer / {} consumer, mean occupancy {:.1}",
            p.producers,
            p.ring_capacity,
            p.records_staged,
            p.records_committed,
            p.producer_stalls,
            p.consumer_stalls,
            p.mean_occupancy(),
        );
    }
    if let Some(s) = &stream {
        if let Some(path) = &telemetry_path {
            println!(
                "telemetry: {} records to {} ({} skipped)",
                s.records_written(),
                path.display(),
                s.records_skipped(),
            );
        }
    }
    if let (Some(buf), Some(path)) = (&trace_buf, &trace_path) {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        });
        let mut out = std::io::BufWriter::new(file);
        csalt_trace::write_chrome(buf, &mut out).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "trace: {} span events to {} (load in Perfetto, or `csalt-report trace`)",
            buf.len(),
            path.display(),
        );
    }
}

fn parse_or_die(text: &str, flag: &str) -> u64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: '{text}' is not a non-negative integer");
        std::process::exit(2);
    })
}

/// `csalt-experiments trace-record <bench> <out.trace>` — record a
/// benchmark's access stream to a trace file (v2 staged format by
/// default; `--v1` writes the legacy 13-byte format).
///
/// Flags: `--count <N>` records (default 1,000,000), `--seed <N>`,
/// `--scale <F>` footprint multiplier, `--asid <N>` the ASID the v2
/// packed keys are staged for (default 1 — what a single-VM replay run
/// assigns), `--v1`.
fn trace_record(args: &[String]) {
    let mut bench: Option<BenchKind> = None;
    let mut out: Option<PathBuf> = None;
    let mut count: u64 = 1_000_000;
    let mut seed: u64 = 0xC5A1_7000;
    let mut scale: f64 = 1.0;
    let mut asid: u64 = 1;
    let mut v1 = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--count" => count = parse_or_die(value("--count"), "--count"),
            "--seed" => seed = parse_or_die(value("--seed"), "--seed"),
            "--asid" => asid = parse_or_die(value("--asid"), "--asid"),
            "--v1" => v1 = true,
            "--scale" => {
                let v = value("--scale");
                scale = v.parse().unwrap_or_else(|_| {
                    eprintln!("--scale: '{v}' is not a number");
                    std::process::exit(2);
                });
            }
            name if bench.is_none() => {
                bench = Some(
                    BenchKind::ALL
                        .into_iter()
                        .find(|b| b.name() == name)
                        .unwrap_or_else(|| {
                            let known: Vec<&str> =
                                BenchKind::ALL.iter().map(BenchKind::name).collect();
                            eprintln!("unknown benchmark '{name}' — one of: {}", known.join(", "));
                            std::process::exit(2);
                        }),
                );
            }
            path if out.is_none() => out = Some(PathBuf::from(path)),
            extra => {
                eprintln!("unexpected argument '{extra}'");
                std::process::exit(2);
            }
        }
    }
    let (Some(bench), Some(out)) = (bench, out) else {
        eprintln!(
            "usage: csalt-experiments trace-record <bench> <out.trace> \
             [--count <N>] [--seed <N>] [--scale <F>] [--asid <N>] [--v1]"
        );
        std::process::exit(2);
    };
    let asid = u16::try_from(asid).unwrap_or_else(|_| {
        eprintln!("--asid: {asid} does not fit in 16 bits");
        std::process::exit(2);
    });
    if count == 0 {
        eprintln!("--count must be nonzero (a valid trace is never empty)");
        std::process::exit(2);
    }
    let mut generator = bench.build(seed, scale);
    let write = if v1 {
        TraceFile::record(&out, generator.as_mut(), count)
    } else {
        TraceFile::record_v2(&out, generator.as_mut(), count, Asid::new(asid))
    };
    if let Err(e) = write {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!(
        "recorded {count} {} accesses to {} ({}) ",
        bench.name(),
        out.display(),
        if v1 {
            "v1, unstaged".to_owned()
        } else {
            format!("v2, staged for asid {asid}")
        },
    );
}

/// `csalt-experiments trace-convert <in.trace> <out.trace>` — upgrade a
/// trace to the v2 staged format (packed TLB keys precomputed for
/// `--asid <N>`, default 1), then re-open the output and verify the
/// access stream converted byte-faithfully.
fn trace_convert(args: &[String]) {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut asid: u64 = 1;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--asid" => {
                let v = it.next().map(String::as_str).unwrap_or_else(|| {
                    eprintln!("--asid needs a value");
                    std::process::exit(2);
                });
                asid = parse_or_die(v, "--asid");
            }
            path if input.is_none() => input = Some(PathBuf::from(path)),
            path if out.is_none() => out = Some(PathBuf::from(path)),
            extra => {
                eprintln!("unexpected argument '{extra}'");
                std::process::exit(2);
            }
        }
    }
    let (Some(input), Some(out)) = (input, out) else {
        eprintln!("usage: csalt-experiments trace-convert <in.trace> <out.trace> [--asid <N>]");
        std::process::exit(2);
    };
    let asid = u16::try_from(asid).unwrap_or_else(|_| {
        eprintln!("--asid: {asid} does not fit in 16 bits");
        std::process::exit(2);
    });
    let mut trace = TraceFile::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", input.display());
        std::process::exit(1);
    });
    let from_version = trace.version();
    trace.restage(Asid::new(asid));
    if let Err(e) = trace.save_v2(&out) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }

    // Round-trip proof: re-open both files and compare the full access
    // stream, so a conversion bug can never silently corrupt a trace.
    let mut a = TraceFile::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot re-open {}: {e}", input.display());
        std::process::exit(1);
    });
    let mut b = TraceFile::open(&out).unwrap_or_else(|e| {
        eprintln!("cannot re-open {}: {e}", out.display());
        std::process::exit(1);
    });
    if a.len() != b.len() {
        eprintln!("conversion FAILED: {} records in, {} out", a.len(), b.len());
        std::process::exit(1);
    }
    for i in 0..a.len() {
        if a.next_access() != b.next_access() {
            eprintln!("conversion FAILED: record {i} differs after round-trip");
            std::process::exit(1);
        }
    }
    println!(
        "converted {} records v{from_version} -> v2 at {}, keys staged for asid {asid}; \
         round-trip verified",
        b.len(),
        out.display(),
    );
}

/// Removes the sweep-engine flags from `args`, exporting them as the
/// environment knobs the process-global sweep reads on first touch.
fn extract_sweep_flags(args: &mut Vec<String>) {
    let mut i = 0;
    while i < args.len() {
        let take_value = |args: &mut Vec<String>, flag: &str| {
            args.remove(i);
            if i < args.len() {
                args.remove(i)
            } else {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            }
        };
        match args[i].as_str() {
            "--jobs" => {
                let v = take_value(args, "--jobs");
                if v.parse::<usize>().map(|n| n > 0) != Ok(true) {
                    eprintln!("--jobs: '{v}' is not a positive integer");
                    std::process::exit(2);
                }
                std::env::set_var("CSALT_JOBS", v);
            }
            "--cache-dir" => {
                let v = take_value(args, "--cache-dir");
                std::env::set_var("CSALT_CACHE_DIR", v);
            }
            "--no-cache" => {
                args.remove(i);
                std::env::set_var("CSALT_NO_CACHE", "1");
            }
            "--pipeline" => {
                args.remove(i);
                std::env::set_var("CSALT_PIPELINE", "auto");
            }
            flag if flag.starts_with("--pipeline=") => {
                let mode = args.remove(i);
                let mode = &mode["--pipeline=".len()..];
                if !matches!(mode, "auto" | "force" | "off") {
                    eprintln!("--pipeline: '{mode}' is not one of auto, force, off");
                    std::process::exit(2);
                }
                std::env::set_var("CSALT_PIPELINE", mode);
            }
            _ => i += 1,
        }
    }
}

/// The cache-gate suite: a fig07-style grid plus the cross-figure
/// duplicate submissions fig13-style harnesses produce, at smoke size.
/// 12 configs, 8 unique — the gate pins both numbers.
fn gate_configs() -> Vec<SimConfig> {
    let mk = |w: &WorkloadSpec, s: TranslationScheme| {
        let mut c = SimConfig::new(w.clone(), s);
        c.system.cores = 2;
        c.system.cs_interval_cycles = 40_000;
        c.system.epoch_accesses = 10_000;
        c.accesses_per_core = 4_000;
        c.warmup_accesses_per_core = 2_000;
        c.scale = 0.05;
        c
    };
    let pair = WorkloadSpec::pair("g500_gups", BenchKind::Graph500, BenchKind::Gups);
    let gups = WorkloadSpec::homogeneous("gups", BenchKind::Gups);
    let mut configs = Vec::new();
    for w in [&pair, &gups] {
        for s in exp::FIG7_SCHEMES {
            configs.push(mk(w, s));
        }
    }
    // A second "figure" re-submitting two of the same baselines.
    for w in [&pair, &gups] {
        for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
            configs.push(mk(w, s));
        }
    }
    configs
}

/// `csalt-experiments cache-gate`: runs the smoke suite cold into a
/// fresh cache directory, then warm from it, and fails (exit 1) unless
/// the cold pass simulated exactly the unique configs, the warm pass
/// simulated **nothing**, and both passes produced byte-identical
/// results. This is the CI proof of the sweep engine's contract.
fn cache_gate() {
    let dir = std::env::temp_dir().join(format!("csalt-cache-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let configs = gate_configs();
    let unique = configs
        .iter()
        .map(sweep::config_key)
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;
    let total = configs.len() as u64;

    let json = |results: &[csalt_sim::SimResult]| {
        serde_json::to_string(results).expect("results serialize")
    };
    let fail = |msg: &str| -> ! {
        eprintln!("cache gate FAILED: {msg}");
        std::process::exit(1);
    };

    let t = std::time::Instant::now();
    let cold_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let cold = cold_sweep.run_batch(configs.clone());
    let cold_secs = t.elapsed().as_secs_f64();
    let s = cold_sweep.stats();
    if s.simulated != unique {
        fail(&format!(
            "cold pass simulated {} configs, expected {unique} unique",
            s.simulated
        ));
    }
    if s.deduped != total - unique {
        fail(&format!(
            "cold pass deduped {} configs, expected {}",
            s.deduped,
            total - unique
        ));
    }

    let t = std::time::Instant::now();
    let warm_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let warm = warm_sweep.run_batch(configs);
    let warm_secs = t.elapsed().as_secs_f64();
    let s = warm_sweep.stats();
    if s.simulated != 0 {
        fail(&format!(
            "warm pass simulated {} configs, expected 0 (cache_errors: {})",
            s.simulated, s.cache_errors
        ));
    }
    if json(&cold) != json(&warm) {
        fail("warm results are not byte-identical to the cold run");
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "cache gate OK [{}]: cold {unique} sims ({} deduped of {total}) in {cold_secs:.2}s; \
         warm 0 sims ({} hits) in {warm_secs:.2}s; results byte-identical",
        sweep::engine_fingerprint(),
        total - unique,
        s.cache_hits,
    );
}

/// `csalt-experiments ckpt-gate`: proof of the fork-from-snapshot
/// contract. Runs a suite whose configs share warmup prefixes twice
/// into fresh cache directories — once with checkpointing and the
/// shared trace store disabled, once with both enabled — and fails
/// (exit 1) unless the enabled pass produced byte-identical results
/// AND restored at least one checkpoint.
fn ckpt_gate() {
    // Base suite plus, per unique config, a variant that differs only
    // in measured-phase length — same warmup prefix, different config
    // key — so every prefix group has a leader and a follower.
    let mut configs = gate_configs();
    let variants: Vec<SimConfig> = {
        let mut seen = std::collections::BTreeSet::new();
        configs
            .iter()
            .filter(|c| seen.insert(sweep::config_key(c)))
            .map(|c| {
                let mut v = c.clone();
                v.accesses_per_core *= 2;
                v
            })
            .collect()
    };
    configs.extend(variants);

    let json = |results: &[csalt_sim::SimResult]| {
        serde_json::to_string(results).expect("results serialize")
    };
    let fail = |msg: &str| -> ! {
        eprintln!("ckpt gate FAILED: {msg}");
        std::process::exit(1);
    };
    let pass = |tag: &str, ckpt: &str| -> (String, f64, csalt_sim::SweepStats) {
        let dir =
            std::env::temp_dir().join(format!("csalt-ckpt-gate-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The checkpoint and trace-store layers resolve their
        // directory from the environment, independently of the
        // sweep's; point everything at this pass's fresh dir.
        std::env::set_var("CSALT_CACHE_DIR", &dir);
        std::env::set_var("CSALT_CKPT", ckpt);
        std::env::set_var("CSALT_TRACE_STORE", ckpt);
        let t = std::time::Instant::now();
        let sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
        let results = sweep.run_batch(configs.clone());
        let secs = t.elapsed().as_secs_f64();
        let stats = sweep.stats();
        let _ = std::fs::remove_dir_all(&dir);
        (json(&results), secs, stats)
    };

    let (off_json, off_secs, off_stats) = pass("off", "off");
    if off_stats.restored != 0 {
        fail("disabled pass restored a checkpoint");
    }
    let before = csalt_sim::checkpoint::stats();
    let (on_json, on_secs, on_stats) = pass("on", "on");
    let after = csalt_sim::checkpoint::stats();
    std::env::remove_var("CSALT_CKPT");
    std::env::remove_var("CSALT_TRACE_STORE");

    if on_json != off_json {
        fail("checkpointed results are not byte-identical to the disabled run");
    }
    let restores = after.restores.saturating_sub(before.restores);
    if restores == 0 || on_stats.restored == 0 {
        fail("enabled pass restored no checkpoint — the fork-from-snapshot path never ran");
    }
    let saves = after.saves.saturating_sub(before.saves);
    let fallbacks = after.fallbacks.saturating_sub(before.fallbacks);
    println!(
        "ckpt gate OK [{}]: {} sims; disabled {off_secs:.2}s, enabled {on_secs:.2}s \
         ({saves} saves, {restores} restores, {fallbacks} fallbacks); results byte-identical",
        sweep::engine_fingerprint(),
        on_stats.simulated,
    );
}

/// Every GC-eligible artifact in the cache dir: regenerable,
/// fingerprint-scoped (or content-keyed) files only. `costs.jsonl` is
/// exempt — it is tiny, append-only, and useful across fingerprints.
fn cache_artifacts(dir: &std::path::Path) -> Vec<(PathBuf, u64, std::time::SystemTime)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let eligible =
            name.starts_with("results-") || name.starts_with("ckpt-") || name.starts_with("trace-");
        if !eligible {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            if meta.is_file() {
                let modified = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                files.push((entry.path(), meta.len(), modified));
            }
        }
    }
    files
}

/// `csalt-experiments cache-gc [--max-bytes N]`: bounds the cache
/// directory's artifact footprint by deleting oldest-modified files
/// first until the total fits (default cap 1 GiB). Everything removed
/// is regenerable — at worst the next sweep re-simulates or re-warms.
fn cache_gc(args: &[String]) {
    let mut cap: u64 = 1 << 30;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-bytes" {
            cap = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--max-bytes needs an integer byte count");
                    std::process::exit(2);
                });
            i += 2;
        } else {
            eprintln!("cache-gc: unknown argument '{}'", args[i]);
            std::process::exit(2);
        }
    }
    let Some(dir) = SweepOptions::from_env().cache_dir else {
        println!("cache-gc: caching disabled (CSALT_NO_CACHE), nothing to do");
        return;
    };
    let mut files = cache_artifacts(&dir);
    let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
    if total <= cap {
        println!(
            "cache-gc: {} files, {total} bytes <= cap {cap} — nothing evicted",
            files.len()
        );
        return;
    }
    files.sort_by_key(|&(_, _, modified)| modified);
    let mut evicted = 0u64;
    let mut freed = 0u64;
    for (path, len, _) in files {
        if total <= cap {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total -= len;
            freed += len;
            evicted += 1;
        }
    }
    println!("cache-gc: evicted {evicted} files ({freed} bytes), {total} bytes retained");
}

/// `csalt-experiments cache-stats`: what the cache directory holds —
/// per-artifact-class counts and sizes, plus the cost model's line
/// count — so `cache-gc` caps can be chosen from facts.
fn cache_stats() {
    let Some(dir) = SweepOptions::from_env().cache_dir else {
        println!("cache-stats: caching disabled (CSALT_NO_CACHE)");
        return;
    };
    let files = cache_artifacts(&dir);
    let class = |prefix: &str| -> (usize, u64) {
        files
            .iter()
            .filter(|(p, _, _)| {
                p.file_name()
                    .map(|n| n.to_string_lossy().starts_with(prefix))
                    .unwrap_or(false)
            })
            .fold((0, 0), |(n, b), (_, len, _)| (n + 1, b + len))
    };
    let (res_n, res_b) = class("results-");
    let (ckpt_n, ckpt_b) = class("ckpt-");
    let (trace_n, trace_b) = class("trace-");
    let costs = std::fs::metadata(dir.join("costs.jsonl"))
        .map(|m| m.len())
        .unwrap_or(0);
    println!("cache dir: {}", dir.display());
    println!("  results:     {res_n:>5} files  {res_b:>12} bytes");
    println!("  checkpoints: {ckpt_n:>5} files  {ckpt_b:>12} bytes");
    println!("  traces:      {trace_n:>5} files  {trace_b:>12} bytes");
    println!("  cost model:  {:>5} file   {costs:>12} bytes", 1);
    println!(
        "  total:       {:>5} files  {:>12} bytes (gc-eligible)",
        res_n + ckpt_n + trace_n,
        res_b + ckpt_b + trace_b
    );
    println!("current fingerprint: {}", sweep::engine_fingerprint());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    extract_sweep_flags(&mut args);
    let registry = registry();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: csalt-experiments <name>... | all | list | cache-gate | ckpt-gate | cache-gc [--max-bytes N] | cache-stats | run <workload> [scheme] [--telemetry <path>] | trace-record <bench> <out> | trace-convert <in> <out>\n");
        for e in &registry {
            println!("  {:<22} {}", e.name, e.about);
        }
        println!(
            "  {:<22} one instrumented run: --telemetry <path> --telemetry-sample <N> --trace <path> --progress <N> \
             --warmup-mode <timed|functional> --sample-windows <N> --window-accesses <M>",
            "run"
        );
        println!(
            "  {:<22} prove the result cache: cold run, warm run, 0 re-simulations",
            "cache-gate"
        );
        println!(
            "  {:<22} prove checkpointed warmup: ckpt on vs off byte-identical, >=1 restore",
            "ckpt-gate"
        );
        println!(
            "  {:<22} bound the cache dir: evict oldest artifacts past --max-bytes",
            "cache-gc"
        );
        println!(
            "  {:<22} show cache dir contents by artifact class",
            "cache-stats"
        );
        println!(
            "  {:<22} record a benchmark stream to a v2 (staged) trace file",
            "trace-record"
        );
        println!(
            "  {:<22} upgrade a v1 trace to v2 and verify the round-trip",
            "trace-convert"
        );
        println!(
            "\nsweep flags (any position): --jobs <N>, --cache-dir <path>, --no-cache, \
             --pipeline[=auto|force|off]"
        );
        return;
    }
    if args[0] == "cache-gate" {
        cache_gate();
        return;
    }
    if args[0] == "ckpt-gate" {
        ckpt_gate();
        return;
    }
    if args[0] == "cache-gc" {
        cache_gc(&args[1..]);
        return;
    }
    if args[0] == "cache-stats" {
        cache_stats();
        return;
    }
    if args[0] == "trace-record" {
        trace_record(&args[1..]);
        return;
    }
    if args[0] == "trace-convert" {
        trace_convert(&args[1..]);
        return;
    }
    if args[0] == "run" {
        #[cfg(feature = "telemetry")]
        {
            run_single(&args[1..]);
            return;
        }
        #[cfg(not(feature = "telemetry"))]
        {
            eprintln!("`run` needs the `telemetry` feature (on by default)");
            std::process::exit(2);
        }
    }
    // Figure suites run through the global sweep engine; `--trace`
    // installs a wall-domain sink there (per-job simulate spans,
    // cache-hit/dedup instants) and exports it when the suite is done.
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        args.remove(i);
        if i < args.len() {
            PathBuf::from(args.remove(i))
        } else {
            eprintln!("--trace needs a value");
            std::process::exit(2);
        }
    });
    if trace_path.is_some() {
        csalt_sim::Sweep::global().set_trace(csalt_trace::TraceBuffer::new());
    }
    let wanted: Vec<&Entry> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut out = Vec::new();
        for a in &args {
            match registry.iter().find(|e| e.name == a.as_str()) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment '{a}' — try `csalt-experiments list`");
                    std::process::exit(1);
                }
            }
        }
        out
    };
    for e in wanted {
        eprintln!("running {} ({})...", e.name, e.about);
        if let Some(table) = (e.run)() {
            println!("{}", table.render());
        }
    }
    if let Some(path) = trace_path {
        let Some(buf) = csalt_sim::Sweep::global().take_trace() else {
            return;
        };
        let write = std::fs::File::create(&path).and_then(|f| {
            let mut out = std::io::BufWriter::new(f);
            csalt_trace::write_chrome(&buf, &mut out)
        });
        match write {
            Ok(()) => eprintln!(
                "trace: {} span events to {} (sweep wall domain)",
                buf.len(),
                path.display(),
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
