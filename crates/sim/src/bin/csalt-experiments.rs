//! Experiment runner CLI: regenerate any of the paper's tables/figures
//! (or the extensions) without going through `cargo bench`.
//!
//! ```sh
//! csalt-experiments list
//! csalt-experiments fig07 fig08
//! csalt-experiments all
//! ```
//!
//! Honors the same environment knobs as the bench harness
//! (`CSALT_ACCESSES`, `CSALT_WARMUP`, `CSALT_SCALE`).

use csalt_sim::experiments as exp;

struct Entry {
    name: &'static str,
    about: &'static str,
    run: fn() -> Option<exp::Table>,
}

fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "fig01",
            about: "L2 TLB MPKI ratio, context-switch vs not",
            run: || Some(exp::fig01()),
        },
        Entry {
            name: "tab01",
            about: "page-walk cycles, native vs virtualized",
            run: || Some(exp::tab01()),
        },
        Entry {
            name: "fig03",
            about: "TLB entries' share of cache capacity",
            run: || Some(exp::fig03()),
        },
        Entry {
            name: "fig07",
            about: "main comparison, normalized to POM-TLB",
            run: || Some(exp::main_comparison().fig07()),
        },
        Entry {
            name: "fig08",
            about: "page walks eliminated by POM-TLB",
            run: || Some(exp::main_comparison().fig08()),
        },
        Entry {
            name: "fig09",
            about: "partition allocation over time (ccomp)",
            run: || {
                let t = exp::fig09();
                println!("L3 trace: {:?}", t.l3);
                println!("L2 trace: {:?}", t.l2);
                None
            },
        },
        Entry {
            name: "fig10",
            about: "relative L2 data-cache MPKI",
            run: || Some(exp::main_comparison().fig10()),
        },
        Entry {
            name: "fig11",
            about: "relative L3 data-cache MPKI",
            run: || Some(exp::main_comparison().fig11()),
        },
        Entry {
            name: "fig12",
            about: "native-mode CSALT-CD",
            run: || Some(exp::fig12()),
        },
        Entry {
            name: "fig13",
            about: "TSB vs DIP vs CSALT-CD",
            run: || Some(exp::fig13()),
        },
        Entry {
            name: "fig14",
            about: "context-count sensitivity",
            run: || Some(exp::fig14()),
        },
        Entry {
            name: "fig15",
            about: "epoch-length sensitivity",
            run: || Some(exp::fig15()),
        },
        Entry {
            name: "fig16",
            about: "context-switch-interval sensitivity",
            run: || Some(exp::fig16()),
        },
        Entry {
            name: "ext_5level",
            about: "extension: 5-level (LA57) paging",
            run: || Some(exp::ext_5level()),
        },
        Entry {
            name: "ext_tsb_csalt",
            about: "extension: CSALT partitioning over the TSB",
            run: || Some(exp::ext_tsb_csalt()),
        },
        Entry {
            name: "ext_huge_pages",
            about: "extension: THP sensitivity",
            run: || Some(exp::ext_huge_pages()),
        },
        Entry {
            name: "ext_drrip",
            about: "extension: DRRIP replacement baseline",
            run: || Some(exp::ext_drrip()),
        },
        Entry {
            name: "ablation_replacement",
            about: "ablation: pseudo-LRU replacement under CSALT",
            run: || Some(exp::ablation_replacement()),
        },
        Entry {
            name: "ablation_static",
            about: "ablation: static partitions vs dynamic",
            run: || Some(exp::ablation_static()),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: csalt-experiments <name>... | all | list\n");
        for e in &registry {
            println!("  {:<22} {}", e.name, e.about);
        }
        return;
    }
    let wanted: Vec<&Entry> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut out = Vec::new();
        for a in &args {
            match registry.iter().find(|e| e.name == a.as_str()) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment '{a}' — try `csalt-experiments list`");
                    std::process::exit(1);
                }
            }
        }
        out
    };
    for e in wanted {
        eprintln!("running {} ({})...", e.name, e.about);
        if let Some(table) = (e.run)() {
            println!("{}", table.render());
        }
    }
}
