//! Experiment runner CLI: regenerate any of the paper's tables/figures
//! (or the extensions) without going through `cargo bench`.
//!
//! ```sh
//! csalt-experiments list
//! csalt-experiments fig07 fig08
//! csalt-experiments all
//! csalt-experiments run gups csalt-cd --telemetry out.jsonl --telemetry-sample 1000
//! ```
//!
//! Honors the same environment knobs as the bench harness
//! (`CSALT_ACCESSES`, `CSALT_WARMUP`, `CSALT_SCALE`).

use csalt_sim::experiments as exp;
#[cfg(feature = "telemetry")]
use csalt_sim::{run_instrumented, Instrumentation};
#[cfg(feature = "telemetry")]
use csalt_telemetry::{NullRecorder, Recorder, StreamRecorder};
#[cfg(feature = "telemetry")]
use csalt_types::TranslationScheme;
#[cfg(feature = "telemetry")]
use csalt_workloads::paper_workloads;
#[cfg(feature = "telemetry")]
use std::path::PathBuf;

struct Entry {
    name: &'static str,
    about: &'static str,
    run: fn() -> Option<exp::Table>,
}

fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "fig01",
            about: "L2 TLB MPKI ratio, context-switch vs not",
            run: || Some(exp::fig01()),
        },
        Entry {
            name: "tab01",
            about: "page-walk cycles, native vs virtualized",
            run: || Some(exp::tab01()),
        },
        Entry {
            name: "fig03",
            about: "TLB entries' share of cache capacity",
            run: || Some(exp::fig03()),
        },
        Entry {
            name: "fig07",
            about: "main comparison, normalized to POM-TLB",
            run: || Some(exp::main_comparison().fig07()),
        },
        Entry {
            name: "fig08",
            about: "page walks eliminated by POM-TLB",
            run: || Some(exp::main_comparison().fig08()),
        },
        Entry {
            name: "fig09",
            about: "partition allocation over time (ccomp)",
            run: || {
                let t = exp::fig09();
                println!("L3 trace: {:?}", t.l3);
                println!("L2 trace: {:?}", t.l2);
                None
            },
        },
        Entry {
            name: "fig10",
            about: "relative L2 data-cache MPKI",
            run: || Some(exp::main_comparison().fig10()),
        },
        Entry {
            name: "fig11",
            about: "relative L3 data-cache MPKI",
            run: || Some(exp::main_comparison().fig11()),
        },
        Entry {
            name: "fig12",
            about: "native-mode CSALT-CD",
            run: || Some(exp::fig12()),
        },
        Entry {
            name: "fig13",
            about: "TSB vs DIP vs CSALT-CD",
            run: || Some(exp::fig13()),
        },
        Entry {
            name: "fig14",
            about: "context-count sensitivity",
            run: || Some(exp::fig14()),
        },
        Entry {
            name: "fig15",
            about: "epoch-length sensitivity",
            run: || Some(exp::fig15()),
        },
        Entry {
            name: "fig16",
            about: "context-switch-interval sensitivity",
            run: || Some(exp::fig16()),
        },
        Entry {
            name: "ext_5level",
            about: "extension: 5-level (LA57) paging",
            run: || Some(exp::ext_5level()),
        },
        Entry {
            name: "ext_tsb_csalt",
            about: "extension: CSALT partitioning over the TSB",
            run: || Some(exp::ext_tsb_csalt()),
        },
        Entry {
            name: "ext_huge_pages",
            about: "extension: THP sensitivity",
            run: || Some(exp::ext_huge_pages()),
        },
        Entry {
            name: "ext_drrip",
            about: "extension: DRRIP replacement baseline",
            run: || Some(exp::ext_drrip()),
        },
        Entry {
            name: "ablation_replacement",
            about: "ablation: pseudo-LRU replacement under CSALT",
            run: || Some(exp::ablation_replacement()),
        },
        Entry {
            name: "ablation_static",
            about: "ablation: static partitions vs dynamic",
            run: || Some(exp::ablation_static()),
        },
    ]
}

/// `csalt-experiments run <workload> [scheme] [flags]` — one
/// instrumented simulation with the telemetry stream on disk.
///
/// Flags: `--telemetry <path>` (JSONL or CSV by extension; omitted =
/// discard records, still useful with `--progress`),
/// `--telemetry-sample <N>` (trace every Nth translation; 0 = off),
/// `--progress <N>` (heartbeat every N epochs on stderr),
/// `--accesses <N>` (per-core access budget override).
#[cfg(feature = "telemetry")]
fn run_single(args: &[String]) {
    let mut workload_name: Option<&str> = None;
    let mut scheme = TranslationScheme::CsaltCd;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut sample_interval: u64 = 0;
    let mut progress: u64 = 0;
    let mut accesses: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--telemetry" => telemetry_path = Some(PathBuf::from(value("--telemetry"))),
            "--telemetry-sample" => {
                sample_interval = parse_or_die(value("--telemetry-sample"), "--telemetry-sample");
            }
            "--progress" => progress = parse_or_die(value("--progress"), "--progress"),
            "--accesses" => accesses = Some(parse_or_die(value("--accesses"), "--accesses")),
            name if workload_name.is_none() => workload_name = Some(name),
            label => {
                scheme = TranslationScheme::parse_label(label).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scheme '{label}' — try conventional, pom-tlb, csalt-d, \
                         csalt-cd, dip, tsb, tsb-csalt, drrip or static-<ways>"
                    );
                    std::process::exit(2);
                });
            }
        }
    }

    let Some(name) = workload_name else {
        eprintln!("usage: csalt-experiments run <workload> [scheme] [--telemetry <path>] [--telemetry-sample <N>] [--progress <N>] [--accesses <N>]");
        std::process::exit(2);
    };
    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            let known: Vec<String> = paper_workloads().into_iter().map(|w| w.name).collect();
            eprintln!("unknown workload '{name}' — one of: {}", known.join(", "));
            std::process::exit(2);
        });

    let mut cfg = exp::default_config(workload, scheme);
    if let Some(n) = accesses {
        cfg.accesses_per_core = n;
    }

    let mut stream: Option<StreamRecorder> = telemetry_path.as_deref().map(|path| {
        StreamRecorder::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    let mut null = NullRecorder;
    let recorder: &mut dyn Recorder = match stream.as_mut() {
        Some(s) => s,
        None => &mut null,
    };
    let mut inst = Instrumentation {
        recorder,
        sample_interval,
        progress_every_epochs: progress,
    };
    let result = run_instrumented(&cfg, &mut inst);

    println!(
        "{} / {}: ipc {:.4}, l2-tlb mpki {:.2}, walks {}, translation cyc/acc {:.1}",
        cfg.workload.name,
        scheme.label(),
        result.ipc(),
        result.l2_tlb_mpki(),
        result.snapshot.page_walks,
        result.snapshot.translation_cycles as f64 / result.snapshot.accesses.max(1) as f64,
    );
    if let Some(s) = &stream {
        if let Some(path) = &telemetry_path {
            println!(
                "telemetry: {} records to {} ({} skipped)",
                s.records_written(),
                path.display(),
                s.records_skipped(),
            );
        }
    }
}

#[cfg(feature = "telemetry")]
fn parse_or_die(text: &str, flag: &str) -> u64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: '{text}' is not a non-negative integer");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: csalt-experiments <name>... | all | list | run <workload> [scheme] [--telemetry <path>]\n");
        for e in &registry {
            println!("  {:<22} {}", e.name, e.about);
        }
        println!(
            "  {:<22} one instrumented run: --telemetry <path> --telemetry-sample <N> --progress <N>",
            "run"
        );
        return;
    }
    if args[0] == "run" {
        #[cfg(feature = "telemetry")]
        {
            run_single(&args[1..]);
            return;
        }
        #[cfg(not(feature = "telemetry"))]
        {
            eprintln!("`run` needs the `telemetry` feature (on by default)");
            std::process::exit(2);
        }
    }
    let wanted: Vec<&Entry> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut out = Vec::new();
        for a in &args {
            match registry.iter().find(|e| e.name == a.as_str()) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment '{a}' — try `csalt-experiments list`");
                    std::process::exit(1);
                }
            }
        }
        out
    };
    for e in wanted {
        eprintln!("running {} ({})...", e.name, e.about);
        if let Some(table) = (e.run)() {
            println!("{}", table.render());
        }
    }
}
