//! Assembles a markdown report from the JSON results the bench targets
//! persist under `target/csalt-results/`, or summarizes a telemetry
//! stream produced by `csalt-experiments run --telemetry`.
//!
//! Usage:
//! * `csalt-report [results_dir]` — markdown tables to stdout.
//! * `csalt-report --telemetry <file> [--check]` — stream counts plus
//!   per-scheme latency percentile tables; `--check` exits nonzero on
//!   parse errors or walk traces whose stage cycles don't sum to the
//!   recorded total.

use csalt_sim::experiments::Table;
use csalt_telemetry::summarize_stream;
use std::io::Write;
use std::path::PathBuf;

/// Prints to stdout, exiting quietly when the reader closes the pipe
/// (e.g. `csalt-report | head`).
fn emit(text: &str) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

/// Summarizes one JSONL telemetry stream: record counts, validation
/// verdict, and a percentile table per latency instrument.
fn telemetry_report(path: &PathBuf, check: bool) {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", path.display());
        std::process::exit(1);
    });
    let summary = summarize_stream(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });

    emit(&format!("## Telemetry stream: {}\n", path.display()));
    emit(&format!(
        "{} records ({} provenance, {} epochs, {} walk traces, {} histograms); \
         {} parse errors, {} stage-sum violations\n",
        summary.lines,
        summary.provenance,
        summary.epochs,
        summary.walk_traces,
        summary.histograms,
        summary.parse_errors,
        summary.stage_sum_violations,
    ));
    for (instrument, title) in [
        ("translation_cycles", "Translation latency (cycles)"),
        ("data_cycles", "Data-path latency (cycles)"),
        ("total_cycles", "Total access latency (cycles)"),
    ] {
        if let Some(table) = summary.percentile_table(instrument, title) {
            emit(&table);
        }
    }
    if check && !summary.is_clean() {
        eprintln!(
            "telemetry check FAILED: {} parse errors, {} stage-sum violations",
            summary.parse_errors, summary.stage_sum_violations,
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--telemetry") {
        let Some(path) = args.get(1).map(PathBuf::from) else {
            eprintln!("usage: csalt-report --telemetry <file> [--check]");
            std::process::exit(2);
        };
        let check = args.iter().any(|a| a == "--check");
        telemetry_report(&path, check);
        return;
    }
    let dir: PathBuf = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/csalt-results"));
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name().is_some_and(|n| n != "main_comparison.json")
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e} — run the benches first", dir.display());
            std::process::exit(1);
        }
    };
    entries.sort();
    for path in entries {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        match serde_json::from_slice::<Table>(&bytes) {
            Ok(table) => {
                emit(&format!("### {}\n", table.id));
                emit(&table.render_markdown());
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
}
