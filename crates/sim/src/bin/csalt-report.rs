//! Assembles a markdown report from the JSON results the bench targets
//! persist under `target/csalt-results/`.
//!
//! Usage: `csalt-report [results_dir]` — prints markdown to stdout.

use csalt_sim::experiments::Table;
use std::io::Write;
use std::path::PathBuf;

/// Prints to stdout, exiting quietly when the reader closes the pipe
/// (e.g. `csalt-report | head`).
fn emit(text: &str) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/csalt-results"));
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name().is_some_and(|n| n != "main_comparison.json")
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e} — run the benches first", dir.display());
            std::process::exit(1);
        }
    };
    entries.sort();
    for path in entries {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        match serde_json::from_slice::<Table>(&bytes) {
            Ok(table) => {
                emit(&format!("### {}\n", table.id));
                emit(&table.render_markdown());
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
}
