//! Assembles a markdown report from the JSON results the bench targets
//! persist under `target/csalt-results/`, or summarizes a telemetry
//! stream produced by `csalt-experiments run --telemetry`.
//!
//! Usage:
//! * `csalt-report [results_dir]` — markdown tables to stdout.
//! * `csalt-report --telemetry <file> [--check]` — stream counts,
//!   the per-epoch partition timeline, and per-scheme latency
//!   percentile tables; `--check` exits nonzero on parse errors or walk
//!   traces whose stage cycles don't sum to the recorded total.
//! * `csalt-report trace <file.json> [--check] [--expect-repartitions
//!   <N>]` — validates a Chrome trace exported by `csalt-experiments
//!   run --trace` (balanced spans, per-track monotonic timestamps) and
//!   prints track and span-attribution tables; `--check` exits nonzero
//!   on structural violations or a repartition-instant shortfall.
//! * `csalt-report bench-diff [--history <file>] [--warn-threshold
//!   <pct>] [--strict]` — compares the latest `BENCH_history.jsonl`
//!   entries against the previous clean-tree session per metric and
//!   warns on regressions past the threshold (default 10%); exit code
//!   stays 0 unless `--strict`.

use csalt_sim::experiments::Table;
use csalt_telemetry::summarize_stream;
use std::io::Write;
use std::path::PathBuf;

/// Prints to stdout, exiting quietly when the reader closes the pipe
/// (e.g. `csalt-report | head`).
fn emit(text: &str) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

/// Summarizes one JSONL telemetry stream: record counts, validation
/// verdict, and a percentile table per latency instrument.
fn telemetry_report(path: &PathBuf, check: bool) {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", path.display());
        std::process::exit(1);
    });
    let summary = summarize_stream(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });

    emit(&format!("## Telemetry stream: {}\n", path.display()));
    emit(&format!(
        "{} records ({} provenance, {} epochs, {} walk traces, {} histograms); \
         {} parse errors, {} stage-sum violations\n",
        summary.lines,
        summary.provenance,
        summary.epochs,
        summary.walk_traces,
        summary.histograms,
        summary.parse_errors,
        summary.stage_sum_violations,
    ));
    if let Some(timeline) = partition_timeline(&summary.epoch_records) {
        emit(&timeline);
    }
    for (instrument, title) in [
        ("translation_cycles", "Translation latency (cycles)"),
        ("data_cycles", "Data-path latency (cycles)"),
        ("total_cycles", "Total access latency (cycles)"),
    ] {
        if let Some(table) = summary.percentile_table(instrument, title) {
            emit(&table);
        }
    }
    // L0 memo and pipeline block-drain gauges from the stream's
    // instruments record, when the run recorded them.
    {
        use csalt_telemetry::{l0_metrics, pipeline_metrics};
        if let (Some(hits), Some(inv)) = (
            summary.counter(l0_metrics::HITS),
            summary.counter(l0_metrics::INVALIDATIONS),
        ) {
            emit(&format!(
                "l0 memo: {hits} scan-skipping hits, {inv} invalidations\n"
            ));
        }
        if let (Some(drains), Some(records)) = (
            summary.counter(pipeline_metrics::BLOCK_DRAINS),
            summary.counter(pipeline_metrics::BLOCK_DRAINED_RECORDS),
        ) {
            let mean = if drains == 0 {
                0.0
            } else {
                records as f64 / drains as f64
            };
            emit(&format!(
                "pipeline block drains: {drains} ({records} records, mean {mean:.1} per drain)\n"
            ));
        }
    }
    if check && !summary.is_clean() {
        eprintln!(
            "telemetry check FAILED: {} parse errors, {} stage-sum violations",
            summary.parse_errors, summary.stage_sum_violations,
        );
        std::process::exit(1);
    }
}

/// Renders the per-epoch partition timeline from the stream's epoch
/// records: one row per epoch, with the way split of each partitioned
/// cache as numbers and the L3 data allocation as an ASCII bar. `None`
/// when no epoch carries a partition gauge (unpartitioned schemes).
fn partition_timeline(epochs: &[csalt_telemetry::EpochRecord]) -> Option<String> {
    if !epochs
        .iter()
        .any(|e| e.l2_data_ways.is_some() || e.l3_data_ways.is_some())
    {
        return None;
    }
    let bar_width = epochs
        .iter()
        .filter_map(|e| e.l3_data_ways)
        .max()
        .unwrap_or(0) as usize;
    let ways = |w: Option<u32>| w.map_or_else(|| "-".to_owned(), |w| w.to_string());
    let mut out = String::from("## Partition timeline (data ways per epoch)\n\n");
    out.push_str(&format!(
        "| epoch | accesses | l2 data | l3 data | l3 data bar{} | tlb occ l2 / l3 |\n",
        " ".repeat(bar_width.saturating_sub(11)),
    ));
    out.push_str(&format!(
        "|------:|---------:|--------:|--------:|:-{}|----------------:|\n",
        "-".repeat(bar_width.max(11)),
    ));
    for e in epochs {
        let bar: String = match e.l3_data_ways {
            Some(dw) => "#".repeat(dw as usize),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "| {:>5} | {:>8} | {:>7} | {:>7} | {:<width$} | {:>6.1}% / {:.1}% |\n",
            e.epoch,
            e.accesses,
            ways(e.l2_data_ways),
            ways(e.l3_data_ways),
            bar,
            e.l2_tlb_occupancy * 100.0,
            e.l3_tlb_occupancy * 100.0,
            width = bar_width.max(11),
        ));
    }
    Some(out)
}

/// Validates a Chrome trace and prints the track table plus per-domain
/// span attribution. `--check` semantics: exit 1 on structural errors
/// or fewer `repartition` instants than `expect_repartitions`.
fn trace_report(path: &PathBuf, check: bool, expect_repartitions: Option<u64>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    let summary = csalt_trace::reader::validate(&text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", path.display());
        std::process::exit(1);
    });

    emit(&format!("## Trace: {}\n", path.display()));
    emit(&format!(
        "{} events across {} tracks; {}\n",
        summary.events,
        summary.tracks.len(),
        if summary.is_valid() {
            "structurally valid (balanced spans, monotonic timestamps)".to_owned()
        } else {
            format!("{} structural violations", summary.errors.len())
        },
    ));
    for e in summary.errors.iter().take(10) {
        emit(&format!("  violation: {e}"));
    }

    emit("| domain | track | spans | instants | max depth | last ts |");
    emit("|:-------|:------|------:|---------:|----------:|--------:|");
    for t in &summary.tracks {
        let domain = match t.pid {
            1 => "cycles",
            2 => "wall",
            _ => "?",
        };
        emit(&format!(
            "| {} | {} | {} | {} | {} | {} |",
            domain,
            t.name.as_deref().unwrap_or("(unnamed)"),
            t.ends,
            t.instants,
            t.max_depth,
            t.last_ts,
        ));
    }
    emit("");

    // Attribution: summed span durations per name, per clock domain.
    // Nested spans (walk stages inside `walk`) count toward both their
    // own row and the enclosing span's, like any flame graph.
    for (pid, title, unit) in [
        (1, "Cycle attribution (simulated)", "cycles"),
        (2, "Wall-time attribution (infrastructure)", "us"),
    ] {
        let rows: Vec<_> = summary.spans.iter().filter(|a| a.pid == pid).collect();
        if rows.is_empty() {
            continue;
        }
        let longest: u64 = rows.iter().map(|a| a.total_duration).max().unwrap_or(0);
        emit(&format!("### {title}\n"));
        emit(&format!("| span | count | total ({unit}) | share |"));
        emit("|:-----|------:|-------------:|------:|");
        for a in &rows {
            emit(&format!(
                "| {} | {} | {} | {:.1}% |",
                a.name,
                a.count,
                a.total_duration,
                if longest == 0 {
                    0.0
                } else {
                    a.total_duration as f64 / longest as f64 * 100.0
                },
            ));
        }
        emit("");
    }

    let repartitions = summary.instant_count(1, "repartition");
    let switches = summary.instant_count(1, "context_switch");
    let stalls = summary.instant_count(2, "ring_stall");
    emit(&format!(
        "instants: {repartitions} repartitions, {switches} context switches, \
         {stalls} ring stalls\n"
    ));

    let mut failed = false;
    if check && !summary.is_valid() {
        eprintln!(
            "trace check FAILED: {} structural violations",
            summary.errors.len()
        );
        failed = true;
    }
    if let Some(expected) = expect_repartitions {
        if repartitions < expected {
            eprintln!(
                "trace check FAILED: {repartitions} repartition instants, expected >= {expected}"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// One parsed line of `BENCH_history.jsonl` (see `csalt_bench`'s
/// writer). Lines that fail to parse — e.g. older schema vintages —
/// are skipped with a warning, never fatal.
#[derive(Debug, serde::Deserialize)]
struct HistoryLine {
    bench: String,
    metric: String,
    value: f64,
    better: String,
    git_rev: String,
    dirty: bool,
    timestamp: u64,
}

/// Compares the latest history entry per `(bench, metric)` against the
/// previous clean-tree entry and reports deltas; regressions beyond
/// `warn_pct` warn (exit 0) unless `strict`.
fn bench_diff(path: &PathBuf, warn_pct: f64, strict: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            // No history yet is a state, not a failure — first sessions
            // must be able to run the gate before anything is recorded.
            println!(
                "bench-diff: no history at {} ({e}); nothing to compare",
                path.display()
            );
            return;
        }
    };
    // (bench, metric) -> lines in file order; linear scan, few metrics.
    let mut series: Vec<((String, String), Vec<HistoryLine>)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<HistoryLine>(raw) {
            Ok(line) => {
                if line.bench == "session" {
                    continue;
                }
                let key = (line.bench.clone(), line.metric.clone());
                match series.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push(line),
                    None => series.push((key, vec![line])),
                }
            }
            Err(e) => eprintln!("bench-diff: skipping line {}: {e}", i + 1),
        }
    }
    if series.is_empty() {
        println!(
            "bench-diff: {} has no metric lines; nothing to compare",
            path.display()
        );
        return;
    }

    emit(&format!("## Bench trajectory: {}\n", path.display()));
    emit("| bench | metric | previous | latest | delta | verdict |");
    emit("|:------|:-------|---------:|-------:|------:|:--------|");
    let mut regressions = 0u32;
    for ((bench, metric), lines) in &series {
        let latest = lines.last().expect("series are non-empty");
        // Baseline: the most recent *clean-tree* entry from an earlier
        // timestamp (dirty numbers never become the floor).
        let baseline = lines
            .iter()
            .rev()
            .skip(1)
            .find(|l| !l.dirty && l.timestamp <= latest.timestamp);
        let Some(base) = baseline else {
            emit(&format!(
                "| {bench} | {metric} | - | {} | - | first clean sample |",
                latest.value,
            ));
            continue;
        };
        let delta_pct = if base.value == 0.0 {
            0.0
        } else {
            (latest.value - base.value) / base.value * 100.0
        };
        // `better: lower` metrics (elapsed seconds) regress upward.
        let signed = if latest.better == "lower" {
            -delta_pct
        } else {
            delta_pct
        };
        let regressed = signed < -warn_pct;
        if regressed {
            regressions += 1;
        }
        // The delta column shows the direction-adjusted sign, so "+"
        // always reads as improvement regardless of the metric's
        // `better` direction; shortest-round-trip value display keeps
        // sub-second timings legible.
        emit(&format!(
            "| {bench} | {metric} | {} | {} | {signed:+.1}% | {} |",
            base.value,
            latest.value,
            if regressed {
                format!("REGRESSION vs {}", base.git_rev)
            } else {
                format!("ok vs {}", base.git_rev)
            },
        ));
    }
    emit("");
    if regressions > 0 {
        eprintln!(
            "bench-diff: {regressions} metrics regressed more than {warn_pct:.0}% \
             against the previous clean session{}",
            if strict { "" } else { " (warn-only)" },
        );
        if strict {
            std::process::exit(1);
        }
    } else {
        println!("bench-diff: no regressions past {warn_pct:.0}%");
    }
}

fn parse_f64_or_die(text: &str, flag: &str) -> f64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: '{text}' is not a number");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--telemetry") {
        let Some(path) = args.get(1).map(PathBuf::from) else {
            eprintln!("usage: csalt-report --telemetry <file> [--check]");
            std::process::exit(2);
        };
        let check = args.iter().any(|a| a == "--check");
        telemetry_report(&path, check);
        return;
    }
    if args.first().is_some_and(|a| a == "trace") {
        let Some(path) = args.get(1).map(PathBuf::from) else {
            eprintln!(
                "usage: csalt-report trace <file.json> [--check] [--expect-repartitions <N>]"
            );
            std::process::exit(2);
        };
        let check = args.iter().any(|a| a == "--check");
        let expect = args
            .iter()
            .position(|a| a == "--expect-repartitions")
            .map(|i| {
                args.get(i + 1)
                    .map(|v| {
                        v.parse().unwrap_or_else(|_| {
                            eprintln!("--expect-repartitions: '{v}' is not an integer");
                            std::process::exit(2);
                        })
                    })
                    .unwrap_or_else(|| {
                        eprintln!("--expect-repartitions needs a value");
                        std::process::exit(2);
                    })
            });
        trace_report(&path, check, expect);
        return;
    }
    if args.first().is_some_and(|a| a == "bench-diff") {
        let mut path = PathBuf::from("BENCH_history.jsonl");
        let mut warn_pct = 10.0;
        let mut strict = false;
        let mut it = args.iter().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--history" => {
                    path = it.next().map(PathBuf::from).unwrap_or_else(|| {
                        eprintln!("--history needs a value");
                        std::process::exit(2);
                    });
                }
                "--warn-threshold" => {
                    let v = it.next().map(String::as_str).unwrap_or_else(|| {
                        eprintln!("--warn-threshold needs a value");
                        std::process::exit(2);
                    });
                    warn_pct = parse_f64_or_die(v, "--warn-threshold");
                }
                "--strict" => strict = true,
                other => {
                    eprintln!("bench-diff: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        bench_diff(&path, warn_pct, strict);
        return;
    }
    let dir: PathBuf = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/csalt-results"));
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name().is_some_and(|n| n != "main_comparison.json")
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e} — run the benches first", dir.display());
            std::process::exit(1);
        }
    };
    entries.sort();
    for path in entries {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        match serde_json::from_slice::<Table>(&bytes) {
            Ok(table) => {
                emit(&format!("### {}\n", table.id));
                emit(&table.render_markdown());
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
}
