//! The multi-core, trace-driven simulator: cores, VM contexts, the
//! context-switch scheduler and the cycle model (§4.2 of the paper).
//!
//! # Model
//!
//! The machine runs `contexts_per_core` VMs; each VM executes one
//! multi-threaded workload with one thread per core (the paper's `x8`
//! suffix). All threads of a VM share one guest address space (one
//! ASID); each thread has its own trace generator seeded per
//! (VM, core). Every core round-robins between the VMs' threads with a
//! fixed cycle quantum — the 10 ms context-switch interval of §4.2,
//! scaled together with the workload footprint.
//!
//! # Cycle accounting
//!
//! Per retired instruction the core charges `base_cpi`. A memory
//! access additionally charges its **translation** cycles in full — a
//! TLB miss blocks the pipeline, the property the paper's simulator is
//! careful to model — and its **data** stall cycles beyond the L1 hit
//! latency divided by the configured memory-level parallelism (data
//! misses overlap through MSHRs; translations do not).

use crate::fastforward::{functional_phase, FunctionalSchedule};
use csalt_core::{
    AccessCharge, BlockAccess, HierarchySnapshot, MemoryHierarchy, PartitionSample, StageSample,
};
use csalt_pipeline::{
    PipelineProgress, PipelineStats, Reservation, StagedAccess, StagedStreams, ThreadBudget,
};
use csalt_ptw::HugePagePolicy;
use csalt_types::{
    geomean, Asid, ContextId, CoreId, Cycle, MemAccess, SystemConfig, TranslationScheme,
};
use csalt_workloads::{AnyGenerator, TraceGenerator, WorkloadSpec};
use serde::{Deserialize, Serialize};

#[cfg(feature = "telemetry")]
use csalt_telemetry::{
    EpochRecord, HistogramRecord, Log2Histogram, ProvenanceRecord, Recorder, TelemetryRecord,
    WalkStage, WalkTraceRecord, FORMAT_VERSION,
};
#[cfg(feature = "telemetry")]
use csalt_trace::{ArgValue, Domain, TraceBuffer, TraceSink};

/// Everything one simulation run needs.
///
/// Round-trips through JSON: experiment provenance (the first record of
/// every telemetry stream) can be re-parsed to reproduce a run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The machine (Table 2 plus scaled epoch / quantum).
    pub system: SystemConfig,
    /// Translation scheme under test.
    pub scheme: TranslationScheme,
    /// Virtualized (2D walks) or native (1D walks, Figure 12).
    pub virtualized: bool,
    /// The workload pairing.
    pub workload: WorkloadSpec,
    /// Program memory accesses simulated per core in the measured phase.
    pub accesses_per_core: u64,
    /// Warmup accesses per core executed before statistics are reset —
    /// the measured phase then observes steady-state behaviour instead
    /// of compulsory cold misses (the paper's 10-billion-instruction
    /// runs are overwhelmingly steady state).
    pub warmup_accesses_per_core: u64,
    /// Workload footprint scale (1.0 = the generators' defaults).
    pub scale: f64,
    /// Fraction of 2 MiB-backed regions (0 = all 4 KiB pages).
    pub huge_fraction: f64,
    /// RNG seed; distinct VMs/threads derive distinct sub-seeds.
    pub seed: u64,
    /// Stack-distance shadow-directory sampling interval.
    pub profiler_interval: u64,
    /// Record per-epoch partition samples (Figure 9).
    pub trace_partitions: bool,
    /// Scan cache occupancy every this many per-core accesses
    /// (0 = never; Figure 3 / 9 use it).
    pub occupancy_scan_interval: u64,
    /// Fixed software cost charged to a core at each context switch.
    pub switch_overhead_cycles: Cycle,
    /// How the warmup phase executes: full timing simulation, or the
    /// functional (state-only) fast path. State after either is a
    /// fully populated hierarchy; only cycle-dependent schemes
    /// (criticality-weighted replacement) can land differently.
    pub warmup_mode: WarmupMode,
    /// SMARTS-style sampling: number of timed measurement windows to
    /// spread over the run (0 = classic single-window measurement).
    /// The stream between windows is fast-forwarded functionally and
    /// never reaches the reported counters.
    pub sample_windows: u64,
    /// Timed accesses per core in each sampled window. Must be nonzero
    /// iff `sample_windows` is, with `sample_windows *
    /// window_accesses <= accesses_per_core`.
    pub window_accesses: u64,
}

impl SimConfig {
    /// A ready-to-run configuration for one workload and scheme with the
    /// experiment harness's scaled defaults (see `experiments`).
    pub fn new(workload: WorkloadSpec, scheme: TranslationScheme) -> Self {
        Self {
            system: SystemConfig::skylake(),
            scheme,
            virtualized: true,
            workload,
            accesses_per_core: 300_000,
            warmup_accesses_per_core: 300_000,
            scale: 1.0,
            huge_fraction: 0.0,
            seed: 0xC5A1_7000,
            profiler_interval: 4,
            trace_partitions: false,
            occupancy_scan_interval: 0,
            switch_overhead_cycles: 2_000,
            warmup_mode: WarmupMode::Timed,
            sample_windows: 0,
            window_accesses: 0,
        }
    }
}

/// Which execution path the warmup phase takes (`--warmup-mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmupMode {
    /// Full timing simulation during warmup (the historical default).
    /// Cycle counters are discarded afterwards either way, so timed
    /// warmup buys exact state for cycle-dependent schemes at full
    /// simulation cost.
    Timed,
    /// State-only fast-forward: fills, replacement stamps and radix
    /// tables advance, cycles and DRAM are never modelled. For
    /// timing-independent configurations this lands bit-identical
    /// steady state at a fraction of the cost; the
    /// criticality-weighted schemes (`csalt-cd`, `tsb-csalt`) warm up
    /// with unit replacement weights instead of cycle-derived ones.
    Functional,
}

impl WarmupMode {
    /// Parses a CLI/env spelling (`timed` | `functional`, any case).
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "timed" => Some(WarmupMode::Timed),
            "functional" => Some(WarmupMode::Functional),
            _ => None,
        }
    }

    /// The CLI spelling (`timed` / `functional`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WarmupMode::Timed => "timed",
            WarmupMode::Functional => "functional",
        }
    }
}

/// One periodic occupancy observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancySample {
    /// Fraction of the run completed when the scan happened.
    pub progress: f64,
    /// Fraction of (all cores') L2 capacity holding TLB entries.
    pub l2_tlb_fraction: f64,
    /// Fraction of L3 capacity holding TLB entries.
    pub l3_tlb_fraction: f64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Workload label.
    pub workload: String,
    /// Scheme simulated.
    pub scheme: TranslationScheme,
    /// Instructions retired, summed over cores.
    pub instructions: u64,
    /// Per-core cycle counts.
    pub core_cycles: Vec<Cycle>,
    /// Per-core IPC.
    pub core_ipc: Vec<f64>,
    /// Component counters at the end of the run.
    pub snapshot: HierarchySnapshot,
    /// Periodic occupancy scans (empty unless requested).
    pub occupancy: Vec<OccupancySample>,
    /// Partition samples for (first core's L2, shared L3); empty unless
    /// requested.
    pub l2_partition_trace: Vec<(u64, f64)>,
    /// See [`SimResult::l2_partition_trace`].
    pub l3_partition_trace: Vec<(u64, f64)>,
    /// Context switches performed across all cores.
    pub context_switches: u64,
    /// Final (L2 core 0, L3) data-way partitions, if partitioned.
    pub final_partitions: (Option<u32>, Option<u32>),
}

impl SimResult {
    /// Geometric-mean IPC across cores — the paper's per-configuration
    /// performance figure (§4.2).
    pub fn ipc(&self) -> f64 {
        geomean(self.core_ipc.iter().copied()).unwrap_or(0.0)
    }

    /// Aggregate L2 TLB misses per kilo-instruction.
    pub fn l2_tlb_mpki(&self) -> f64 {
        self.snapshot.l2_tlb.mpki(self.instructions)
    }

    /// Aggregate L2 data-cache misses per kilo-instruction.
    pub fn l2_cache_mpki(&self) -> f64 {
        let t = self.snapshot.l2.total();
        t.mpki(self.instructions)
    }

    /// Aggregate L3 misses per kilo-instruction.
    pub fn l3_cache_mpki(&self) -> f64 {
        let t = self.snapshot.l3.total();
        t.mpki(self.instructions)
    }

    /// Mean TLB occupancy over the recorded scans: (L2, L3).
    pub fn mean_occupancy(&self) -> (f64, f64) {
        if self.occupancy.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.occupancy.len() as f64;
        (
            self.occupancy
                .iter()
                .map(|s| s.l2_tlb_fraction)
                .sum::<f64>()
                / n,
            self.occupancy
                .iter()
                .map(|s| s.l3_tlb_fraction)
                .sum::<f64>()
                / n,
        )
    }
}

pub(crate) struct CoreState {
    pub(crate) cycles: Cycle,
    pub(crate) instructions: u64,
    pub(crate) accesses_done: u64,
    pub(crate) current_vm: u32,
    pub(crate) next_switch: Cycle,
    pub(crate) switches: u64,
}

/// Observation points of the measured phase. The engine is monomorphized
/// over the implementation: [`run`] passes [`NoHooks`], whose no-op
/// defaults inline away entirely, so the uninstrumented path pays
/// nothing for the existence of telemetry.
trait PhaseHooks {
    /// Whether the access with this measured-phase ordinal should run
    /// through [`MemoryHierarchy::access_traced`].
    fn wants_trace(&mut self, _index: u64) -> bool {
        false
    }
    /// Called once per retired access with its cycle charges.
    fn on_access(&mut self, _charge: &AccessCharge) {}
    /// Called for accesses selected by [`PhaseHooks::wants_trace`] with
    /// the full per-stage attribution. `at_cycles` is the issuing core's
    /// cycle count when the access was issued.
    #[allow(clippy::too_many_arguments)]
    fn on_traced(
        &mut self,
        _index: u64,
        _core: usize,
        _ctx: ContextId,
        _acc: &MemAccess,
        _charge: &AccessCharge,
        _stages: Vec<StageSample>,
        _at_cycles: Cycle,
    ) {
    }
    /// Called when a core's quantum expires and it switches VMs, with
    /// the core's cycle count after the switch overhead was charged.
    fn on_context_switch(&mut self, _core: usize, _from_vm: u32, _to_vm: u32, _at_cycles: Cycle) {}
    /// Called after every round-robin sweep over the cores with the
    /// phase's cumulative access count, target, and (when the pipelined
    /// source is running) a live pipeline-progress snapshot.
    fn after_sweep(
        &mut self,
        _hier: &MemoryHierarchy,
        _cores: &[CoreState],
        _total: u64,
        _target: u64,
        _progress: Option<PipelineProgress>,
    ) {
    }
}

/// The zero-cost hook set used by the plain [`run`] path.
struct NoHooks;
impl PhaseHooks for NoHooks {}

/// Where the commit stage gets its next access for a `(core, VM)`
/// generator stream. The engine is monomorphized over the
/// implementation, mirroring [`PhaseHooks`]: the inline source compiles
/// to exactly the pre-pipeline per-access code, so the default path
/// pays nothing for the pipelined mode's existence.
pub(crate) trait AccessSource {
    /// The next access of `(core, vm)`'s stream, with its pure
    /// precomputation (packed TLB keys) done.
    fn next(&mut self, core: usize, vm: usize) -> StagedAccess;

    /// A live progress snapshot, when this source has one (the
    /// pipelined source exposes its ring counters; the inline source
    /// has nothing to report).
    fn progress(&self) -> Option<PipelineProgress> {
        None
    }

    /// Advances `(core, vm)`'s stream by `n` accesses without
    /// committing them. Checkpoint restore uses this to fast-forward
    /// every stream past the warmup prefix a restored hierarchy
    /// already consumed, keeping the measured phase's records
    /// bit-identical to a straight-through run. The default pops and
    /// discards (generators regenerate the prefix deterministically);
    /// sources with a random-access cursor override with an O(1) seek.
    fn skip(&mut self, core: usize, vm: usize, n: u64) {
        for _ in 0..n {
            let _ = self.next(core, vm);
        }
    }
}

/// Wraps a source during a cold checkpointed warmup to count how many
/// records each `(vm, core)` stream yielded — exactly what a restore
/// must later [`AccessSource::skip`] to resume the streams where the
/// snapshot left them.
struct CountingSource<'a, S: AccessSource> {
    inner: &'a mut S,
    /// Pop counts, `[vm][core]`.
    pops: Vec<Vec<u64>>,
}

impl<S: AccessSource> AccessSource for CountingSource<'_, S> {
    #[inline]
    fn next(&mut self, core: usize, vm: usize) -> StagedAccess {
        self.pops[vm][core] += 1;
        self.inner.next(core, vm)
    }

    fn progress(&self) -> Option<PipelineProgress> {
        self.inner.progress()
    }
}

/// Single-threaded source: drives the generators at commit time, on the
/// commit thread (the classic execution mode).
struct InlineSource {
    /// Generator matrix, `[vm][core]`.
    threads: Vec<Vec<AnyGenerator>>,
    /// ASID per VM (what the hierarchy will assign; see [`vm_asids`]).
    asids: Vec<Asid>,
}

impl AccessSource for InlineSource {
    #[inline]
    fn next(&mut self, core: usize, vm: usize) -> StagedAccess {
        StagedAccess::stage(self.threads[vm][core].next_access(), self.asids[vm])
    }
}

/// Pipelined source: pops records that producer threads staged ahead of
/// time (see `csalt-pipeline`). Holds the thread-budget reservation for
/// its producers for the lifetime of the run.
struct PipelinedSource {
    streams: StagedStreams,
    _reserved: Reservation<'static>,
}

impl AccessSource for PipelinedSource {
    #[inline]
    fn next(&mut self, core: usize, vm: usize) -> StagedAccess {
        self.streams.next(core, vm)
    }

    fn progress(&self) -> Option<PipelineProgress> {
        Some(self.streams.progress())
    }
}

/// Zero-repack replay source: pops prepacked records straight out of
/// staged (v2) traces. The fixed-width trace record *is* the staged
/// payload, so `next` is a copy — no key packing, no generator math.
struct StagedReplaySource {
    /// Trace matrix, `[vm][core]`, every trace staged for its VM's ASID.
    threads: Vec<Vec<csalt_workloads::TraceFile>>,
}

impl AccessSource for StagedReplaySource {
    #[inline]
    fn next(&mut self, core: usize, vm: usize) -> StagedAccess {
        let (acc, hint) = self.threads[vm][core].next_staged();
        StagedAccess { acc, hint }
    }

    fn skip(&mut self, core: usize, vm: usize, n: u64) {
        self.threads[vm][core].skip(n);
    }
}

/// How the caller asked the engine to execute (the `CSALT_PIPELINE`
/// env var / `--pipeline` CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineRequest {
    /// Classic single-threaded execution (the default).
    Off,
    /// Pipeline if it plausibly helps: falls back to inline when the
    /// host has no spare parallelism (budgeted against sweep workers —
    /// no oversubscription) or the workload replays a recorded trace.
    Auto,
    /// Pipeline with at least one producer even on a saturated host
    /// (CI determinism gates use this so the pipelined commit path is
    /// genuinely exercised on small machines). Trace-replay workloads
    /// still fall back: there is no generation work to overlap.
    Force,
}

impl PipelineRequest {
    /// Parses a `CSALT_PIPELINE` value. Unset/empty/`0`/`off`/`false`
    /// mean [`PipelineRequest::Off`]; `force` forces; anything truthy
    /// (`1`, `on`, `true`, `auto`) is [`PipelineRequest::Auto`].
    #[must_use]
    pub fn parse(value: Option<&str>) -> Self {
        match value.map(str::to_ascii_lowercase).as_deref() {
            None | Some("" | "0" | "off" | "false" | "inline") => PipelineRequest::Off,
            Some("force") => PipelineRequest::Force,
            Some(_) => PipelineRequest::Auto,
        }
    }

    /// The request selected by the `CSALT_PIPELINE` environment
    /// variable.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::var("CSALT_PIPELINE").ok().as_deref())
    }
}

/// Whether the L0 hit-way memos run (the `CSALT_L0` env var). The memo
/// is a pure scan-skip — both settings are bit-identical on every
/// simulated counter — so it defaults on; the switch exists for the
/// determinism gates and the bench's ablation row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L0Request {
    /// Disable the memos: every lookup scans its set.
    Off,
    /// Run with the memos in front of the set scans (the default).
    On,
}

impl L0Request {
    /// Parses a `CSALT_L0` value. `0`/`off`/`false` (any case) disable;
    /// everything else — including unset — enables.
    #[must_use]
    pub fn parse(value: Option<&str>) -> Self {
        match value.map(str::to_ascii_lowercase).as_deref() {
            Some("0" | "off" | "false") => L0Request::Off,
            _ => L0Request::On,
        }
    }

    /// The request selected by the `CSALT_L0` environment variable.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::var("CSALT_L0").ok().as_deref())
    }

    /// Whether the memos should be enabled.
    #[must_use]
    pub fn enabled(self) -> bool {
        self == L0Request::On
    }
}

/// Builds the per-(VM, core) generator matrix (`[vm][core]`) a run of
/// `cfg` executes: one hierarchy context per VM, one seeded generator
/// per (VM, core) — the VM's per-core thread. Public so callers can
/// substitute recorded-trace generators (`AnyGenerator::Trace`) via
/// [`run_with_generators`].
#[must_use]
pub fn build_threads(cfg: &SimConfig) -> Vec<Vec<AnyGenerator>> {
    let cores = cfg.system.cores as usize;
    (0..cfg.system.contexts_per_core)
        .map(|vm| {
            (0..cores)
                .map(|core| {
                    let bench = cfg.workload.context_bench(vm);
                    let seed = cfg
                        .seed
                        .wrapping_add(u64::from(vm) * 0x9e37_79b9)
                        .wrapping_add(core as u64 * 0x85eb_ca6b);
                    bench.build_generator(seed, cfg.scale)
                })
                .collect()
        })
        .collect()
}

/// The ASID each VM's accesses translate under. Contexts are registered
/// with the hierarchy in VM order and ASIDs are assigned sequentially
/// from 1 (`MemoryHierarchy::asid_of`); `simulate` debug-asserts the
/// two agree, so staged records always carry the keys the commit
/// stage's lookups expect.
fn vm_asids(vms: u32) -> Vec<Asid> {
    (0..vms).map(|vm| Asid::new(vm as u16 + 1)).collect()
}

/// Execution plan for one run, decided before any thread is spawned.
enum ExecPlan {
    Inline,
    /// Every generator is a staged (v2) trace replay: pop prepacked
    /// records directly, no packing and no producer threads.
    StagedReplay,
    /// Producer thread count plus the budget reservation backing it.
    Pipelined(usize, Reservation<'static>),
}

/// Decides inline vs pipelined for one run. See [`PipelineRequest`] for
/// the fallback rules; producer threads are reserved from the workspace
/// [`ThreadBudget`] so a sweep's workers and this run's producers never
/// add up past the host's parallelism (unless forced).
fn plan_execution(
    cfg: &SimConfig,
    threads: &[Vec<AnyGenerator>],
    req: PipelineRequest,
) -> ExecPlan {
    // A matrix of staged (v2) traces replays prepacked records directly
    // regardless of the pipeline request: the records already are the
    // staged payload, so there is nothing for producers to do and the
    // single-threaded pop is the fastest path. Bit-identical to inline.
    let asids = vm_asids(cfg.system.contexts_per_core);
    if threads
        .iter()
        .enumerate()
        .all(|(vm, row)| !row.is_empty() && row.iter().all(|g| g.is_staged_replay(asids[vm])))
    {
        return ExecPlan::StagedReplay;
    }
    if req == PipelineRequest::Off {
        return ExecPlan::Inline;
    }
    // Replay workloads stream records out of memory; there is no
    // generation work worth moving to another thread.
    if threads.iter().flatten().any(AnyGenerator::is_replay) {
        return ExecPlan::Inline;
    }
    let budget = ThreadBudget::global();
    let cores = cfg.system.cores as usize;
    // Leave one hardware thread for the commit stage itself.
    let want = cores.min(budget.capacity().saturating_sub(1)).max(1);
    let reserved = match req {
        PipelineRequest::Auto => {
            if budget.capacity() < 2 {
                return ExecPlan::Inline;
            }
            let r = budget.reserve(want);
            if r.granted() == 0 {
                return ExecPlan::Inline;
            }
            r
        }
        _ => budget.reserve_at_least(want, 1),
    };
    let producers = reserved.granted();
    ExecPlan::Pipelined(producers, reserved)
}

/// Shared dispatch behind every public entry point: plans the execution
/// mode, builds the matching [`AccessSource`], runs the engine, and
/// returns the pipeline telemetry when the pipelined path ran.
fn execute<H: PhaseHooks>(
    cfg: &SimConfig,
    mut threads: Vec<Vec<AnyGenerator>>,
    req: PipelineRequest,
    hooks: &mut H,
) -> (SimResult, Option<PipelineStats>) {
    // Staged traces recorded under a different ASID get their packed
    // keys recomputed once, up front, so replay stays zero-repack per
    // access no matter which ASID the trace was recorded for.
    let asids = vm_asids(cfg.system.contexts_per_core);
    for (vm, row) in threads.iter_mut().enumerate() {
        for g in row.iter_mut() {
            if let Some(t) = g.as_trace_mut() {
                if t.is_staged() {
                    t.restage(asids[vm]);
                }
            }
        }
    }
    match plan_execution(cfg, &threads, req) {
        ExecPlan::Inline => {
            let mut source = InlineSource {
                asids: vm_asids(cfg.system.contexts_per_core),
                threads,
            };
            (simulate(cfg, hooks, &mut source), None)
        }
        ExecPlan::StagedReplay => {
            let trace_threads = threads
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|g| match g {
                            AnyGenerator::Trace(t) => t,
                            _ => unreachable!("plan checked every generator is a staged trace"),
                        })
                        .collect()
                })
                .collect();
            let mut source = StagedReplaySource {
                threads: trace_threads,
            };
            (simulate(cfg, hooks, &mut source), None)
        }
        ExecPlan::Pipelined(producers, reserved) => {
            let asids = vm_asids(cfg.system.contexts_per_core);
            let mut source = PipelinedSource {
                streams: StagedStreams::spawn(
                    threads,
                    &asids,
                    producers,
                    csalt_pipeline::source::DEFAULT_RING_CAPACITY,
                ),
                _reserved: reserved,
            };
            let result = simulate(cfg, hooks, &mut source);
            let stats = source.streams.finish();
            (result, Some(stats))
        }
    }
}

/// Panics with every diagnostic if any is error-severity. Warnings are
/// swallowed: the run is still meaningful, and the static sweep reports
/// them separately.
#[cfg(feature = "audit")]
fn enforce_audit(context: &str, diags: &[csalt_audit::Diagnostic]) {
    use csalt_types::Severity;
    if diags.iter().any(|d| d.severity == Severity::Error) {
        let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
        panic!(
            "conservation-law audit failed at {context}:\n{}",
            rendered.join("\n")
        );
    }
}

/// Runs one configuration to completion, in the execution mode selected
/// by the `CSALT_PIPELINE` environment variable (inline when unset; see
/// [`PipelineRequest`]). Both modes produce bit-identical results.
///
/// # Panics
///
/// Panics if the configuration is invalid (zero cores, bad geometry…).
pub fn run(cfg: &SimConfig) -> SimResult {
    run_with_stats(cfg).0
}

/// [`run`] plus the pipeline telemetry of the run (`None` when the
/// inline path executed).
///
/// # Panics
///
/// Panics if the configuration is invalid (zero cores, bad geometry…).
pub fn run_with_stats(cfg: &SimConfig) -> (SimResult, Option<PipelineStats>) {
    execute(
        cfg,
        build_threads(cfg),
        PipelineRequest::from_env(),
        &mut NoHooks,
    )
}

/// Runs one configuration strictly single-threaded, ignoring
/// `CSALT_PIPELINE` — the reference the pipelined mode is bit-compared
/// against (and the measurement baseline of the throughput bench).
///
/// # Panics
///
/// Panics if the configuration is invalid (zero cores, bad geometry…).
pub fn run_inline(cfg: &SimConfig) -> SimResult {
    execute(cfg, build_threads(cfg), PipelineRequest::Off, &mut NoHooks).0
}

/// Runs one configuration in the pipelined mode regardless of host
/// parallelism ([`PipelineRequest::Force`] semantics: at least one
/// producer thread, even on a saturated budget).
///
/// # Panics
///
/// Panics if the configuration is invalid (zero cores, bad geometry…).
pub fn run_pipelined(cfg: &SimConfig) -> (SimResult, PipelineStats) {
    let (result, stats) = execute(
        cfg,
        build_threads(cfg),
        PipelineRequest::Force,
        &mut NoHooks,
    );
    let stats = stats.expect("forced pipeline always runs pipelined for generated workloads");
    (result, stats)
}

/// Runs one configuration over caller-supplied generators instead of
/// the ones `cfg.workload` would build — the entry point for recorded-
/// trace replay (`AnyGenerator::Trace`). `threads[vm][core]` must match
/// the config's VM and core counts. Honours `CSALT_PIPELINE`, except
/// that workloads containing a replay generator always run inline.
///
/// # Panics
///
/// Panics if the configuration is invalid or the generator matrix does
/// not match its shape.
pub fn run_with_generators(cfg: &SimConfig, threads: Vec<Vec<AnyGenerator>>) -> SimResult {
    assert_eq!(
        threads.len(),
        cfg.system.contexts_per_core as usize,
        "one generator row per VM context"
    );
    assert!(
        threads
            .iter()
            .all(|row| row.len() == cfg.system.cores as usize),
        "one generator per core in every VM row"
    );
    execute(cfg, threads, PipelineRequest::from_env(), &mut NoHooks).0
}

/// One timed scheduling phase: run every core up to `total_per_core`
/// *cumulative* accesses with full cycle accounting. `hooks` is `None`
/// during warmup (warmup is never observed) and `Some` during the
/// measured phase.
///
/// Targets are cumulative against `CoreState::accesses_done` so
/// sampled-window runs can re-enter the phase window after window with
/// the prior windows' progress still on the cores; a fresh phase
/// (counters at zero) behaves exactly like the historical
/// single-window code.
#[allow(clippy::too_many_arguments)]
fn timed_phase<H: PhaseHooks, S: AccessSource>(
    cfg: &SimConfig,
    vm_ctx: &[ContextId],
    source: &mut S,
    hier: &mut MemoryHierarchy,
    cores_state: &mut [CoreState],
    mut occupancy: Option<&mut Vec<OccupancySample>>,
    total_per_core: u64,
    mut hooks: Option<&mut H>,
) {
    if total_per_core == 0 {
        return;
    }
    let system = &cfg.system;
    let cores = cores_state.len();
    let vms = system.contexts_per_core;
    let quantum = system.cs_interval_cycles;
    let scan_every = cfg.occupancy_scan_interval;
    let target_total = total_per_core * cores as u64;
    let mut total_done: u64 = cores_state.iter().map(|c| c.accesses_done).sum();
    let mut next_scan = match cores_state[0].accesses_done.checked_div(scan_every) {
        Some(intervals) => (intervals + 1) * scan_every,
        None => u64::MAX,
    };
    // With the `audit` feature, verify the conservation laws every
    // time the phase's total access count crosses an epoch boundary —
    // the moment the partitioner has just acted on those counters.
    // Counters reset between phases, so the threshold is per-phase.
    #[cfg(feature = "audit")]
    let mut next_audit_at = total_done + system.epoch_accesses.max(1);
    let mut remaining = cores_state
        .iter()
        .filter(|c| c.accesses_done < total_per_core)
        .count();
    // Sweep scratch, reused so the hot loop never allocates: the
    // gathered block, its `(core, vm, traced)` metadata, and the
    // commit charges.
    let mut block: Vec<BlockAccess> = Vec::with_capacity(cores);
    let mut block_meta: Vec<(usize, usize, bool)> = Vec::with_capacity(cores);
    let mut charges: Vec<AccessCharge> = Vec::with_capacity(cores);
    while remaining > 0 {
        // Gather: run every active core's scheduling step (quantum
        // check, stream pop) and stage the sweep's accesses as one
        // block. Each core's schedule reads only its own state, which
        // this sweep's commits have not touched yet, so deciding all
        // switches before any commit sees exactly the values the
        // historical interleaved loop saw.
        block.clear();
        block_meta.clear();
        for (core, state) in cores_state.iter_mut().enumerate() {
            if state.accesses_done >= total_per_core {
                continue;
            }

            // Context switch when the quantum expires.
            if vms > 1 && state.cycles >= state.next_switch {
                let from_vm = state.current_vm;
                state.current_vm = (state.current_vm + 1) % vms;
                state.cycles += cfg.switch_overhead_cycles;
                state.next_switch = state.cycles + quantum;
                state.switches += 1;
                if let Some(h) = hooks.as_deref_mut() {
                    h.on_context_switch(core, from_vm, state.current_vm, state.cycles);
                }
                // The memoized hit-ways belong to the outgoing VM's
                // working set; drop them. Stats-only — the memo never
                // holds simulated state.
                hier.l0_note_context_switch(core);
            }

            let vm = state.current_vm as usize;
            let staged = source.next(core, vm);
            let traced = hooks
                .as_deref_mut()
                .is_some_and(|h| h.wants_trace(total_done + block.len() as u64));
            block.push(BlockAccess {
                core: CoreId::new(core as u8),
                ctx: vm_ctx[vm],
                acc: staged.acc,
                hint: staged.hint,
            });
            block_meta.push((core, vm, traced));
        }

        // Commit: contiguous untraced runs flow through the batched
        // entry point (one call per run); traced accesses commit
        // individually for their stage attribution. Hierarchy mutation
        // order is the gather order — the historical per-core order —
        // so results stay bit-identical.
        charges.clear();
        let mut i = 0;
        while i < block.len() {
            if block_meta[i].2 {
                let (core, vm, _) = block_meta[i];
                let b = block[i];
                let at_cycles = cores_state[core].cycles;
                let (charge, stages) = hier.access_traced(b.core, b.ctx, b.acc);
                if let Some(h) = hooks.as_deref_mut() {
                    h.on_traced(
                        total_done + i as u64,
                        core,
                        vm_ctx[vm],
                        &b.acc,
                        &charge,
                        stages,
                        at_cycles,
                    );
                }
                charges.push(charge);
                i += 1;
            } else {
                let start = i;
                while i < block.len() && !block_meta[i].2 {
                    i += 1;
                }
                hier.access_block_hinted(&block[start..i], &mut charges);
            }
        }

        // Retire: per-access cycle model and bookkeeping, in commit
        // order. Core cycle counters were untouched since gather, so
        // every access charges against exactly the state it would
        // have seen interleaved.
        for (k, &(core, _vm, _traced)) in block_meta.iter().enumerate() {
            let charge = &charges[k];
            if let Some(h) = hooks.as_deref_mut() {
                h.on_access(charge);
            }
            total_done += 1;

            // Cycle model: compute instructions + blocking
            // translation + overlapped data stalls.
            let acc = block[k].acc;
            let state = &mut cores_state[core];
            let compute = (acc.instructions() as f64 * system.base_cpi).ceil() as Cycle;
            let data_stall = charge.data_cycles.saturating_sub(system.l1d.latency);
            let overlapped = (data_stall as f64 / system.mlp).round() as Cycle;
            state.cycles += compute + charge.translation_cycles + overlapped;
            state.instructions += acc.instructions();
            state.accesses_done += 1;
            if state.accesses_done >= total_per_core {
                remaining -= 1;
            }
        }

        if let Some(h) = hooks.as_deref_mut() {
            h.after_sweep(
                hier,
                cores_state,
                total_done,
                target_total,
                source.progress(),
            );
        }

        #[cfg(feature = "audit")]
        {
            let total: u64 = cores_state.iter().map(|c| c.accesses_done).sum();
            if total >= next_audit_at {
                next_audit_at = total + system.epoch_accesses.max(1);
                let snap = hier.snapshot();
                enforce_audit(
                    &format!("epoch boundary ({total} accesses)"),
                    &csalt_audit::conservation::audit_snapshot("epoch", &snap, &cfg.scheme),
                );
                let (l2_occ, l3_occ) = hier.occupancy();
                enforce_audit(
                    "epoch occupancy",
                    &[
                        csalt_audit::conservation::audit_occupancy("l2", &l2_occ),
                        csalt_audit::conservation::audit_occupancy("l3", &l3_occ),
                    ]
                    .concat(),
                );
            }
        }

        // Periodic occupancy scan, keyed on core 0's progress.
        if cores_state[0].accesses_done >= next_scan {
            next_scan += scan_every;
            if let Some(occ) = occupancy.as_deref_mut() {
                let (l2, l3) = hier.occupancy();
                occ.push(OccupancySample {
                    progress: cores_state[0].accesses_done as f64 / total_per_core as f64,
                    l2_tlb_fraction: l2.tlb_fraction(),
                    l3_tlb_fraction: l3.tlb_fraction(),
                });
            }
        }
    }
}

/// One warmup pass in the config's warmup mode: timed (full cycle
/// accounting, counters discarded after) or functional (state-only
/// fast-forward). Factored out of [`simulate`] so the checkpointed
/// cold path can run it through a [`CountingSource`] wrapper.
fn warmup_phase<H: PhaseHooks, S: AccessSource>(
    cfg: &SimConfig,
    vm_ctx: &[ContextId],
    source: &mut S,
    hier: &mut MemoryHierarchy,
    cores_state: &mut [CoreState],
    sched: &FunctionalSchedule,
) {
    match cfg.warmup_mode {
        WarmupMode::Timed => timed_phase::<H, S>(
            cfg,
            vm_ctx,
            source,
            hier,
            cores_state,
            None,
            cfg.warmup_accesses_per_core,
            None,
        ),
        WarmupMode::Functional => functional_phase(
            hier,
            source,
            vm_ctx,
            cores_state,
            cfg.warmup_accesses_per_core,
            sched,
        ),
    }
}

/// The engine shared by [`run`] and the instrumented path, monomorphized
/// over the hook set and the access source (inline vs pipelined).
fn simulate<H: PhaseHooks, S: AccessSource>(
    cfg: &SimConfig,
    hooks: &mut H,
    source: &mut S,
) -> SimResult {
    let system = &cfg.system;
    system.validate().expect("system config must be valid");
    let cores = system.cores as usize;
    let vms = system.contexts_per_core;
    assert!(vms >= 1, "at least one context per core");

    let huge = HugePagePolicy {
        fraction_2m: cfg.huge_fraction,
    };
    let mut hier = MemoryHierarchy::new(
        system,
        cfg.scheme,
        cfg.virtualized,
        huge,
        cfg.profiler_interval,
    );
    // The L0 hit-way memos are on by default; `CSALT_L0=off` scans
    // every set instead. Both settings are bit-identical (the memo
    // replays the exact state mutations of the scan it skips), which
    // the determinism gates pin.
    hier.set_l0_memo(L0Request::from_env().enabled());
    if cfg.trace_partitions {
        hier.enable_partition_trace();
    }

    // One hierarchy context (address space) per VM; the generators (one
    // per (VM, core) — the VM's per-core thread) live behind `source`.
    let vm_ctx: Vec<ContextId> = (0..vms).map(|_| hier.add_context()).collect();
    // The staged records' packed keys assume this ASID assignment.
    debug_assert!(vm_ctx
        .iter()
        .zip(vm_asids(vms))
        .all(|(ctx, asid)| hier.asid_of(*ctx) == asid));

    let quantum = system.cs_interval_cycles;
    let mut cores_state: Vec<CoreState> = (0..cores)
        .map(|_| CoreState {
            cycles: 0,
            instructions: 0,
            accesses_done: 0,
            current_vm: 0,
            next_switch: quantum,
            switches: 0,
        })
        .collect();

    let mut occupancy = Vec::new();

    // The functional phases' context-switch schedule: the quantum's
    // instruction equivalent, so the state-only loop (which has no
    // cycle clock) churns ASIDs at the same stream cadence the timed
    // loop would.
    let sched = FunctionalSchedule {
        instr_per_switch: ((quantum as f64 / system.base_cpi).ceil() as u64).max(1),
    };

    // Warmup: populate page tables, TLBs, caches and the POM-TLB, then
    // discard the counters. Scheduling state (cycle counters, switch
    // phase) restarts cleanly for the measured phase; `current_vm`
    // carries over in both modes, so the measured phase resumes from
    // the schedule position warmup ended on.
    //
    // With checkpointing on (`CSALT_CKPT`, default on), the
    // post-warmup state is content-addressed by the config's
    // warmup-prefix key: the first run of a prefix simulates warmup
    // and snapshots `(hierarchy, per-core VM, per-stream pop counts)`;
    // every later run restores the snapshot, fast-forwards its access
    // streams past the recorded pop counts, and enters the measured
    // phase directly — bit-identical to the straight-through run,
    // which `tests/determinism.rs` pins.
    let ckpt_plan = crate::checkpoint::plan(cfg);
    crate::checkpoint::set_last_run_restored(false);
    let mut restored = false;
    if let Some(plan) = &ckpt_plan {
        match plan.try_restore(&mut hier, cores, vms as usize) {
            Ok(Some(meta)) => {
                // Freshly-initialized cores already equal the
                // post-warmup reset state; only the schedule position
                // (which VM each core was running) carries over.
                for (s, vm) in cores_state.iter_mut().zip(&meta.current_vms) {
                    s.current_vm = *vm;
                }
                for (vm, row) in meta.pops.iter().enumerate() {
                    for (core, &n) in row.iter().enumerate() {
                        if n > 0 {
                            source.skip(core, vm, n);
                        }
                    }
                }
                restored = true;
                crate::checkpoint::set_last_run_restored(true);
            }
            Ok(None) => {}
            Err(_) => {
                // A rejected image may have part-written the
                // hierarchy mid-decode; rebuild it and run cold (the
                // fallback counter already recorded the event).
                hier = MemoryHierarchy::new(
                    system,
                    cfg.scheme,
                    cfg.virtualized,
                    huge,
                    cfg.profiler_interval,
                );
                hier.set_l0_memo(L0Request::from_env().enabled());
                if cfg.trace_partitions {
                    hier.enable_partition_trace();
                }
                let rebuilt: Vec<ContextId> = (0..vms).map(|_| hier.add_context()).collect();
                debug_assert_eq!(rebuilt, vm_ctx);
            }
        }
    }
    if !restored {
        let pops = if ckpt_plan.is_some() {
            let mut counting = CountingSource {
                inner: source,
                pops: vec![vec![0; cores]; vms as usize],
            };
            warmup_phase::<H, _>(
                cfg,
                &vm_ctx,
                &mut counting,
                &mut hier,
                &mut cores_state,
                &sched,
            );
            Some(counting.pops)
        } else {
            warmup_phase::<H, S>(cfg, &vm_ctx, source, &mut hier, &mut cores_state, &sched);
            None
        };
        hier.reset_stats();
        for s in &mut cores_state {
            s.cycles = 0;
            s.instructions = 0;
            s.accesses_done = 0;
            s.next_switch = quantum;
            s.switches = 0;
        }
        // Snapshot *after* the reset so a restore reproduces exactly
        // this state: zeroed counters, fresh schedule, carried VMs.
        if let (Some(plan), Some(pops)) = (&ckpt_plan, pops) {
            let meta = crate::checkpoint::HierarchyCheckpoint {
                current_vms: cores_state.iter().map(|s| s.current_vm).collect(),
                pops,
            };
            plan.save(&hier, &meta);
        }
    }

    let snapshot = if cfg.sample_windows == 0 {
        timed_phase(
            cfg,
            &vm_ctx,
            source,
            &mut hier,
            &mut cores_state,
            Some(&mut occupancy),
            cfg.accesses_per_core,
            Some(hooks),
        );
        hier.snapshot()
    } else {
        // SMARTS-style sampling: `sample_windows` timed windows spread
        // over the `accesses_per_core` stream, the stream between them
        // fast-forwarded functionally. The reported snapshot sums the
        // windows' deltas, so the gaps' state churn (which still
        // advances component hit/miss counters) never reaches the
        // run's counters; cycles, instructions and switches accumulate
        // in the timed windows only.
        let windows = cfg.sample_windows;
        let per_window = cfg.window_accesses;
        let measured = windows
            .checked_mul(per_window)
            .expect("sample window volume overflows u64");
        assert!(
            per_window > 0,
            "--sample-windows requires a nonzero --window-accesses"
        );
        assert!(
            measured <= cfg.accesses_per_core,
            "sample windows ({windows} x {per_window}) exceed accesses_per_core ({})",
            cfg.accesses_per_core
        );
        let skip = cfg.accesses_per_core - measured;
        let mut sum: Option<HierarchySnapshot> = None;
        for w in 0..windows {
            // Spread the fast-forward budget evenly, front-loading the
            // remainder so every access of the stream is consumed.
            let gap = skip / windows + u64::from(w < skip % windows);
            functional_phase(&mut hier, source, &vm_ctx, &mut cores_state, gap, &sched);
            let before = hier.snapshot();
            timed_phase(
                cfg,
                &vm_ctx,
                source,
                &mut hier,
                &mut cores_state,
                Some(&mut occupancy),
                (w + 1) * per_window,
                Some(&mut *hooks),
            );
            let delta = hier.snapshot().delta_since(&before);
            match sum.as_mut() {
                Some(s) => s.accumulate(&delta),
                None => sum = Some(delta),
            }
        }
        sum.expect("sample_windows >= 1")
    };

    let (l2_trace, l3_trace) = hier.partition_traces();
    let to_series = |t: &[PartitionSample]| {
        t.iter()
            .map(|s| (s.at_access, s.tlb_fraction()))
            .collect::<Vec<_>>()
    };
    let l2_partition_trace = to_series(l2_trace);
    let l3_partition_trace = to_series(l3_trace);

    let instructions: u64 = cores_state.iter().map(|c| c.instructions).sum();
    let core_ipc: Vec<f64> = cores_state
        .iter()
        .map(|c| {
            if c.cycles == 0 {
                0.0
            } else {
                c.instructions as f64 / c.cycles as f64
            }
        })
        .collect();

    let result = SimResult {
        workload: cfg.workload.name.clone(),
        scheme: cfg.scheme,
        instructions,
        core_cycles: cores_state.iter().map(|c| c.cycles).collect(),
        core_ipc,
        snapshot,
        occupancy,
        l2_partition_trace,
        l3_partition_trace,
        context_switches: cores_state.iter().map(|c| c.switches).sum(),
        final_partitions: hier.current_partitions(),
    };

    #[cfg(feature = "audit")]
    {
        let mut diags = csalt_audit::conservation::audit_snapshot(
            result.workload.as_str(),
            &result.snapshot,
            &cfg.scheme,
        );
        let (l2_occ, l3_occ) = hier.occupancy();
        diags.extend(csalt_audit::conservation::audit_occupancy("l2", &l2_occ));
        diags.extend(csalt_audit::conservation::audit_occupancy("l3", &l3_occ));
        diags.extend(csalt_audit::conservation::audit_ipc(
            result.workload.as_str(),
            result.ipc(),
            result.instructions,
        ));
        enforce_audit("run completion", &diags);
    }

    result
}

/// Options for [`run_instrumented`]: where telemetry goes and how much
/// of it to produce.
#[cfg(feature = "telemetry")]
pub struct Instrumentation<'a> {
    /// Destination for every emitted [`TelemetryRecord`].
    pub recorder: &'a mut dyn Recorder,
    /// Record a full walk trace every `N` measured accesses (0 = none).
    pub sample_interval: u64,
    /// Print a heartbeat line to stderr every `N` epochs (0 = none).
    pub progress_every_epochs: u64,
    /// Span-event sink for `--trace`: engine events on the simulated-
    /// cycles clock, infrastructure events on the wall clock. `None`
    /// (the default) keeps the uninstrumented fast path.
    pub trace: Option<&'a mut TraceBuffer>,
}

/// Runs one configuration with telemetry: a provenance header, one
/// [`EpochRecord`] per repartitioning epoch (plus a final partial
/// epoch, so the per-epoch deltas sum exactly to the run totals),
/// sampled [`WalkTraceRecord`]s, and end-of-run latency histograms.
///
/// The simulated machine behaves identically to [`run`] — tracing reads
/// counters, it never charges cycles — so results are bit-equal.
///
/// # Panics
///
/// Panics if the configuration is invalid (zero cores, bad geometry…).
#[cfg(feature = "telemetry")]
pub fn run_instrumented(cfg: &SimConfig, inst: &mut Instrumentation<'_>) -> SimResult {
    run_instrumented_with_stats(cfg, inst).0
}

/// [`run_instrumented`] plus the pipeline telemetry of the run (`None`
/// when the inline path executed) — what `csalt-experiments run` prints
/// its stats line from.
///
/// # Panics
///
/// Panics if the configuration is invalid (zero cores, bad geometry…).
#[cfg(feature = "telemetry")]
pub fn run_instrumented_with_stats(
    cfg: &SimConfig,
    inst: &mut Instrumentation<'_>,
) -> (SimResult, Option<PipelineStats>) {
    // A disabled recorder (e.g. `NullRecorder`) drops everything, so
    // skip the hook bookkeeping entirely and take the same monomorphized
    // no-op path as `run` — this is what keeps a telemetry-capable build
    // free when telemetry is not requested.
    if !inst.recorder.is_enabled() && inst.progress_every_epochs == 0 && inst.trace.is_none() {
        return run_with_stats(cfg);
    }
    let cores = cfg.system.cores as usize;
    let wall_start = if let Some(t) = inst.trace.as_deref_mut() {
        t.set_track_name(Domain::Cycles, 0, "partitioner");
        for core in 0..cores {
            t.set_track_name(Domain::Cycles, 1 + core as u32, format!("core {core}"));
        }
        t.set_track_name(Domain::Wall, 0, "commit stage");
        Some(csalt_trace::timing::wall_micros())
    } else {
        None
    };
    let workload = cfg.workload.name.clone();
    let scheme = cfg.scheme.label();
    inst.recorder.record(&TelemetryRecord::Provenance {
        record: ProvenanceRecord {
            tool: "csalt-sim".to_owned(),
            format_version: FORMAT_VERSION,
            workload: workload.clone(),
            scheme: scheme.clone(),
            sample_interval: inst.sample_interval,
            config_json: serde_json::to_string(cfg).unwrap_or_default(),
        },
    });
    let switch_overhead = cfg.switch_overhead_cycles;
    let epoch_len = cfg.system.epoch_accesses.max(1);
    let mut hooks = LiveHooks {
        inst,
        workload,
        scheme,
        epoch_len,
        next_epoch_at: epoch_len,
        epoch: 0,
        last_emit_total: 0,
        prev: None,
        prev_instructions: 0,
        prev_switches: 0,
        switch_overhead,
        translation_hist: Log2Histogram::new(),
        data_hist: Log2Histogram::new(),
        total_hist: Log2Histogram::new(),
        epoch_start_ts: 0,
        core_last_ts: vec![0; cores],
        l2_decisions_seen: 0,
        l3_decisions_seen: 0,
        last_commit_wall: wall_start.unwrap_or(0),
        last_progress: PipelineProgress::default(),
        last_l0: csalt_types::L0Stats::default(),
    };
    let (result, pipeline) = execute(
        cfg,
        build_threads(cfg),
        PipelineRequest::from_env(),
        &mut hooks,
    );
    if let Some(p) = &pipeline {
        // The rings' stall/occupancy gauges land in the stream's final
        // Instruments record (see csalt-telemetry's `pipeline_metrics`).
        use csalt_telemetry::pipeline_metrics as m;
        let rec = &mut *hooks.inst.recorder;
        rec.counter(m::RECORDS_STAGED, p.records_staged);
        rec.counter(m::RECORDS_COMMITTED, p.records_committed);
        rec.counter(m::PRODUCER_STALLS, p.producer_stalls);
        rec.counter(m::CONSUMER_STALLS, p.consumer_stalls);
        rec.counter(m::BLOCK_DRAINS, p.block_drains);
        rec.counter(m::BLOCK_DRAINED_RECORDS, p.block_drained_records);
        rec.gauge(m::PRODUCERS, p.producers as f64);
        rec.gauge(m::RING_CAPACITY, p.ring_capacity as f64);
        rec.gauge(m::MEAN_RING_OCCUPANCY, p.mean_occupancy());
        rec.gauge(m::MEAN_DRAIN_BLOCK, p.mean_drain_block());
        // One wall-domain span per producer thread: the session the
        // thread spent staging records, with its totals attached.
        if let Some(t) = hooks.inst.trace.as_deref_mut() {
            let end = csalt_trace::timing::wall_micros();
            let start = wall_start.unwrap_or(end);
            for (i, perf) in p.per_producer.iter().enumerate() {
                let tid = 1 + i as u32;
                t.set_track_name(Domain::Wall, tid, format!("producer {i}"));
                t.begin_args(
                    Domain::Wall,
                    tid,
                    start,
                    "produce",
                    vec![
                        ("staged", ArgValue::U64(perf.staged)),
                        ("stalls", ArgValue::U64(perf.stalls)),
                    ],
                );
                t.end(Domain::Wall, tid, end, "produce");
            }
        }
    }
    {
        // The L0 memo counters ride the same end-of-stream instruments
        // record. `last_l0` is the final epoch's reading, i.e. the
        // measured phase's totals (warmup resets them with the rest).
        use csalt_telemetry::l0_metrics as l0m;
        let l0 = hooks.last_l0;
        let rec = &mut *hooks.inst.recorder;
        rec.counter(l0m::HITS, l0.hits);
        rec.counter(l0m::INVALIDATIONS, l0.invalidations);
    }
    hooks.finish();
    (result, pipeline)
}

/// The live hook set behind [`run_instrumented`].
#[cfg(feature = "telemetry")]
struct LiveHooks<'a, 'b> {
    inst: &'a mut Instrumentation<'b>,
    workload: String,
    scheme: String,
    epoch_len: u64,
    next_epoch_at: u64,
    epoch: u64,
    last_emit_total: u64,
    prev: Option<HierarchySnapshot>,
    prev_instructions: u64,
    prev_switches: u64,
    switch_overhead: Cycle,
    translation_hist: Log2Histogram,
    data_hist: Log2Histogram,
    total_hist: Log2Histogram,
    /// Cycles timestamp where the currently accumulating epoch began.
    epoch_start_ts: u64,
    /// Per-core monotonicity clamp for the cycles-domain core tracks:
    /// walk spans are sized by raw stage cycles, which can exceed the
    /// core's charged (MLP-overlapped) advance, so back-to-back traced
    /// accesses could otherwise overlap on the track.
    core_last_ts: Vec<u64>,
    l2_decisions_seen: u64,
    l3_decisions_seen: u64,
    /// Wall timestamp where the current commit span began.
    last_commit_wall: u64,
    last_progress: PipelineProgress,
    /// Hierarchy-wide L0 memo counters as of the last emitted epoch,
    /// so the end-of-run instruments can report them after the
    /// hierarchy is gone.
    last_l0: csalt_types::L0Stats,
}

/// Cycles-domain track id of a core (`tid` 0 is the partitioner).
#[cfg(feature = "telemetry")]
fn core_tid(core: usize) -> u32 {
    1 + core as u32
}

/// Span label for a walk stage.
#[cfg(feature = "telemetry")]
fn stage_label(stage: WalkStage) -> &'static str {
    match stage {
        WalkStage::L1Tlb => "l1_tlb",
        WalkStage::L2Tlb => "l2_tlb",
        WalkStage::PomLookup => "pom_lookup",
        WalkStage::TsbLookup => "tsb_lookup",
        WalkStage::GuestPte => "guest_pte",
        WalkStage::HostPte => "host_pte",
        WalkStage::Data => "data",
    }
}

#[cfg(feature = "telemetry")]
impl LiveHooks<'_, '_> {
    /// Emits the trace events of one epoch boundary: the cycles-domain
    /// epoch span on the partitioner track, one `repartition` instant
    /// per partitioned cache (with the fresh decision's utility and
    /// marginal-utility curve when the partitioner acted this epoch),
    /// and the wall-domain commit span with ring-stall markers.
    fn trace_epoch(
        &mut self,
        hier: &MemoryHierarchy,
        cores: &[CoreState],
        total: u64,
        progress: Option<PipelineProgress>,
    ) {
        let ts = cores
            .iter()
            .map(|c| c.cycles)
            .max()
            .unwrap_or(0)
            .max(self.epoch_start_ts);
        let (l2_ways, l3_ways) = hier.current_partitions();
        let accesses = total.saturating_sub(self.last_emit_total);
        let epoch = self.epoch;
        let Some(t) = self.inst.trace.as_deref_mut() else {
            return;
        };
        t.begin_args(
            Domain::Cycles,
            0,
            self.epoch_start_ts,
            "epoch",
            vec![
                ("epoch", ArgValue::U64(epoch)),
                ("accesses", ArgValue::U64(accesses)),
            ],
        );
        t.end(Domain::Cycles, 0, ts, "epoch");
        self.epoch_start_ts = ts;

        // Repartition instants: one per partitioned cache, every epoch
        // boundary, so the timeline always shows the split in force.
        // Decision detail (utility, MU curve) rides along only when the
        // partitioner actually decided since the last boundary.
        let mut repartition = |cache: &'static str,
                               data_ways: Option<u32>,
                               total_ways: u32,
                               info: (
            u64,
            Option<csalt_profiler::PartitionDecision>,
            &[(u32, f64)],
        ),
                               seen: &mut u64| {
            let Some(dw) = data_ways else { return };
            let (decisions, decision, curve) = info;
            let mut args = vec![
                ("cache", ArgValue::from(cache)),
                ("data_ways", ArgValue::U64(u64::from(dw))),
                ("tlb_ways", ArgValue::U64(u64::from(total_ways - dw))),
                ("decisions", ArgValue::U64(decisions)),
            ];
            if decisions > *seen {
                *seen = decisions;
                if let Some(d) = decision {
                    args.push(("utility", ArgValue::Str(format!("{:.1}", d.utility))));
                }
                if !curve.is_empty() {
                    let rendered = curve
                        .iter()
                        .map(|(n, u)| format!("{n}:{u:.1}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    args.push(("mu_curve", ArgValue::Str(rendered)));
                }
            }
            t.instant(Domain::Cycles, 0, ts, "repartition", args);
        };
        repartition(
            "l2",
            l2_ways,
            hier.config().l2.ways,
            hier.l2_decision_info(),
            &mut self.l2_decisions_seen,
        );
        repartition(
            "l3",
            l3_ways,
            hier.config().l3.ways,
            hier.l3_decision_info(),
            &mut self.l3_decisions_seen,
        );

        // Wall domain: the commit stage's slice of real time spent on
        // this epoch, with ring stalls flagged when the pipeline ran.
        let now = csalt_trace::timing::wall_micros().max(self.last_commit_wall);
        let mut args = vec![
            ("epoch", ArgValue::U64(epoch)),
            ("accesses", ArgValue::U64(accesses)),
        ];
        if let Some(p) = progress {
            args.push((
                "staged",
                ArgValue::U64(
                    p.records_staged
                        .saturating_sub(self.last_progress.records_staged),
                ),
            ));
            args.push((
                "committed",
                ArgValue::U64(
                    p.records_committed
                        .saturating_sub(self.last_progress.records_committed),
                ),
            ));
        }
        t.begin_args(Domain::Wall, 0, self.last_commit_wall, "commit", args);
        t.end(Domain::Wall, 0, now, "commit");
        if let Some(p) = progress {
            let producer_stalls = p
                .producer_stalls
                .saturating_sub(self.last_progress.producer_stalls);
            let consumer_stalls = p
                .consumer_stalls
                .saturating_sub(self.last_progress.consumer_stalls);
            if producer_stalls > 0 || consumer_stalls > 0 {
                t.instant(
                    Domain::Wall,
                    0,
                    now,
                    "ring_stall",
                    vec![
                        ("producer_stalls", ArgValue::U64(producer_stalls)),
                        ("consumer_stalls", ArgValue::U64(consumer_stalls)),
                    ],
                );
            }
            self.last_progress = p;
        }
        self.last_commit_wall = now;
    }

    /// Emits the epoch record covering `(last emission, total]`.
    fn emit_epoch(
        &mut self,
        hier: &MemoryHierarchy,
        cores: &[CoreState],
        total: u64,
        progress: Option<PipelineProgress>,
    ) {
        if self.inst.trace.is_some() {
            self.trace_epoch(hier, cores, total, progress);
        }
        self.last_l0 = hier.l0_stats();
        let snap = hier.snapshot();
        let delta = match &self.prev {
            Some(p) => snap.delta_since(p),
            None => snap.clone(),
        };
        let instructions: u64 = cores.iter().map(|c| c.instructions).sum();
        let instr_delta = instructions.saturating_sub(self.prev_instructions);
        let switches: u64 = cores.iter().map(|c| c.switches).sum();
        let switch_delta = switches.saturating_sub(self.prev_switches);
        let (l2_occ, l3_occ) = hier.occupancy();
        let (l2_ways, l3_ways) = hier.current_partitions();
        let (g2, g3) = hier.criticality_gauges();
        let per_walk = if delta.page_walks == 0 {
            0.0
        } else {
            delta.page_walk_cycles as f64 / delta.page_walks as f64
        };
        let cpi = if instr_delta == 0 {
            0.0
        } else {
            delta.translation_cycles as f64 / instr_delta as f64
        };
        let rate = |hits: u64, accesses: u64| (accesses > 0).then(|| hits as f64 / accesses as f64);
        let record = EpochRecord {
            workload: self.workload.clone(),
            scheme: self.scheme.clone(),
            epoch: self.epoch,
            at_access: total,
            accesses: delta.accesses,
            instructions: instr_delta,
            translation_cycles: delta.translation_cycles,
            data_cycles: delta.data_cycles,
            page_walks: delta.page_walks,
            page_walk_cycles: delta.page_walk_cycles,
            l1_tlb: delta.l1_tlb,
            l2_tlb: delta.l2_tlb,
            pom: delta.pom,
            tsb: delta.tsb,
            l2_cache: delta.l2.total(),
            l3_cache: delta.l3.total(),
            ddr_accesses: delta.ddr.accesses,
            ddr_row_hits: delta.ddr.row_hits,
            stacked_accesses: delta.stacked.accesses,
            stacked_row_hits: delta.stacked.row_hits,
            context_switches: switch_delta,
            switch_overhead_cycles: switch_delta * self.switch_overhead,
            l1_tlb_mpki: delta.l1_tlb.mpki(instr_delta),
            l2_tlb_mpki: delta.l2_tlb.mpki(instr_delta),
            l2_cache_mpki: delta.l2.total().mpki(instr_delta),
            l3_cache_mpki: delta.l3.total().mpki(instr_delta),
            translation_cpi: cpi,
            walk_cycles_per_walk: per_walk,
            ddr_row_hit_rate: rate(delta.ddr.row_hits, delta.ddr.accesses),
            stacked_row_hit_rate: rate(delta.stacked.row_hits, delta.stacked.accesses),
            l2_data_ways: l2_ways,
            l3_data_ways: l3_ways,
            l2_tlb_occupancy: l2_occ.tlb_fraction(),
            l3_tlb_occupancy: l3_occ.tlb_fraction(),
            l2_tlb_utilization: hier.l2_tlb_utilization(),
            pom_utilization: hier.pom_utilization(),
            l2_weight_data: g2.s_dat,
            l2_weight_translation: g2.s_tr,
            l3_weight_data: g3.s_dat,
            l3_weight_translation: g3.s_tr,
        };
        self.inst
            .recorder
            .record(&TelemetryRecord::Epoch { record });
        self.prev = Some(snap);
        self.prev_instructions = instructions;
        self.prev_switches = switches;
        self.last_emit_total = total;
        self.epoch += 1;
    }

    /// Emits the end-of-run latency histograms and flushes the sink.
    fn finish(&mut self) {
        for (name, hist) in [
            ("translation_cycles", &self.translation_hist),
            ("data_cycles", &self.data_hist),
            ("total_cycles", &self.total_hist),
        ] {
            if let Some(record) =
                HistogramRecord::from_histogram(name, &self.workload, &self.scheme, hist)
            {
                self.inst
                    .recorder
                    .record(&TelemetryRecord::Histogram { record });
            }
        }
        self.inst.recorder.flush();
    }
}

#[cfg(feature = "telemetry")]
impl PhaseHooks for LiveHooks<'_, '_> {
    fn wants_trace(&mut self, index: u64) -> bool {
        self.inst.sample_interval > 0 && index.is_multiple_of(self.inst.sample_interval)
    }

    fn on_access(&mut self, charge: &AccessCharge) {
        self.translation_hist.record(charge.translation_cycles);
        self.data_hist.record(charge.data_cycles);
        self.total_hist
            .record(charge.translation_cycles + charge.data_cycles);
    }

    fn on_traced(
        &mut self,
        index: u64,
        core: usize,
        ctx: ContextId,
        acc: &MemAccess,
        charge: &AccessCharge,
        stages: Vec<StageSample>,
        at_cycles: Cycle,
    ) {
        if let Some(t) = self.inst.trace.as_deref_mut() {
            // The walk span plus one nested span per stage, sized by the
            // stage's raw cycles; clamped so spans on a core track never
            // overlap (see `core_last_ts`).
            let tid = core_tid(core);
            let total: u64 = stages.iter().map(|s| s.cycles).sum();
            let t0 = at_cycles.max(self.core_last_ts[core]);
            t.begin_args(
                Domain::Cycles,
                tid,
                t0,
                "walk",
                vec![
                    ("index", ArgValue::U64(index)),
                    ("walked", ArgValue::U64(u64::from(charge.walked))),
                    (
                        "translation_cycles",
                        ArgValue::U64(charge.translation_cycles),
                    ),
                    ("data_cycles", ArgValue::U64(charge.data_cycles)),
                ],
            );
            let mut at = t0;
            for s in &stages {
                let name = stage_label(s.stage);
                t.begin(Domain::Cycles, tid, at, name);
                at += s.cycles;
                t.end(Domain::Cycles, tid, at, name);
            }
            t.end(Domain::Cycles, tid, t0 + total, "walk");
            self.core_last_ts[core] = t0 + total;
        }
        let record = WalkTraceRecord {
            workload: self.workload.clone(),
            scheme: self.scheme.clone(),
            access_index: index,
            core,
            context: u64::from(ctx.raw()),
            vaddr: acc.vaddr.raw(),
            write: acc.ty.is_write(),
            translation_cycles: charge.translation_cycles,
            data_cycles: charge.data_cycles,
            total_cycles: charge.translation_cycles + charge.data_cycles,
            l1_tlb_hit: charge.l1_tlb_hit,
            l2_tlb_hit: charge.l2_tlb_hit,
            walked: charge.walked,
            stages,
        };
        self.inst
            .recorder
            .record(&TelemetryRecord::WalkTrace { record });
    }

    fn on_context_switch(&mut self, core: usize, from_vm: u32, to_vm: u32, at_cycles: Cycle) {
        if let Some(t) = self.inst.trace.as_deref_mut() {
            let tid = core_tid(core);
            let ts = at_cycles.max(self.core_last_ts[core]);
            t.instant(
                Domain::Cycles,
                tid,
                ts,
                "context_switch",
                vec![
                    ("from_vm", ArgValue::U64(u64::from(from_vm))),
                    ("to_vm", ArgValue::U64(u64::from(to_vm))),
                ],
            );
            self.core_last_ts[core] = ts;
        }
    }

    fn after_sweep(
        &mut self,
        hier: &MemoryHierarchy,
        cores: &[CoreState],
        total: u64,
        target: u64,
        progress: Option<PipelineProgress>,
    ) {
        while total >= self.next_epoch_at {
            self.next_epoch_at += self.epoch_len;
            self.emit_epoch(hier, cores, total, progress);
            if self.inst.progress_every_epochs > 0
                && self.epoch.is_multiple_of(self.inst.progress_every_epochs)
            {
                let (l2_ways, l3_ways) = hier.current_partitions();
                let ways = |w: Option<u32>| w.map_or_else(|| "-".to_owned(), |w| w.to_string());
                let pipe = progress.map_or_else(String::new, |p| {
                    format!(
                        ", pipeline {}/{} staged/committed, stalls {}p/{}c",
                        p.records_staged, p.records_committed, p.producer_stalls, p.consumer_stalls,
                    )
                });
                let l0 = self.last_l0;
                eprintln!(
                    "[csalt] {} / {}: epoch {}, {total} of {target} accesses retired ({} remaining), data ways l2/l3 {}/{}, l0 memo {} hits / {} inv{}",
                    self.workload,
                    self.scheme,
                    self.epoch,
                    target.saturating_sub(total),
                    ways(l2_ways),
                    ways(l3_ways),
                    l0.hits,
                    l0.invalidations,
                    pipe,
                );
            }
        }
        // The final (usually partial) epoch: emitted exactly once, when
        // the phase target is reached, so delta sums equal run totals.
        if total >= target && total > self.last_emit_total {
            self.emit_epoch(hier, cores, total, progress);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_workloads::{BenchKind, WorkloadSpec};

    fn quick(scheme: TranslationScheme) -> SimConfig {
        let mut cfg = SimConfig::new(WorkloadSpec::homogeneous("gups", BenchKind::Gups), scheme);
        cfg.system.cores = 2;
        cfg.system.cs_interval_cycles = 50_000;
        cfg.system.epoch_accesses = 20_000;
        // Disable the paging-structure caches: at this test's tiny
        // footprint their 64 MiB reach would cover the whole table and
        // hide the walk costs the schemes differ on (the experiment
        // harness instead uses full-scale footprints).
        cfg.system.psc.pml4_entries = 0;
        cfg.system.psc.pdp_entries = 0;
        cfg.system.psc.pde_entries = 0;
        cfg.accesses_per_core = 30_000;
        cfg.scale = 0.05;
        cfg
    }

    #[test]
    fn run_completes_and_counts_work() {
        let r = run(&quick(TranslationScheme::PomTlb));
        assert_eq!(r.core_cycles.len(), 2);
        assert!(r.instructions > 60_000);
        assert!(r.ipc() > 0.0 && r.ipc() < 2.0, "ipc {}", r.ipc());
        assert!(r.context_switches > 0);
        assert_eq!(r.snapshot.accesses, 60_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&quick(TranslationScheme::CsaltCd));
        let b = run(&quick(TranslationScheme::CsaltCd));
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.snapshot, b.snapshot);
    }

    #[test]
    fn pom_outperforms_conventional_on_gups() {
        let pom = run(&quick(TranslationScheme::PomTlb));
        let conv = run(&quick(TranslationScheme::Conventional));
        assert!(
            pom.ipc() > conv.ipc(),
            "pom {} vs conventional {}",
            pom.ipc(),
            conv.ipc()
        );
        assert!(pom.snapshot.page_walks < conv.snapshot.page_walks);
    }

    #[test]
    fn single_context_never_switches() {
        let mut cfg = quick(TranslationScheme::PomTlb);
        cfg.system.contexts_per_core = 1;
        let r = run(&cfg);
        assert_eq!(r.context_switches, 0);
    }

    #[test]
    fn more_contexts_raise_tlb_mpki() {
        let mut one = quick(TranslationScheme::PomTlb);
        one.system.contexts_per_core = 1;
        let mut two = quick(TranslationScheme::PomTlb);
        two.system.contexts_per_core = 2;
        let r1 = run(&one);
        let r2 = run(&two);
        assert!(
            r2.l2_tlb_mpki() > r1.l2_tlb_mpki(),
            "2ctx {} vs 1ctx {}",
            r2.l2_tlb_mpki(),
            r1.l2_tlb_mpki()
        );
    }

    #[test]
    fn occupancy_scans_are_recorded() {
        let mut cfg = quick(TranslationScheme::PomTlb);
        cfg.occupancy_scan_interval = 10_000;
        let r = run(&cfg);
        assert!(!r.occupancy.is_empty());
        for s in &r.occupancy {
            assert!((0.0..=1.0).contains(&s.l3_tlb_fraction));
        }
    }

    #[test]
    fn partition_traces_only_when_requested() {
        let mut cfg = quick(TranslationScheme::CsaltD);
        let r = run(&cfg);
        assert!(r.l3_partition_trace.is_empty());
        cfg.trace_partitions = true;
        let r2 = run(&cfg);
        assert!(!r2.l3_partition_trace.is_empty());
    }

    #[test]
    fn result_serializes() {
        let r = run(&quick(TranslationScheme::PomTlb));
        let json = serde_json::to_string(&r).expect("serialize");
        let back: SimResult = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.instructions, r.instructions);
    }

    #[test]
    fn pipelined_run_matches_inline_bit_for_bit() {
        let mut cfg = quick(TranslationScheme::CsaltCd);
        cfg.accesses_per_core = 5_000;
        cfg.warmup_accesses_per_core = 2_000;
        let inline = run_inline(&cfg);
        let (pipelined, stats) = run_pipelined(&cfg);
        assert_eq!(
            serde_json::to_string(&inline).expect("serialize"),
            serde_json::to_string(&pipelined).expect("serialize"),
        );
        assert!(stats.producers >= 1);
        assert_eq!(
            stats.records_committed,
            (cfg.accesses_per_core + cfg.warmup_accesses_per_core) * u64::from(cfg.system.cores)
        );
        assert!(stats.records_staged >= stats.records_committed);
    }

    #[test]
    fn pipeline_request_parses_every_spelling() {
        use PipelineRequest::{Auto, Force, Off};
        for off in [
            None,
            Some(""),
            Some("0"),
            Some("off"),
            Some("false"),
            Some("inline"),
        ] {
            assert_eq!(PipelineRequest::parse(off), Off, "{off:?}");
        }
        for auto in [
            Some("1"),
            Some("auto"),
            Some("on"),
            Some("true"),
            Some("yes"),
        ] {
            assert_eq!(PipelineRequest::parse(auto), Auto, "{auto:?}");
        }
        assert_eq!(PipelineRequest::parse(Some("force")), Force);
        assert_eq!(PipelineRequest::parse(Some("FORCE")), Force);
    }

    #[test]
    fn l0_request_parses_every_spelling() {
        use L0Request::{Off, On};
        for off in [Some("0"), Some("off"), Some("false"), Some("OFF")] {
            assert_eq!(L0Request::parse(off), Off, "{off:?}");
        }
        for on in [None, Some(""), Some("1"), Some("on"), Some("true")] {
            assert_eq!(L0Request::parse(on), On, "{on:?}");
        }
        assert!(On.enabled());
        assert!(!Off.enabled());
    }

    #[test]
    fn l0_memo_off_matches_on_bit_for_bit() {
        // The memo is a scan-skip, not a model change: disabling it via
        // the env var must not move any simulated counter. (Parallel
        // tests racing on the var are harmless for exactly that
        // reason.)
        let mut cfg = quick(TranslationScheme::CsaltCd);
        cfg.accesses_per_core = 5_000;
        cfg.warmup_accesses_per_core = 2_000;
        std::env::set_var("CSALT_L0", "off");
        let off = run_inline(&cfg);
        std::env::set_var("CSALT_L0", "on");
        let on = run_inline(&cfg);
        std::env::remove_var("CSALT_L0");
        assert_eq!(
            serde_json::to_string(&off).expect("serialize"),
            serde_json::to_string(&on).expect("serialize"),
        );
    }

    #[test]
    fn replay_workloads_fall_back_to_inline() {
        // A generator matrix containing a recorded-trace replay must
        // plan inline even under Force: replay generators are not
        // guaranteed Send, and the trace is consumed where it lives.
        let cfg = quick(TranslationScheme::PomTlb);
        let threads = build_threads(&cfg);
        assert!(matches!(
            plan_execution(&cfg, &threads, PipelineRequest::Force),
            ExecPlan::Pipelined(..)
        ));

        let mut record = Vec::new();
        let mut replay_threads = build_threads(&cfg);
        for _ in 0..(cfg.accesses_per_core + cfg.warmup_accesses_per_core) {
            record.push(replay_threads[0][0].next_access());
        }
        let replayed: Vec<Vec<AnyGenerator>> = (0..cfg.system.contexts_per_core)
            .map(|_| {
                (0..cfg.system.cores)
                    .map(|_| {
                        AnyGenerator::Trace(csalt_workloads::TraceFile::from_records(
                            record.clone(),
                        ))
                    })
                    .collect()
            })
            .collect();
        assert!(matches!(
            plan_execution(&cfg, &replayed, PipelineRequest::Force),
            ExecPlan::Inline
        ));
    }
}
