//! Runtime criticality-weight estimation for CSALT-CD (§3.2).
//!
//! CSALT-CD scales each kind's stack-distance profile by the performance
//! gain of a hit of that kind in the cache being partitioned. The paper
//! derives the gains from counters modern processors already expose:
//!
//! * a **data** hit in the L3 avoids a DRAM access, so
//!   `S_Dat = avg_dram_latency / l3_latency`;
//! * a **translation** hit in the L3 avoids both the POM-TLB access *and*
//!   (because a translation is blocking) the dependent DRAM access, so
//!   `S_Tr = (avg_pom_tlb_latency + avg_dram_latency) / l3_latency`.
//!
//! The estimator accumulates observed service latencies and produces
//! [`Weights`] on demand; an exponential decay keeps it responsive to
//! phase changes across epochs.

use crate::partition::Weights;
use csalt_types::{CkptError, CkptReader, CkptWriter, Cycle};
use serde::{Deserialize, Serialize};

/// Accumulates observed memory-system latencies and derives the
/// criticality weights of Equation 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalityEstimator {
    /// Hit latency of the cache being partitioned (denominator).
    cache_latency: f64,
    dram_latency_sum: f64,
    dram_samples: f64,
    pom_latency_sum: f64,
    pom_samples: f64,
    /// Fallbacks until first samples arrive (typical Table 2 values).
    default_dram: f64,
    default_pom: f64,
}

impl CriticalityEstimator {
    /// Creates an estimator for a cache with the given hit latency.
    ///
    /// `default_dram` / `default_pom` seed the averages before any real
    /// sample has been observed (use the devices' best-case latencies).
    ///
    /// # Panics
    ///
    /// Panics if any latency is not positive.
    pub fn new(cache_latency: Cycle, default_dram: Cycle, default_pom: Cycle) -> Self {
        assert!(
            cache_latency > 0 && default_dram > 0 && default_pom > 0,
            "latencies must be positive"
        );
        Self {
            cache_latency: cache_latency as f64,
            dram_latency_sum: 0.0,
            dram_samples: 0.0,
            pom_latency_sum: 0.0,
            pom_samples: 0.0,
            default_dram: default_dram as f64,
            default_pom: default_pom as f64,
        }
    }

    /// Records the observed service latency of one off-chip DRAM access.
    pub fn record_dram(&mut self, latency: Cycle) {
        self.dram_latency_sum += latency as f64;
        self.dram_samples += 1.0;
    }

    /// Records the observed service latency of one POM-TLB access
    /// (die-stacked DRAM).
    pub fn record_pom_tlb(&mut self, latency: Cycle) {
        self.pom_latency_sum += latency as f64;
        self.pom_samples += 1.0;
    }

    /// Average observed DRAM latency (or the default seed).
    pub fn avg_dram(&self) -> f64 {
        if self.dram_samples > 0.0 {
            self.dram_latency_sum / self.dram_samples
        } else {
            self.default_dram
        }
    }

    /// Average observed POM-TLB latency (or the default seed).
    pub fn avg_pom_tlb(&self) -> f64 {
        if self.pom_samples > 0.0 {
            self.pom_latency_sum / self.pom_samples
        } else {
            self.default_pom
        }
    }

    /// Current criticality weights (§3.2): the gains are never allowed to
    /// drop below 1 — a hit cannot be *worse* than the miss it avoids.
    pub fn weights(&self) -> Weights {
        let s_dat = (self.avg_dram() / self.cache_latency).max(1.0);
        let s_tr = ((self.avg_pom_tlb() + self.avg_dram()) / self.cache_latency).max(1.0);
        Weights::new(s_dat, s_tr)
    }

    /// Halves the accumulated history so newer epochs dominate — called
    /// at each epoch boundary.
    pub fn decay(&mut self) {
        self.dram_latency_sum /= 2.0;
        self.dram_samples /= 2.0;
        self.pom_latency_sum /= 2.0;
        self.pom_samples /= 2.0;
    }

    /// Serializes the latency accumulators. The floats are written as
    /// IEEE-754 bit patterns, so a round trip is exact; the construction
    /// parameters serve as guard words.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.cache_latency.to_bits());
        w.u64(self.default_dram.to_bits());
        w.u64(self.default_pom.to_bits());
        w.u64(self.dram_latency_sum.to_bits());
        w.u64(self.dram_samples.to_bits());
        w.u64(self.pom_latency_sum.to_bits());
        w.u64(self.pom_samples.to_bits());
    }

    /// Restores state written by [`CriticalityEstimator::ckpt_save`];
    /// construction parameters must match this estimator's.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.cache_latency.to_bits()
            || r.u64()? != self.default_dram.to_bits()
            || r.u64()? != self.default_pom.to_bits()
        {
            return Err(CkptError::Mismatch("criticality estimator config"));
        }
        self.dram_latency_sum = f64::from_bits(r.u64()?);
        self.dram_samples = f64::from_bits(r.u64()?);
        self.pom_latency_sum = f64::from_bits(r.u64()?);
        self.pom_samples = f64::from_bits(r.u64()?);
        Ok(())
    }

    /// Point-in-time telemetry gauges: the §3.2 inputs (average observed
    /// service latencies) next to the weights they produce.
    pub fn gauges(&self) -> CriticalityGauges {
        let w = self.weights();
        CriticalityGauges {
            avg_dram_latency: self.avg_dram(),
            avg_pom_tlb_latency: self.avg_pom_tlb(),
            s_dat: w.s_dat,
            s_tr: w.s_tr,
        }
    }
}

/// Serializable snapshot of one estimator's state for epoch telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalityGauges {
    /// Average observed off-chip DRAM service latency (core cycles).
    pub avg_dram_latency: f64,
    /// Average observed POM-TLB (stacked DRAM) service latency.
    pub avg_pom_tlb_latency: f64,
    /// Resulting data-hit criticality weight (`S_Dat`).
    pub s_dat: f64,
    /// Resulting translation-hit criticality weight (`S_Tr`).
    pub s_tr: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_used_before_samples() {
        let e = CriticalityEstimator::new(42, 168, 84);
        assert_eq!(e.avg_dram(), 168.0);
        assert_eq!(e.avg_pom_tlb(), 84.0);
        let w = e.weights();
        assert!((w.s_dat - 4.0).abs() < 1e-12);
        assert!((w.s_tr - 6.0).abs() < 1e-12);
    }

    #[test]
    fn samples_override_defaults() {
        let mut e = CriticalityEstimator::new(42, 168, 84);
        e.record_dram(210);
        e.record_dram(210);
        e.record_pom_tlb(126);
        assert_eq!(e.avg_dram(), 210.0);
        assert_eq!(e.avg_pom_tlb(), 126.0);
        let w = e.weights();
        assert!((w.s_dat - 5.0).abs() < 1e-12);
        assert!((w.s_tr - 8.0).abs() < 1e-12);
    }

    #[test]
    fn tlb_weight_exceeds_data_weight() {
        // Blocking translation always carries the extra POM-TLB term.
        let mut e = CriticalityEstimator::new(12, 150, 80);
        e.record_dram(140);
        e.record_pom_tlb(90);
        let w = e.weights();
        assert!(w.s_tr > w.s_dat);
    }

    #[test]
    fn weights_floor_at_one() {
        let e = CriticalityEstimator::new(42, 1, 1);
        let w = e.weights();
        assert_eq!(w.s_dat, 1.0);
        assert!(w.s_tr >= 1.0);
    }

    #[test]
    fn decay_preserves_average_but_weights_recency() {
        let mut e = CriticalityEstimator::new(42, 168, 84);
        e.record_dram(100);
        e.record_dram(100);
        e.decay();
        assert_eq!(e.avg_dram(), 100.0, "decay keeps the mean");
        // One new fast sample now moves the mean further than before.
        e.record_dram(10);
        assert!(e.avg_dram() < 70.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_rejected() {
        CriticalityEstimator::new(0, 100, 50);
    }

    #[test]
    fn gauges_mirror_weights_and_averages() {
        let mut e = CriticalityEstimator::new(42, 168, 84);
        e.record_dram(210);
        e.record_pom_tlb(126);
        let g = e.gauges();
        assert_eq!(g.avg_dram_latency, e.avg_dram());
        assert_eq!(g.avg_pom_tlb_latency, e.avg_pom_tlb());
        let w = e.weights();
        assert_eq!(g.s_dat, w.s_dat);
        assert_eq!(g.s_tr, w.s_tr);
    }
}
