//! Epoch bookkeeping: CSALT repartitions each cache at fixed access-count
//! intervals (256 K accesses by default; Figure 15 sweeps 128 K–512 K).

use csalt_types::{CkptError, CkptReader, CkptWriter};
use serde::{Deserialize, Serialize};

/// Counts cache accesses and signals epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochController {
    length: u64,
    count: u64,
    epochs_completed: u64,
}

impl EpochController {
    /// Creates a controller with the given epoch length (in accesses).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: u64) -> Self {
        assert!(length > 0, "epoch length must be positive");
        Self {
            length,
            count: 0,
            epochs_completed: 0,
        }
    }

    /// The configured epoch length.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Number of completed epochs so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Accesses recorded in the current (incomplete) epoch.
    pub fn current_count(&self) -> u64 {
        self.count
    }

    /// Records one access; returns `true` exactly at epoch boundaries
    /// (every `length`-th access), at which point the caller recomputes
    /// the partition and resets its profiler counters.
    pub fn tick(&mut self) -> bool {
        self.count += 1;
        if self.count >= self.length {
            self.count = 0;
            self.epochs_completed += 1;
            true
        } else {
            false
        }
    }

    /// Serializes the access count and completed-epoch counter, with the
    /// configured length as a guard word.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.length);
        w.u64(self.count);
        w.u64(self.epochs_completed);
    }

    /// Restores state written by [`EpochController::ckpt_save`]; the
    /// epoch length must match this controller's.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.length {
            return Err(CkptError::Mismatch("epoch length"));
        }
        let count = r.u64()?;
        if count >= self.length {
            return Err(CkptError::Corrupt("epoch count past boundary"));
        }
        self.count = count;
        self.epochs_completed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_fires_every_length_ticks() {
        let mut e = EpochController::new(4);
        assert!(!e.tick());
        assert!(!e.tick());
        assert!(!e.tick());
        assert!(e.tick());
        assert_eq!(e.epochs_completed(), 1);
        assert_eq!(e.current_count(), 0);
        for _ in 0..3 {
            assert!(!e.tick());
        }
        assert!(e.tick());
        assert_eq!(e.epochs_completed(), 2);
    }

    #[test]
    fn length_one_fires_every_tick() {
        let mut e = EpochController::new(1);
        assert!(e.tick());
        assert!(e.tick());
        assert_eq!(e.epochs_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        EpochController::new(0);
    }
}
