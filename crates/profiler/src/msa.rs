//! Mattson Stack Algorithm (MSA) stack-distance profilers.
//!
//! For a K-way associative cache, the profiler keeps — per entry kind — an
//! LRU stack of `K+1` counters (§3.1 of the paper, after Mattson et al.
//! 1970): `counter[i]` counts hits at LRU stack depth `i` (0 = MRU) and
//! `counter[K]` counts misses. Because the counters are gathered against a
//! *shadow* full-LRU tag directory rather than the (partitioned) physical
//! cache, they predict the hit rate the kind would achieve if it were
//! granted any number of ways `n`: the predicted hits are simply
//! `counter[0] + … + counter[n-1]`.
//!
//! The shadow directory can sample every `interval`-th set to bound cost,
//! exactly like hardware auxiliary tag directories.

use csalt_types::{CkptError, CkptReader, CkptWriter, EntryKind};
use serde::{Deserialize, Serialize};

/// Stack-distance profiler for one cache: two shadow LRU tag directories
/// (data and TLB) plus their `K+1` hit counters.
#[derive(Debug, Clone)]
pub struct StackDistanceProfiler {
    ways: u32,
    sets: u64,
    interval: u64,
    /// Shadow tags: `shadow[kind][sampled_set]` is an MRU-first tag list.
    shadow: [Vec<Vec<u64>>; 2],
    counters: [Vec<u64>; 2],
}

/// A read-only snapshot of one kind's counters, for the partitioning
/// algorithms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LruStackCounts {
    counts: Vec<u64>,
}

impl LruStackCounts {
    /// Wraps raw counters (length `K+1`; last slot is the miss counter).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 slots are supplied.
    pub fn new(counts: Vec<u64>) -> Self {
        assert!(counts.len() >= 2, "need at least one way plus miss slot");
        Self { counts }
    }

    /// Associativity `K` these counters describe.
    pub fn ways(&self) -> u32 {
        (self.counts.len() - 1) as u32
    }

    /// Hits recorded at stack depth `i`.
    pub fn at(&self, i: u32) -> u64 {
        self.counts[i as usize]
    }

    /// Misses (accesses beyond depth `K`).
    pub fn misses(&self) -> u64 {
        *self.counts.last().expect("nonempty by construction")
    }

    /// Predicted hits were this kind granted `n` ways: `Σ counts[0..n]`.
    ///
    /// # Panics
    ///
    /// Panics if `n > K`.
    pub fn hits_with_ways(&self, n: u32) -> u64 {
        assert!(n <= self.ways(), "cannot grant more ways than exist");
        self.counts[..n as usize].iter().sum()
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Raw counter slice (length `K+1`).
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }
}

impl StackDistanceProfiler {
    /// Creates a profiler for a `sets`-set, `ways`-way cache, sampling
    /// every `interval`-th set (1 = profile every set).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `interval > sets`.
    pub fn new(sets: u64, ways: u32, interval: u64) -> Self {
        assert!(sets > 0 && ways > 0 && interval > 0, "zero dimension");
        assert!(interval <= sets, "interval exceeds set count");
        let sampled = sets.div_ceil(interval) as usize;
        Self {
            ways,
            sets,
            interval,
            shadow: [vec![Vec::new(); sampled], vec![Vec::new(); sampled]],
            counters: [vec![0; ways as usize + 1], vec![0; ways as usize + 1]],
        }
    }

    /// Associativity being profiled.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Records one access of `kind` to `(set, tag)` and returns the stack
    /// depth observed (`ways` ⇒ shadow miss). Non-sampled sets return
    /// `None` without touching state.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn record(&mut self, set: u64, tag: u64, kind: EntryKind) -> Option<u32> {
        assert!(set < self.sets, "set {set} out of range");
        // Fast path for full profiling (interval 1): no division.
        let idx = if self.interval == 1 {
            set as usize
        } else {
            if !set.is_multiple_of(self.interval) {
                return None;
            }
            (set / self.interval) as usize
        };
        let stack = &mut self.shadow[kind.index()][idx];
        let depth = match stack.iter().position(|&t| t == tag) {
            Some(pos) => {
                // Move-to-front as one rotation instead of remove+insert.
                stack[..=pos].rotate_right(1);
                pos as u32
            }
            None => {
                if stack.len() >= self.ways as usize {
                    // Full stack: the rotated-in last element is the LRU
                    // casualty; overwrite it with the new MRU tag.
                    stack.rotate_right(1);
                    stack[0] = tag;
                } else {
                    stack.insert(0, tag);
                }
                self.ways
            }
        };
        self.counters[kind.index()][depth as usize] += 1;
        Some(depth)
    }

    /// Records an access whose stack depth was *estimated externally*
    /// (pseudo-LRU position estimation, §3.4). Depth `>= ways` counts as
    /// a miss.
    pub fn record_estimated(&mut self, kind: EntryKind, depth: u32) {
        let d = depth.min(self.ways) as usize;
        self.counters[kind.index()][d] += 1;
    }

    /// Snapshot of one kind's counters.
    pub fn counts(&self, kind: EntryKind) -> LruStackCounts {
        LruStackCounts::new(self.counters[kind.index()].clone())
    }

    /// Total accesses recorded across both kinds this epoch.
    pub fn accesses(&self) -> u64 {
        self.counters.iter().flatten().sum()
    }

    /// Clears the counters for a new epoch. Shadow tag state is retained
    /// so the next epoch starts warm (matching hardware, where only the
    /// counters are cleared).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            c.iter_mut().for_each(|v| *v = 0);
        }
    }

    /// Serializes the shadow tag directories and stack counters, with
    /// the profiled geometry as guard words.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u32(self.ways);
        w.u64(self.sets);
        w.u64(self.interval);
        for kind in &self.shadow {
            w.len64(kind.len());
            for stack in kind {
                w.len64(stack.len());
                w.slice_u64(stack);
            }
        }
        for counters in &self.counters {
            w.slice_u64(counters);
        }
    }

    /// Restores state written by [`StackDistanceProfiler::ckpt_save`];
    /// geometry must match this profiler's.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u32()? != self.ways || r.u64()? != self.sets || r.u64()? != self.interval {
            return Err(CkptError::Mismatch("stack profiler geometry"));
        }
        for kind in &mut self.shadow {
            if r.len64()? != kind.len() {
                return Err(CkptError::Mismatch("stack profiler sampled sets"));
            }
            for stack in kind.iter_mut() {
                let len = r.len64()?;
                if len > self.ways as usize {
                    return Err(CkptError::Corrupt("shadow stack deeper than ways"));
                }
                let tags = r.vec_u64()?;
                if tags.len() != len {
                    return Err(CkptError::Corrupt("shadow stack length"));
                }
                *stack = tags;
            }
        }
        for counters in &mut self.counters {
            let loaded = r.vec_u64()?;
            if loaded.len() != counters.len() {
                return Err(CkptError::Mismatch("stack counter width"));
            }
            *counters = loaded;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_mru() {
        let mut p = StackDistanceProfiler::new(16, 4, 1);
        p.record(0, 0xa, EntryKind::Data);
        let d = p.record(0, 0xa, EntryKind::Data);
        assert_eq!(d, Some(0));
        let c = p.counts(EntryKind::Data);
        assert_eq!(c.at(0), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn stack_depth_reflects_intervening_tags() {
        let mut p = StackDistanceProfiler::new(16, 4, 1);
        p.record(3, 1, EntryKind::Data); // miss
        p.record(3, 2, EntryKind::Data); // miss
        p.record(3, 3, EntryKind::Data); // miss
                                         // Tag 1 now at depth 2.
        assert_eq!(p.record(3, 1, EntryKind::Data), Some(2));
        let c = p.counts(EntryKind::Data);
        assert_eq!(c.at(2), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn capacity_eviction_counts_as_miss() {
        let mut p = StackDistanceProfiler::new(16, 2, 1);
        p.record(0, 1, EntryKind::Tlb);
        p.record(0, 2, EntryKind::Tlb);
        p.record(0, 3, EntryKind::Tlb); // evicts tag 1 from shadow
        assert_eq!(p.record(0, 1, EntryKind::Tlb), Some(2)); // miss depth == ways
        assert_eq!(p.counts(EntryKind::Tlb).misses(), 4);
    }

    #[test]
    fn kinds_have_independent_stacks() {
        let mut p = StackDistanceProfiler::new(16, 4, 1);
        p.record(0, 7, EntryKind::Data);
        // Same tag as TLB is a *miss* in the TLB stack.
        assert_eq!(p.record(0, 7, EntryKind::Tlb), Some(4));
        assert_eq!(p.counts(EntryKind::Data).misses(), 1);
        assert_eq!(p.counts(EntryKind::Tlb).misses(), 1);
        assert_eq!(p.counts(EntryKind::Tlb).at(0), 0);
    }

    #[test]
    fn sampling_skips_unsampled_sets() {
        let mut p = StackDistanceProfiler::new(64, 4, 32);
        assert!(p.record(0, 1, EntryKind::Data).is_some());
        assert!(p.record(1, 1, EntryKind::Data).is_none());
        assert!(p.record(32, 1, EntryKind::Data).is_some());
        assert_eq!(p.accesses(), 2);
    }

    #[test]
    fn hits_with_ways_is_prefix_sum() {
        let c = LruStackCounts::new(vec![10, 5, 3, 1, 7]);
        assert_eq!(c.ways(), 4);
        assert_eq!(c.hits_with_ways(0), 0);
        assert_eq!(c.hits_with_ways(1), 10);
        assert_eq!(c.hits_with_ways(4), 19);
        assert_eq!(c.misses(), 7);
        assert_eq!(c.accesses(), 26);
    }

    #[test]
    #[should_panic(expected = "cannot grant more ways")]
    fn hits_with_too_many_ways_panics() {
        LruStackCounts::new(vec![1, 2]).hits_with_ways(2);
    }

    #[test]
    fn reset_clears_counters_keeps_shadow() {
        let mut p = StackDistanceProfiler::new(16, 4, 1);
        p.record(0, 9, EntryKind::Data);
        p.reset_counters();
        assert_eq!(p.accesses(), 0);
        // Shadow retained: same tag now hits at MRU.
        assert_eq!(p.record(0, 9, EntryKind::Data), Some(0));
    }

    #[test]
    fn estimated_depths_feed_counters() {
        let mut p = StackDistanceProfiler::new(16, 4, 1);
        p.record_estimated(EntryKind::Data, 2);
        p.record_estimated(EntryKind::Data, 99); // clamps to miss
        let c = p.counts(EntryKind::Data);
        assert_eq!(c.at(2), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn counters_sum_matches_access_count() {
        let mut p = StackDistanceProfiler::new(8, 4, 1);
        for i in 0..1000u64 {
            let kind = if i % 3 == 0 {
                EntryKind::Tlb
            } else {
                EntryKind::Data
            };
            p.record(i % 8, (i * 7) % 13, kind);
        }
        assert_eq!(p.accesses(), 1000);
        let total = p.counts(EntryKind::Data).accesses() + p.counts(EntryKind::Tlb).accesses();
        assert_eq!(total, 1000);
    }
}
