//! CSALT's profiling and partitioning machinery (§3 of the paper).
//!
//! This crate implements the paper's primary contribution in isolation
//! from any particular cache:
//!
//! * [`StackDistanceProfiler`] — per-kind Mattson stack-distance (MSA)
//!   profilers over shadow LRU tag directories, the hit-rate prediction
//!   model of §3.1.
//! * [`choose_partition`] / [`weighted_marginal_utility`] — Algorithms
//!   1–3: marginal-utility maximization (CSALT-D) and its
//!   criticality-weighted variant (CSALT-CD, Equation 2).
//! * [`CriticalityEstimator`] — derives the `S_Dat` / `S_Tr` weights from
//!   runtime latency observations (§3.2).
//! * [`EpochController`] — the fixed-interval repartitioning cadence
//!   (256 K accesses by default, swept in Figure 15).
//!
//! # Example
//!
//! ```
//! use csalt_profiler::{choose_partition, StackDistanceProfiler, Weights};
//! use csalt_types::EntryKind;
//!
//! let mut prof = StackDistanceProfiler::new(64, 8, 1);
//! for i in 0..1000u64 {
//!     prof.record(i % 64, i % 4, EntryKind::Data); // hot data
//!     prof.record(i % 64, i, EntryKind::Tlb);      // streaming TLB
//! }
//! let decision = choose_partition(
//!     &prof.counts(EntryKind::Data),
//!     &prof.counts(EntryKind::Tlb),
//!     1,
//!     Weights::UNIT,
//! );
//! assert!(decision.data_ways >= 1 && decision.tlb_ways >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod criticality;
mod epoch;
mod msa;
mod partition;

pub use criticality::{CriticalityEstimator, CriticalityGauges};
pub use epoch::EpochController;
pub use msa::{LruStackCounts, StackDistanceProfiler};
pub use partition::{
    choose_partition, utility_curve, weighted_marginal_utility, PartitionDecision, Weights,
};
