//! The CSALT partitioning algorithms: Marginal Utility (Algorithm 1–2)
//! and Criticality-Weighted Marginal Utility (Algorithm 3).
//!
//! Given the two per-kind stack-distance profiles of an epoch, the
//! controller picks the way split `N` (data ways) that maximizes
//!
//! * CSALT-D:  `MU(N)   = Σ_{i<N} D_LRU[i] + Σ_{j<K-N} TLB_LRU[j]`  (Eq. 1)
//! * CSALT-CD: `CWMU(N) = S_dat·Σ_{i<N} D_LRU[i] + S_tr·Σ_{j<K-N} TLB_LRU[j]` (Eq. 2)
//!
//! where the criticality weights `S_dat` / `S_tr` are the estimated
//! performance gain of a hit of each kind (§3.2).

use crate::msa::LruStackCounts;
use serde::{Deserialize, Serialize};

/// Criticality weights applied to the two profiles (Eq. 2). `UNIT` makes
/// CWMU degenerate to plain MU, i.e. CSALT-D.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Performance gain of a data hit in this cache (`S_Dat`).
    pub s_dat: f64,
    /// Performance gain of a translation hit in this cache (`S_Tr`).
    pub s_tr: f64,
}

impl Weights {
    /// Unweighted (CSALT-D) configuration.
    pub const UNIT: Weights = Weights {
        s_dat: 1.0,
        s_tr: 1.0,
    };

    /// Builds weights, clamping non-finite or non-positive inputs to 1.
    pub fn new(s_dat: f64, s_tr: f64) -> Self {
        let sanitize = |w: f64| if w.is_finite() && w > 0.0 { w } else { 1.0 };
        Self {
            s_dat: sanitize(s_dat),
            s_tr: sanitize(s_tr),
        }
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::UNIT
    }
}

/// Computes the criticality-weighted marginal utility of granting `n`
/// ways (of `k`) to data — Algorithm 2 (with `UNIT` weights) and
/// Algorithm 3 (general).
///
/// # Panics
///
/// Panics if the two profiles disagree on associativity or `n > K`.
pub fn weighted_marginal_utility(
    data: &LruStackCounts,
    tlb: &LruStackCounts,
    n: u32,
    weights: Weights,
) -> f64 {
    let k = data.ways();
    assert_eq!(k, tlb.ways(), "profiles must cover the same cache");
    assert!(n <= k, "cannot grant more ways than exist");
    debug_assert!(
        weights.s_dat.is_finite() && weights.s_tr.is_finite(),
        "criticality weights must be finite (got {} / {})",
        weights.s_dat,
        weights.s_tr
    );
    weights.s_dat * data.hits_with_ways(n) as f64 + weights.s_tr * tlb.hits_with_ways(k - n) as f64
}

/// Evaluates every feasible split and returns the full marginal-utility
/// curve `[(data_ways, CWMU)]` that Algorithm 1 scans for its argmax.
///
/// This is observability surface: repartition trace events attach the
/// curve so the chosen split can be audited against its alternatives.
/// It is pure and leaves no state behind, so calling it (or not) cannot
/// perturb simulated results.
///
/// # Panics
///
/// Panics if the profiles disagree on associativity or `2*n_min > K`.
pub fn utility_curve(
    data: &LruStackCounts,
    tlb: &LruStackCounts,
    n_min: u32,
    weights: Weights,
) -> Vec<(u32, f64)> {
    let k = data.ways();
    assert_eq!(k, tlb.ways(), "profiles must cover the same cache");
    assert!(
        n_min >= 1 && 2 * n_min <= k,
        "n_min leaves no feasible split"
    );
    (n_min..=(k - n_min))
        .map(|n| (n, weighted_marginal_utility(data, tlb, n, weights)))
        .collect()
}

/// The outcome of an epoch's partitioning decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionDecision {
    /// Ways granted to data entries.
    pub data_ways: u32,
    /// Ways granted to TLB entries (`K - data_ways`).
    pub tlb_ways: u32,
    /// The winning (weighted) marginal utility.
    pub utility: f64,
}

/// Algorithm 1: evaluates every allowed split and returns the argmax.
///
/// `n_min` ways are always reserved for each kind (the paper's `Nmin`
/// lower bound keeps either stream from being starved entirely). Ties are
/// broken toward the *largest* data allocation, matching the paper's
/// worked example where `P4 (N=7)` wins: in practice the data stream is
/// the larger contributor and extra TLB ways with zero marginal hits are
/// wasted.
///
/// # Panics
///
/// Panics if the profiles disagree on associativity or `2*n_min > K`.
pub fn choose_partition(
    data: &LruStackCounts,
    tlb: &LruStackCounts,
    n_min: u32,
    weights: Weights,
) -> PartitionDecision {
    let k = data.ways();
    assert_eq!(k, tlb.ways(), "profiles must cover the same cache");
    assert!(
        n_min >= 1 && 2 * n_min <= k,
        "n_min leaves no feasible split"
    );

    let mut best_n = n_min;
    let mut best_mu = f64::NEG_INFINITY;
    for n in n_min..=(k - n_min) {
        let mu = weighted_marginal_utility(data, tlb, n, weights);
        if mu >= best_mu {
            best_mu = mu;
            best_n = n;
        }
    }
    let decision = PartitionDecision {
        data_ways: best_n,
        tlb_ways: k - best_n,
        utility: best_mu,
    };
    // The split must conserve the cache's ways and honour the floor —
    // the same bound CSALT-A104/A014 police statically.
    debug_assert_eq!(decision.data_ways + decision.tlb_ways, k);
    debug_assert!(decision.data_ways >= n_min && decision.tlb_ways >= n_min);
    debug_assert!(decision.utility.is_finite());
    decision
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 5 example: an 8-way cache whose profiles make
    /// partition P4 (N = 7) the winner with MU = 50.
    fn figure5_profiles() -> (LruStackCounts, LruStackCounts) {
        // DATA LRU stack: values at LRU0..LRU7, then the miss slot LRU8.
        let data = LruStackCounts::new(vec![3, 11, 12, 8, 9, 2, 1, 4, 10]);
        // TLB LRU stack.
        let tlb = LruStackCounts::new(vec![7, 10, 12, 5, 1, 0, 8, 15, 1]);
        (data, tlb)
    }

    #[test]
    fn figure5_marginal_utilities_follow_equation_1() {
        // The printed MU values in the paper's §3.1 example (34/30/40/50)
        // are not reproducible from the stacks it displays — the example's
        // arithmetic is inconsistent. We therefore verify Equation 1
        // itself: MU(N) = Σ_{i<N} D[i] + Σ_{j<K-N} T[j], against exact
        // hand-computed prefix sums for the displayed stacks.
        let (d, t) = figure5_profiles();
        let expect = [
            (1, 3 + 43),
            (2, 14 + 35),
            (3, 26 + 35),
            (4, 34 + 34),
            (5, 43 + 29),
            (6, 45 + 17),
            (7, 46 + 7),
        ];
        for (n, mu) in expect {
            let got = weighted_marginal_utility(&d, &t, n, Weights::UNIT);
            assert_eq!(got, f64::from(mu), "MU({n})");
        }
        // Exhaustive argmax over the feasible splits is N = 5 (MU = 72).
        let dec = choose_partition(&d, &t, 1, Weights::UNIT);
        assert_eq!(dec.data_ways, 5);
        assert_eq!(dec.utility, 72.0);
    }

    #[test]
    fn mu_is_sum_of_prefixes() {
        let d = LruStackCounts::new(vec![5, 5, 0, 0, 100]);
        let t = LruStackCounts::new(vec![10, 0, 0, 0, 100]);
        let mu = weighted_marginal_utility(&d, &t, 2, Weights::UNIT);
        // data prefix (2 ways) = 10, tlb prefix (2 ways) = 10.
        assert_eq!(mu, 20.0);
    }

    #[test]
    fn data_heavy_profile_wins_data_ways() {
        // Data hits spread deep; TLB hits nonexistent.
        let d = LruStackCounts::new(vec![10, 10, 10, 10, 10, 10, 10, 10, 0]);
        let t = LruStackCounts::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 50]);
        let dec = choose_partition(&d, &t, 1, Weights::UNIT);
        assert_eq!(dec.data_ways, 7, "maximum allowed data allocation");
    }

    #[test]
    fn tlb_heavy_profile_wins_tlb_ways() {
        let d = LruStackCounts::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 50]);
        let t = LruStackCounts::new(vec![10, 10, 10, 10, 10, 10, 10, 10, 0]);
        let dec = choose_partition(&d, &t, 1, Weights::UNIT);
        assert_eq!(dec.data_ways, 1, "minimum data allocation");
        assert_eq!(dec.tlb_ways, 7);
    }

    #[test]
    fn weights_shift_the_decision() {
        // Symmetric profiles: unweighted, ties break to large data N.
        let d = LruStackCounts::new(vec![10, 10, 10, 10, 0]);
        let t = LruStackCounts::new(vec![10, 10, 10, 10, 0]);
        let unweighted = choose_partition(&d, &t, 1, Weights::UNIT);
        // Heavy TLB criticality must pull ways toward TLB.
        let tlb_critical = choose_partition(&d, &t, 1, Weights::new(1.0, 10.0));
        assert!(tlb_critical.data_ways <= unweighted.data_ways);
        assert_eq!(tlb_critical.data_ways, 1);
    }

    #[test]
    fn n_min_is_respected() {
        let d = LruStackCounts::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 1]);
        let t = LruStackCounts::new(vec![100, 0, 0, 0, 0, 0, 0, 0, 0]);
        let dec = choose_partition(&d, &t, 2, Weights::UNIT);
        assert!(dec.data_ways >= 2);
        assert!(dec.tlb_ways >= 2);
    }

    #[test]
    fn utility_curve_matches_pointwise_evaluation() {
        let (d, t) = figure5_profiles();
        let curve = utility_curve(&d, &t, 1, Weights::UNIT);
        assert_eq!(curve.len(), 7, "splits 1..=7 for an 8-way cache");
        for &(n, mu) in &curve {
            assert_eq!(mu, weighted_marginal_utility(&d, &t, n, Weights::UNIT));
        }
        // The curve's argmax is exactly what choose_partition picks.
        let dec = choose_partition(&d, &t, 1, Weights::UNIT);
        let best = curve
            .iter()
            .copied()
            .fold((0u32, f64::NEG_INFINITY), |acc, (n, mu)| {
                if mu >= acc.1 {
                    (n, mu)
                } else {
                    acc
                }
            });
        assert_eq!(best.0, dec.data_ways);
        assert_eq!(best.1, dec.utility);
    }

    #[test]
    fn utility_reported_matches_recomputation() {
        let (d, t) = figure5_profiles();
        let dec = choose_partition(&d, &t, 1, Weights::UNIT);
        let mu = weighted_marginal_utility(&d, &t, dec.data_ways, Weights::UNIT);
        assert_eq!(dec.utility, mu);
    }

    #[test]
    fn weights_sanitize_bad_inputs() {
        let w = Weights::new(f64::NAN, -3.0);
        assert_eq!(w.s_dat, 1.0);
        assert_eq!(w.s_tr, 1.0);
        let w2 = Weights::new(2.5, 0.0);
        assert_eq!(w2.s_dat, 2.5);
        assert_eq!(w2.s_tr, 1.0);
        assert_eq!(Weights::default(), Weights::UNIT);
    }

    #[test]
    #[should_panic(expected = "no feasible split")]
    fn infeasible_n_min_panics() {
        let d = LruStackCounts::new(vec![0, 0, 1]);
        let t = LruStackCounts::new(vec![0, 0, 1]);
        choose_partition(&d, &t, 2, Weights::UNIT);
    }
}
