//! Power-of-two bucketed histograms for cycle-latency distributions.
//!
//! Latencies in the simulator span four orders of magnitude (a 0-cycle L1
//! TLB hit to a multi-hundred-cycle nested walk that misses to DDR), so a
//! log2 bucketing keeps the footprint constant (65 counters) while still
//! resolving the percentiles the paper's walk-latency figures need.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for the value `0` plus one per bit position.
pub const BUCKETS: usize = 65;

/// A fixed-size log2-bucketed histogram over `u64` samples.
///
/// Bucket `0` holds only the value `0`; bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k - 1]`, so every bucket boundary is an exact power of
/// two. The exact minimum, maximum and sum are tracked alongside the
/// buckets so means are exact and percentile estimates can be clamped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: `0` for the value zero, otherwise the
    /// bit length of the value (so `1 -> 1`, `2..=3 -> 2`, `4..=7 -> 3`).
    #[inline]
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive `(lower, upper)` value bounds of bucket `index`.
    ///
    /// For every `index >= 1` the lower bound is the exact power of two
    /// `2^(index-1)`; the unit tests pin this down.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            k => (1u64 << (k - 1), (1u64 << k) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Largest recorded sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Smallest recorded sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Upper-bound estimate of the `p`-quantile (`p` in `[0, 1]`).
    ///
    /// Returns the inclusive upper edge of the first bucket whose
    /// cumulative count reaches `ceil(p * total)`, clamped to the exact
    /// observed maximum. `None` when the histogram is empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let clamped = p.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((clamped * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let (_, upper) = Self::bucket_bounds(i);
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lower, upper, count)` triples.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Rebuilds a histogram from serialized summary parts, the inverse of
    /// [`Log2Histogram::nonzero_buckets`]. Used by `csalt-report` to merge
    /// histogram records from several runs of the same scheme.
    ///
    /// The reconstructed `min`/`max`/`sum` come from the summary fields,
    /// so percentile clamping behaves as it did on the recording side.
    #[must_use]
    pub fn from_parts(buckets: &[(u64, u64, u64)], sum: u64, min: u64, max: u64) -> Self {
        let mut h = Self::new();
        for &(lo, _, count) in buckets {
            h.counts[Self::bucket_index(lo)] += count;
            h.total += count;
        }
        if h.total > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// Sum of all recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resets the histogram to empty.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        for k in 1..64usize {
            let (lo, hi) = Log2Histogram::bucket_bounds(k);
            assert_eq!(lo, 1u64 << (k - 1), "bucket {k} lower bound");
            assert!(lo.is_power_of_two(), "bucket {k} lower bound 2^n");
            if k < 64 {
                assert_eq!(hi, (1u64 << k) - 1, "bucket {k} upper bound");
            }
            // The two edge values land in the bucket; the next power of two
            // lands in the next bucket.
            assert_eq!(Log2Histogram::bucket_index(lo), k);
            assert_eq!(Log2Histogram::bucket_index(hi), k);
            if k < 63 {
                assert_eq!(Log2Histogram::bucket_index(hi + 1), k + 1);
            }
        }
        assert_eq!(Log2Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn percentiles_track_distribution() {
        let mut h = Log2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 100);
        let p50 = h.percentile(0.50).expect("nonempty");
        let p99 = h.percentile(0.99).expect("nonempty");
        // Bucketed estimates are upper bounds of the containing bucket.
        assert!((32..=63).contains(&p50), "p50 estimate {p50}");
        assert!((64..=100).contains(&p99), "p99 estimate {p99}");
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.min(), Some(1));
        let mean = h.mean().expect("nonempty");
        assert!((mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn zero_samples_live_in_bucket_zero() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.percentile(0.5), Some(0));
        assert_eq!(h.nonzero_buckets(), vec![(0, 0, 2)]);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Log2Histogram::new();
        assert!(h.percentile(0.5).is_none());
        assert!(h.mean().is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn merge_and_from_parts_round_trip() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [1u64, 5, 17, 17, 300] {
            a.record(v);
        }
        for v in [2u64, 1000, 64] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), 8);
        assert_eq!(merged.max(), Some(1000));

        let rebuilt = Log2Histogram::from_parts(
            &a.nonzero_buckets(),
            a.sum(),
            a.min().expect("nonempty"),
            a.max().expect("nonempty"),
        );
        assert_eq!(rebuilt, a);
    }
}
