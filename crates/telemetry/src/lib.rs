//! Observability layer for the CSALT simulator.
//!
//! The paper's evaluation is built from *time-resolved* behaviour —
//! per-epoch partition movement, walk-latency distributions, per-scheme
//! miss breakdowns — while an uninstrumented run only surfaces an
//! end-of-run snapshot. This crate provides the plumbing between the
//! two without taxing the simulator's hot loop:
//!
//! - [`Recorder`] — the sink trait with counter / gauge / log2-histogram
//!   instruments plus structured-record emission. [`NullRecorder`]
//!   drops everything (`is_enabled() == false`), [`StreamRecorder`]
//!   writes bounded-buffer JSONL or CSV, [`SharedRecorder`] multiplexes
//!   parallel runs onto one stream with clone-local instruments, and
//!   [`MemoryRecorder`] backs tests.
//! - [`Log2Histogram`] — 65 power-of-two buckets with exact min/max/sum,
//!   used for translation- and data-path latency distributions.
//! - [`TelemetryRecord`] — the stream schema: a provenance header,
//!   per-epoch metric deltas, sampled walk traces with per-stage cycle
//!   attribution, and end-of-run histogram summaries.
//! - [`report`] — consumer-side parsing and percentile tables for
//!   `csalt-report --telemetry`.
//!
//! The crate sits just above `csalt-types` in the workspace graph so
//! every model crate (and `csalt-core`'s hierarchy) can attribute
//! stages without dependency cycles.

pub mod histogram;
pub mod record;
pub mod recorder;
pub mod report;

pub use histogram::{Log2Histogram, BUCKETS};
pub use record::{
    l0_metrics, pipeline_metrics, EpochRecord, HistogramRecord, InstrumentsRecord,
    ProvenanceRecord, ServedBy, StageSample, TelemetryRecord, WalkStage, WalkTraceRecord,
    FORMAT_VERSION,
};
pub use recorder::{
    MemoryRecorder, NullRecorder, Recorder, SharedRecorder, StreamFormat, StreamRecorder,
    DEFAULT_BUFFER_CAPACITY,
};
pub use report::{summarize_stream, StreamSummary};
