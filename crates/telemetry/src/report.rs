//! Consumer-side helpers: parse a JSONL telemetry stream back into
//! merged histograms and validation counters.
//!
//! `csalt-report --telemetry` is a thin shell around
//! [`summarize_stream`]; keeping the logic here makes it unit-testable
//! without spawning the binary.

use std::collections::BTreeMap;
use std::io::BufRead;

use crate::histogram::Log2Histogram;
use crate::record::{EpochRecord, FooterRecord, TelemetryRecord};

/// Aggregated view of one telemetry stream.
#[derive(Debug, Default)]
pub struct StreamSummary {
    /// Total lines consumed (blank lines excluded).
    pub lines: u64,
    /// Lines that failed to parse as a [`TelemetryRecord`].
    pub parse_errors: u64,
    /// Provenance records seen (normally one per run).
    pub provenance: u64,
    /// Epoch records seen.
    pub epochs: u64,
    /// Walk-trace records seen.
    pub walk_traces: u64,
    /// Walk traces whose stage cycles do not sum to the recorded total.
    pub stage_sum_violations: u64,
    /// Histogram records seen.
    pub histograms: u64,
    /// Instruments records seen.
    pub instruments: u64,
    /// Stream-wide counters merged (summed) across instruments records,
    /// keyed by instrument name.
    pub counter_values: BTreeMap<String, u64>,
    /// Last-written gauges across instruments records, keyed by name.
    pub gauge_values: BTreeMap<String, f64>,
    /// Stream footer, present only on truncated/erroring streams.
    pub footer: Option<FooterRecord>,
    /// Epoch records in stream order, kept whole for timeline rendering.
    pub epoch_records: Vec<EpochRecord>,
    /// Histograms merged per `(instrument name, scheme)`.
    pub merged: BTreeMap<(String, String), Log2Histogram>,
}

impl StreamSummary {
    /// True when the stream is well-formed and complete: everything
    /// parsed, every walk trace's stages summed to its recorded total
    /// latency, and no footer reports dropped records or write errors.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.parse_errors == 0 && self.stage_sum_violations == 0 && self.dropped_records() == 0
    }

    /// Records the producer dropped (from the footer; 0 when absent).
    #[must_use]
    pub fn dropped_records(&self) -> u64 {
        self.footer
            .map_or(0, |f| f.records_dropped + f.write_errors)
    }

    /// Schemes that contributed to the named instrument, in stable order.
    #[must_use]
    pub fn schemes_for(&self, instrument: &str) -> Vec<&str> {
        self.merged
            .keys()
            .filter(|(name, _)| name == instrument)
            .map(|(_, scheme)| scheme.as_str())
            .collect()
    }

    /// Merged histogram for one `(instrument, scheme)` pair.
    #[must_use]
    pub fn histogram(&self, instrument: &str, scheme: &str) -> Option<&Log2Histogram> {
        self.merged.get(&(instrument.to_owned(), scheme.to_owned()))
    }

    /// A stream-wide counter by instrument name, when any instruments
    /// record carried it.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_values.get(name).copied()
    }

    /// Renders a markdown percentile table for one instrument, one row
    /// per scheme. Returns `None` when no histogram carries that name.
    #[must_use]
    pub fn percentile_table(&self, instrument: &str, title: &str) -> Option<String> {
        let schemes = self.schemes_for(instrument);
        if schemes.is_empty() {
            return None;
        }
        let mut out = String::new();
        out.push_str(&format!("### {title}\n\n"));
        out.push_str("| scheme | samples | mean | p50 | p95 | p99 | max |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
        for scheme in schemes {
            let Some(h) = self.histogram(instrument, scheme) else {
                continue;
            };
            let mean = h.mean().unwrap_or(f64::NAN);
            let fmt_pct = |p: f64| {
                h.percentile(p)
                    .map_or_else(|| "-".to_owned(), |v| v.to_string())
            };
            out.push_str(&format!(
                "| {} | {} | {:.1} | {} | {} | {} | {} |\n",
                scheme,
                h.total(),
                mean,
                fmt_pct(0.50),
                fmt_pct(0.95),
                fmt_pct(0.99),
                h.max().map_or_else(|| "-".to_owned(), |v| v.to_string()),
            ));
        }
        Some(out)
    }

    fn absorb(&mut self, rec: &TelemetryRecord) {
        match rec {
            TelemetryRecord::Provenance { .. } => self.provenance += 1,
            TelemetryRecord::Epoch { record } => {
                self.epochs += 1;
                self.epoch_records.push(record.clone());
            }
            TelemetryRecord::WalkTrace { record } => {
                self.walk_traces += 1;
                let stage_sum: u64 = record.stages.iter().map(|s| s.cycles).sum();
                let consistent = stage_sum == record.total_cycles
                    && record.total_cycles == record.translation_cycles + record.data_cycles;
                if !consistent {
                    self.stage_sum_violations += 1;
                }
            }
            TelemetryRecord::Histogram { record } => {
                self.histograms += 1;
                let key = (record.name.clone(), record.scheme.clone());
                self.merged
                    .entry(key)
                    .or_default()
                    .merge(&record.to_histogram());
            }
            TelemetryRecord::Instruments { record } => {
                self.instruments += 1;
                for (name, value) in &record.counters {
                    *self.counter_values.entry(name.clone()).or_default() += value;
                }
                for (name, value) in &record.gauges {
                    self.gauge_values.insert(name.clone(), *value);
                }
            }
            TelemetryRecord::Footer { record } => self.footer = Some(*record),
        }
    }
}

/// Parses a JSONL telemetry stream, merging histograms per scheme and
/// validating walk-trace cycle attribution along the way.
///
/// # Errors
/// Propagates I/O errors from the reader; malformed lines are *not*
/// errors here — they are counted in [`StreamSummary::parse_errors`] so
/// the caller can decide (`csalt-report --check` turns them fatal).
pub fn summarize_stream<R: BufRead>(reader: R) -> std::io::Result<StreamSummary> {
    let mut summary = StreamSummary::default();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        summary.lines += 1;
        match serde_json::from_str::<TelemetryRecord>(trimmed) {
            Ok(rec) => summary.absorb(&rec),
            Err(_) => summary.parse_errors += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{HistogramRecord, StageSample, WalkStage, WalkTraceRecord};

    fn hist_line(scheme: &str, values: &[u64]) -> String {
        let mut h = Log2Histogram::new();
        for &v in values {
            h.record(v);
        }
        let rec = TelemetryRecord::Histogram {
            record: HistogramRecord::from_histogram("translation_cycles", "w", scheme, &h)
                .expect("nonempty"),
        };
        serde_json::to_string(&rec).expect("serialize")
    }

    fn trace_line(total: u64, stage_cycles: u64) -> String {
        let rec = TelemetryRecord::WalkTrace {
            record: WalkTraceRecord {
                workload: "w".into(),
                scheme: "s".into(),
                access_index: 0,
                core: 0,
                context: 0,
                vaddr: 0,
                write: false,
                translation_cycles: total,
                data_cycles: 0,
                total_cycles: total,
                l1_tlb_hit: false,
                l2_tlb_hit: true,
                walked: false,
                stages: vec![StageSample {
                    stage: WalkStage::L2Tlb,
                    index: 0,
                    cycles: stage_cycles,
                    hit: Some(true),
                    served_by: None,
                }],
            },
        };
        serde_json::to_string(&rec).expect("serialize")
    }

    #[test]
    fn merges_histograms_per_scheme_and_flags_bad_lines() {
        let stream = format!(
            "{}\n{}\nnot json\n{}\n{}\n",
            hist_line("CSALT-D", &[10, 20]),
            hist_line("CSALT-D", &[40]),
            hist_line("Conventional", &[100]),
            trace_line(17, 17),
        );
        let summary = summarize_stream(stream.as_bytes()).expect("in-memory read");
        assert_eq!(summary.lines, 5);
        assert_eq!(summary.parse_errors, 1);
        assert_eq!(summary.histograms, 3);
        assert_eq!(summary.walk_traces, 1);
        assert_eq!(summary.stage_sum_violations, 0);
        assert!(!summary.is_clean(), "parse error must make it dirty");
        let merged = summary
            .histogram("translation_cycles", "CSALT-D")
            .expect("merged histogram");
        assert_eq!(merged.total(), 3);
        assert_eq!(merged.max(), Some(40));
        let table = summary
            .percentile_table("translation_cycles", "Translation latency (cycles)")
            .expect("table");
        assert!(table.contains("CSALT-D"));
        assert!(table.contains("Conventional"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn stage_sum_violation_detected() {
        let stream = trace_line(17, 16);
        let summary = summarize_stream(stream.as_bytes()).expect("in-memory read");
        assert_eq!(summary.stage_sum_violations, 1);
        assert!(!summary.is_clean());
    }

    #[test]
    fn footer_with_drops_flags_truncation() {
        let footer = TelemetryRecord::Footer {
            record: crate::record::FooterRecord {
                records_written: 7,
                records_dropped: 3,
                write_errors: 0,
            },
        };
        let stream = format!(
            "{}\n{}\n",
            hist_line("CSALT-D", &[10]),
            serde_json::to_string(&footer).expect("serialize"),
        );
        let summary = summarize_stream(stream.as_bytes()).expect("in-memory read");
        assert_eq!(summary.parse_errors, 0);
        assert_eq!(summary.dropped_records(), 3);
        assert!(
            !summary.is_clean(),
            "a footer reporting drops must fail --check"
        );
    }
}
