//! Structured records carried by a telemetry stream.
//!
//! Every record is one line of JSONL (or one row of CSV for epoch
//! records). The enum is externally tagged — `{"Epoch": {"record":
//! {...}}}` — so consumers can dispatch on the first key without a
//! schema. All payloads use named fields and derive both `Serialize`
//! and `Deserialize`, which is what makes the round-trip tests and
//! `csalt-report --telemetry` possible.

use csalt_types::HitMissStats;
use serde::{Deserialize, Serialize};

use crate::histogram::Log2Histogram;

/// Version stamp written into every provenance record so readers can
/// reject streams from an incompatible writer.
pub const FORMAT_VERSION: u32 = 1;

/// Run provenance: the first record of every stream.
///
/// `config_json` carries the full serialized `SimConfig` as a nested
/// JSON string; it is opaque to this crate (which sits below `csalt-sim`
/// in the dependency graph) but round-trips through
/// `serde_json::from_str::<SimConfig>` on the consumer side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Name of the producing tool, e.g. `csalt-experiments`.
    pub tool: String,
    /// Stream format version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Workload label of the run.
    pub workload: String,
    /// Translation scheme label of the run.
    pub scheme: String,
    /// Walk-trace sampling interval (`0` = no walk traces).
    pub sample_interval: u64,
    /// Full `SimConfig` serialized as JSON.
    pub config_json: String,
}

/// Counter deltas and instantaneous gauges for one simulation epoch.
///
/// Delta fields cover exactly the interval since the previous epoch
/// record, so summing them across a stream reproduces the final
/// `HierarchySnapshot` totals (a property the workspace proptests pin
/// down). Gauge fields are sampled at the epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Workload label.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Epoch ordinal within the measured phase (starting at 0).
    pub epoch: u64,
    /// Cumulative accesses (all cores) at this boundary.
    pub at_access: u64,
    /// Accesses served this epoch.
    pub accesses: u64,
    /// Instructions retired this epoch (all cores).
    pub instructions: u64,
    /// Blocking translation cycles charged this epoch.
    pub translation_cycles: u64,
    /// Data-path cycles charged this epoch.
    pub data_cycles: u64,
    /// Full page walks performed this epoch.
    pub page_walks: u64,
    /// Cycles spent inside page walks this epoch.
    pub page_walk_cycles: u64,
    /// L1 TLB hits/misses this epoch (all sizes, all cores).
    pub l1_tlb: HitMissStats,
    /// L2 TLB hits/misses this epoch.
    pub l2_tlb: HitMissStats,
    /// POM-TLB hits/misses this epoch, when the scheme has one.
    pub pom: Option<HitMissStats>,
    /// TSB hits/misses this epoch, when the scheme has one.
    pub tsb: Option<HitMissStats>,
    /// L2 cache hits/misses this epoch (data + TLB lines).
    pub l2_cache: HitMissStats,
    /// L3 cache hits/misses this epoch (data + TLB lines).
    pub l3_cache: HitMissStats,
    /// DDR accesses this epoch.
    pub ddr_accesses: u64,
    /// DDR row-buffer hits this epoch.
    pub ddr_row_hits: u64,
    /// Die-stacked DRAM accesses this epoch.
    pub stacked_accesses: u64,
    /// Die-stacked DRAM row-buffer hits this epoch.
    pub stacked_row_hits: u64,
    /// Context switches taken this epoch (all cores).
    pub context_switches: u64,
    /// Cycles charged for context-switch overhead this epoch.
    pub switch_overhead_cycles: u64,
    /// L1 TLB misses per kilo-instruction this epoch.
    pub l1_tlb_mpki: f64,
    /// L2 TLB misses per kilo-instruction this epoch.
    pub l2_tlb_mpki: f64,
    /// L2 cache misses per kilo-instruction this epoch.
    pub l2_cache_mpki: f64,
    /// L3 cache misses per kilo-instruction this epoch.
    pub l3_cache_mpki: f64,
    /// Translation cycles per instruction this epoch (walk CPI).
    pub translation_cpi: f64,
    /// Mean cycles per completed page walk this epoch.
    pub walk_cycles_per_walk: f64,
    /// DDR row hit rate this epoch, `None` if DDR was idle.
    pub ddr_row_hit_rate: Option<f64>,
    /// Stacked-DRAM row hit rate this epoch, `None` if idle.
    pub stacked_row_hit_rate: Option<f64>,
    /// Ways currently granted to data in the partitioned L2 (gauge).
    pub l2_data_ways: Option<u32>,
    /// Ways currently granted to data in the partitioned L3 (gauge).
    pub l3_data_ways: Option<u32>,
    /// Fraction of L2 cache lines holding TLB entries (gauge).
    pub l2_tlb_occupancy: f64,
    /// Fraction of L3 cache lines holding TLB entries (gauge).
    pub l3_tlb_occupancy: f64,
    /// Mean valid-entry fraction of the per-core SRAM L2 TLBs (gauge).
    pub l2_tlb_utilization: f64,
    /// Valid-entry fraction of the POM-TLB, when present (gauge).
    pub pom_utilization: Option<f64>,
    /// Criticality weight of data misses at L2 (gauge).
    pub l2_weight_data: f64,
    /// Criticality weight of translation misses at L2 (gauge).
    pub l2_weight_translation: f64,
    /// Criticality weight of data misses at L3 (gauge).
    pub l3_weight_data: f64,
    /// Criticality weight of translation misses at L3 (gauge).
    pub l3_weight_translation: f64,
}

/// Which hierarchy stage a [`StageSample`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkStage {
    /// Per-core L1 TLB probe (both page sizes).
    L1Tlb,
    /// Per-core SRAM L2 TLB probe.
    L2Tlb,
    /// POM-TLB probe through the cache hierarchy (one per page size tried).
    PomLookup,
    /// TSB probe (dependent line accesses).
    TsbLookup,
    /// One guest-dimension page-table entry read.
    GuestPte,
    /// One host-dimension page-table entry read (nested walks, or every
    /// step of a native walk).
    HostPte,
    /// The data access itself, after translation.
    Data,
}

/// Which level ultimately served a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedBy {
    /// Per-core L1 data cache.
    L1d,
    /// Per-core partitioned L2.
    L2,
    /// Shared partitioned L3.
    L3,
    /// Off-chip DDR channel.
    Ddr,
    /// Die-stacked DRAM (POM-TLB aperture).
    StackedDram,
}

/// One attributed stage of a sampled translation + data access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// Stage kind.
    pub stage: WalkStage,
    /// Ordinal within the stage kind (e.g. walk step number).
    pub index: u32,
    /// Cycles charged to this stage.
    pub cycles: u64,
    /// Hit/miss outcome where the stage has one.
    pub hit: Option<bool>,
    /// Deepest level touched while serving this stage's memory access.
    pub served_by: Option<ServedBy>,
}

/// A sampled end-to-end walk trace for one memory access.
///
/// The per-stage cycles are exhaustive: `stages` sums to
/// `translation_cycles + data_cycles == total_cycles` (asserted by the
/// integration tests and checked by `csalt-report --check`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkTraceRecord {
    /// Workload label.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Measured-phase access ordinal that was sampled.
    pub access_index: u64,
    /// Core that issued the access.
    pub core: usize,
    /// Raw context (ASID) identifier.
    pub context: u64,
    /// Virtual address of the access.
    pub vaddr: u64,
    /// Whether the access was a store.
    pub write: bool,
    /// Blocking translation cycles for this access.
    pub translation_cycles: u64,
    /// Data-path cycles for this access.
    pub data_cycles: u64,
    /// `translation_cycles + data_cycles`.
    pub total_cycles: u64,
    /// Whether the L1 TLB hit.
    pub l1_tlb_hit: bool,
    /// Whether the L2 TLB hit.
    pub l2_tlb_hit: bool,
    /// Whether a full page walk was needed.
    pub walked: bool,
    /// Ordered per-stage attribution.
    pub stages: Vec<StageSample>,
}

/// End-of-run summary of one latency histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRecord {
    /// Instrument name, e.g. `translation_cycles`.
    pub name: String,
    /// Workload label.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Bucketed p50 upper-bound estimate.
    pub p50: u64,
    /// Bucketed p95 upper-bound estimate.
    pub p95: u64,
    /// Bucketed p99 upper-bound estimate.
    pub p99: u64,
    /// Non-empty `(lower, upper, count)` buckets.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramRecord {
    /// Builds a summary record from a live histogram. Returns `None`
    /// when the histogram is empty (no record is worth emitting).
    #[must_use]
    pub fn from_histogram(
        name: &str,
        workload: &str,
        scheme: &str,
        hist: &Log2Histogram,
    ) -> Option<Self> {
        let count = hist.total();
        if count == 0 {
            return None;
        }
        Some(Self {
            name: name.to_owned(),
            workload: workload.to_owned(),
            scheme: scheme.to_owned(),
            count,
            sum: hist.sum(),
            min: hist.min()?,
            max: hist.max()?,
            mean: hist.mean()?,
            p50: hist.percentile(0.50)?,
            p95: hist.percentile(0.95)?,
            p99: hist.percentile(0.99)?,
            buckets: hist.nonzero_buckets(),
        })
    }

    /// Reconstructs the mergeable histogram this record summarizes.
    #[must_use]
    pub fn to_histogram(&self) -> Log2Histogram {
        Log2Histogram::from_parts(&self.buckets, self.sum, self.min, self.max)
    }
}

/// Instrument names the pipelined execution mode records (they land in
/// the stream's final [`InstrumentsRecord`]): per-stage stall counts
/// and ring-occupancy gauges for the producer/consumer rings, so a
/// stream shows whether production kept ahead of commit.
pub mod pipeline_metrics {
    /// Counter: records producer threads staged into rings.
    pub const RECORDS_STAGED: &str = "pipeline.records_staged";
    /// Counter: records the commit stage popped.
    pub const RECORDS_COMMITTED: &str = "pipeline.records_committed";
    /// Counter: producer stall waits (every owned ring full — commit
    /// was the bottleneck, the desired steady state).
    pub const PRODUCER_STALLS: &str = "pipeline.producer_stalls";
    /// Counter: consumer stall spins (commit outran production).
    pub const CONSUMER_STALLS: &str = "pipeline.consumer_stalls";
    /// Gauge: producer threads the run used.
    pub const PRODUCERS: &str = "pipeline.producers";
    /// Gauge: per-(core, VM) ring capacity in records.
    pub const RING_CAPACITY: &str = "pipeline.ring_capacity";
    /// Gauge: mean sampled occupancy of the ring being popped, as a
    /// fraction of capacity.
    pub const MEAN_RING_OCCUPANCY: &str = "pipeline.mean_ring_occupancy";
    /// Counter: `pop_block` drains the commit stage took (each is one
    /// shared-index round trip, however many records it delivered).
    pub const BLOCK_DRAINS: &str = "pipeline.block_drains";
    /// Counter: records delivered by block drains.
    pub const BLOCK_DRAINED_RECORDS: &str = "pipeline.block_drained_records";
    /// Gauge: mean records per block drain — the achieved shared-line
    /// amortization factor.
    pub const MEAN_DRAIN_BLOCK: &str = "pipeline.mean_drain_block";
}

/// Instrument names for the L0 hit-way memo in front of the TLB/cache
/// set scans (they land in the stream's final [`InstrumentsRecord`]):
/// how often the last-hit fast path fired and how often its entries
/// were dropped by the invalidation discipline (inserts into the
/// memoized set, flushes, repartitions, context switches).
pub mod l0_metrics {
    /// Counter: set scans skipped by a memo hit, summed over every
    /// memoized component (SRAM TLBs, POM-TLB, TSB, caches, all cores).
    pub const HITS: &str = "l0.hits";
    /// Counter: live memo entries dropped by invalidation, summed the
    /// same way.
    pub const INVALIDATIONS: &str = "l0.invalidations";
}

/// End-of-stream integrity footer.
///
/// Emitted by `StreamRecorder` only when the stream is incomplete —
/// records were dropped by a bounded buffer or writes failed — so
/// clean streams stay byte-identical to earlier format versions while
/// truncated ones are self-describing (`csalt-report --check` fails on
/// a footer with drops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FooterRecord {
    /// Records serialized into the stream before this footer.
    pub records_written: u64,
    /// Whole records discarded by the bounded buffer (never torn).
    pub records_dropped: u64,
    /// Failed sink writes or serialization errors.
    pub write_errors: u64,
}

/// Stream-wide counter and gauge values accumulated by a recorder's
/// instrument API, flushed as the last record before shutdown.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InstrumentsRecord {
    /// Monotonic counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Last-written gauges as `(name, value)`.
    pub gauges: Vec<(String, f64)>,
}

/// One line of a telemetry stream.
///
/// The `Epoch` variant dominates the enum's size, but records are built
/// once per epoch/sample — never on the per-access path — and boxing
/// would leak into every construction and match site as well as the
/// vendored serde derive, so the size imbalance is accepted.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryRecord {
    /// Run provenance header.
    Provenance {
        /// Payload.
        record: ProvenanceRecord,
    },
    /// Per-epoch metric deltas and gauges.
    Epoch {
        /// Payload.
        record: EpochRecord,
    },
    /// Sampled request-level walk trace.
    WalkTrace {
        /// Payload.
        record: WalkTraceRecord,
    },
    /// End-of-run latency histogram summary.
    Histogram {
        /// Payload.
        record: HistogramRecord,
    },
    /// Recorder instrument dump (counters and gauges).
    Instruments {
        /// Payload.
        record: InstrumentsRecord,
    },
    /// Stream-integrity footer (only present on truncated streams).
    Footer {
        /// Payload.
        record: FooterRecord,
    },
}

impl TelemetryRecord {
    /// Short tag used in summaries and CSV type columns.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Provenance { .. } => "provenance",
            Self::Epoch { .. } => "epoch",
            Self::WalkTrace { .. } => "walk_trace",
            Self::Histogram { .. } => "histogram",
            Self::Instruments { .. } => "instruments",
            Self::Footer { .. } => "footer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let rec = TelemetryRecord::WalkTrace {
            record: WalkTraceRecord {
                workload: "gups".into(),
                scheme: "CSALT-D".into(),
                access_index: 4000,
                core: 3,
                context: 7,
                vaddr: 0xdead_beef,
                write: false,
                translation_cycles: 41,
                data_cycles: 120,
                total_cycles: 161,
                l1_tlb_hit: false,
                l2_tlb_hit: false,
                walked: true,
                stages: vec![
                    StageSample {
                        stage: WalkStage::L2Tlb,
                        index: 0,
                        cycles: 17,
                        hit: Some(false),
                        served_by: None,
                    },
                    StageSample {
                        stage: WalkStage::HostPte,
                        index: 0,
                        cycles: 24,
                        hit: None,
                        served_by: Some(ServedBy::L2),
                    },
                ],
            },
        };
        let line = serde_json::to_string(&rec).expect("serialize");
        let back: TelemetryRecord = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, rec);
    }

    #[test]
    fn histogram_record_summarizes_and_rebuilds() {
        let mut h = Log2Histogram::new();
        for v in [3u64, 9, 9, 200, 4096] {
            h.record(v);
        }
        let rec = HistogramRecord::from_histogram("translation_cycles", "w", "s", &h)
            .expect("nonempty histogram");
        assert_eq!(rec.count, 5);
        assert_eq!(rec.max, 4096);
        assert_eq!(rec.to_histogram(), h);
        assert!(HistogramRecord::from_histogram("x", "w", "s", &Log2Histogram::new()).is_none());
    }
}
