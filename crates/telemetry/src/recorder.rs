//! Recorder implementations: where telemetry records go.
//!
//! The [`Recorder`] trait is the single seam between the simulator and
//! the outside world. The hot path only ever sees `&mut dyn Recorder`;
//! with a [`NullRecorder`] every method is a no-op behind an
//! `is_enabled()` check, which is what keeps the instrumented build
//! within the <2% overhead budget the bench suite enforces.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use crate::histogram::Log2Histogram;
use crate::record::{EpochRecord, FooterRecord, InstrumentsRecord, TelemetryRecord};

/// Sink abstraction for telemetry: counters, gauges, log2 histograms
/// and structured records.
///
/// Instrument state (counters/gauges/histograms) is local to each
/// recorder instance — in particular each [`SharedRecorder`] clone keeps
/// its own, so parallel runs never contend on a lock in the per-access
/// path. `flush` drains accumulated instruments into an
/// [`InstrumentsRecord`] where the implementation has a stream.
pub trait Recorder: Send {
    /// Whether this recorder keeps anything at all. Callers may skip
    /// building records when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets the named gauge to `value`.
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records one sample into the named log2 histogram.
    fn observe(&mut self, _name: &'static str, _value: u64) {}

    /// Removes and returns the named histogram, if this recorder has
    /// accumulated one. Lets the producer wrap per-run histograms into
    /// labelled [`crate::record::HistogramRecord`]s at end of run.
    fn take_histogram(&mut self, _name: &str) -> Option<Log2Histogram> {
        None
    }

    /// Emits one structured record.
    fn record(&mut self, rec: &TelemetryRecord);

    /// Flushes buffered output and drains instrument state.
    fn flush(&mut self) {}
}

/// A recorder that drops everything; the default for uninstrumented runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: &TelemetryRecord) {}
}

/// Name-keyed instrument storage shared by the concrete recorders.
///
/// Linear scans over small vectors beat a hash map here: the simulator
/// uses a handful of static instrument names, and `&'static str`
/// comparisons on short names are cheap.
#[derive(Debug, Default)]
struct InstrumentSet {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Log2Histogram)>,
}

impl InstrumentSet {
    fn counter(&mut self, name: &'static str, delta: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            self.counters.push((name, delta));
        }
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.gauges.push((name, value));
        }
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(slot) = self.histograms.iter_mut().find(|(n, _)| *n == name) {
            slot.1.record(value);
        } else {
            let mut h = Log2Histogram::new();
            h.record(value);
            self.histograms.push((name, h));
        }
    }

    fn take_histogram(&mut self, name: &str) -> Option<Log2Histogram> {
        let pos = self.histograms.iter().position(|(n, _)| *n == name)?;
        Some(self.histograms.swap_remove(pos).1)
    }

    fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Drains counters and gauges into a record; histograms are expected
    /// to be claimed via `take_histogram` by the producer (who owns the
    /// workload/scheme labels), so leftovers are dropped silently.
    fn drain(&mut self) -> Option<InstrumentsRecord> {
        if self.counters.is_empty() && self.gauges.is_empty() {
            return None;
        }
        let rec = InstrumentsRecord {
            counters: self
                .counters
                .drain(..)
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
            gauges: self
                .gauges
                .drain(..)
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
        };
        self.histograms.clear();
        Some(rec)
    }
}

/// On-disk stream format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFormat {
    /// One JSON-encoded [`TelemetryRecord`] per line; carries every
    /// record kind.
    Jsonl,
    /// Spreadsheet-friendly flat rows; carries only epoch records
    /// (other kinds are counted in `records_skipped`).
    Csv,
}

impl StreamFormat {
    /// Infers the format from a path extension: `.csv` means CSV,
    /// anything else means JSONL.
    #[must_use]
    pub fn from_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case("csv") => Self::Csv,
            _ => Self::Jsonl,
        }
    }
}

/// Default in-memory buffer size before records are pushed to the sink.
pub const DEFAULT_BUFFER_CAPACITY: usize = 256 * 1024;

const CSV_HEADER: &str = "workload,scheme,epoch,at_access,accesses,instructions,\
translation_cycles,data_cycles,page_walks,page_walk_cycles,l1_tlb_mpki,l2_tlb_mpki,\
l2_cache_mpki,l3_cache_mpki,translation_cpi,walk_cycles_per_walk,context_switches,\
switch_overhead_cycles,l2_data_ways,l3_data_ways,l2_tlb_occupancy,l3_tlb_occupancy,\
ddr_row_hit_rate,stacked_row_hit_rate";

/// A bounded-buffer streaming recorder writing JSONL or CSV.
///
/// Records accumulate in an in-memory byte buffer flushed to the sink
/// whenever it crosses `buffer_capacity`, so a fine-grained epoch
/// stream does not issue one `write` syscall per record. I/O errors
/// never panic the simulation; they are counted in `write_errors`.
///
/// With [`StreamRecorder::with_drop_bound`] the buffer instead models a
/// hard bound (e.g. a non-blocking sink): records that do not fit are
/// dropped *whole* — never torn mid-line — counted in
/// `records_dropped`, and reported in a [`FooterRecord`] at flush time.
pub struct StreamRecorder {
    sink: Box<dyn Write + Send>,
    format: StreamFormat,
    buf: Vec<u8>,
    buffer_capacity: usize,
    /// `Some(bytes)`: hard buffer bound — overflowing records drop
    /// whole instead of forcing a flush; drained only by `flush`.
    drop_bound: Option<usize>,
    instruments: InstrumentSet,
    records_written: u64,
    records_skipped: u64,
    records_dropped: u64,
    write_errors: u64,
    csv_header_written: bool,
    footer_emitted: bool,
}

impl std::fmt::Debug for StreamRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamRecorder")
            .field("format", &self.format)
            .field("records_written", &self.records_written)
            .field("records_skipped", &self.records_skipped)
            .field("records_dropped", &self.records_dropped)
            .field("write_errors", &self.write_errors)
            .finish_non_exhaustive()
    }
}

impl StreamRecorder {
    /// Wraps an arbitrary sink.
    #[must_use]
    pub fn new(sink: Box<dyn Write + Send>, format: StreamFormat) -> Self {
        Self {
            sink,
            format,
            buf: Vec::with_capacity(DEFAULT_BUFFER_CAPACITY.min(64 * 1024)),
            buffer_capacity: DEFAULT_BUFFER_CAPACITY,
            drop_bound: None,
            instruments: InstrumentSet::default(),
            records_written: 0,
            records_skipped: 0,
            records_dropped: 0,
            write_errors: 0,
            csv_header_written: false,
            footer_emitted: false,
        }
    }

    /// Creates (truncating) a file sink, inferring the format from the
    /// extension (`.csv` → CSV, otherwise JSONL).
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        let format = StreamFormat::from_path(path);
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file)), format))
    }

    /// Overrides the buffer flush threshold (bytes). `0` flushes after
    /// every record.
    #[must_use]
    pub fn with_buffer_capacity(mut self, bytes: usize) -> Self {
        self.buffer_capacity = bytes;
        self
    }

    /// Turns the buffer into a hard bound of `bytes`: records that do
    /// not fit are dropped whole (counted, reported in the stream
    /// footer) and the buffer drains only on [`Recorder::flush`].
    #[must_use]
    pub fn with_drop_bound(mut self, bytes: usize) -> Self {
        self.drop_bound = Some(bytes);
        self
    }

    /// Records successfully serialized into the stream so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Records dropped because the format cannot carry them (CSV mode).
    #[must_use]
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// Failed sink writes or serialization errors so far.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Whole records discarded by the drop-bounded buffer so far.
    #[must_use]
    pub fn records_dropped(&self) -> u64 {
        self.records_dropped
    }

    fn push_line(&mut self, line: &str) {
        if let Some(bound) = self.drop_bound {
            // Hard bound: a record either fits whole or is dropped
            // whole — the stream never carries a torn line.
            if self.buf.len() + line.len() + 1 > bound {
                self.records_dropped += 1;
                return;
            }
            self.buf.extend_from_slice(line.as_bytes());
            self.buf.push(b'\n');
            self.records_written += 1;
            return;
        }
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.records_written += 1;
        if self.buf.len() >= self.buffer_capacity {
            self.flush_buf();
        }
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.sink.write_all(&self.buf).is_err() {
            self.write_errors += 1;
        }
        self.buf.clear();
    }

    fn emit(&mut self, rec: &TelemetryRecord) {
        match self.format {
            StreamFormat::Jsonl => match serde_json::to_string(rec) {
                Ok(line) => self.push_line(&line),
                Err(_) => self.write_errors += 1,
            },
            StreamFormat::Csv => {
                if let TelemetryRecord::Epoch { record } = rec {
                    if !self.csv_header_written {
                        self.csv_header_written = true;
                        // The header is not a record: bypass the counter.
                        self.buf.extend_from_slice(CSV_HEADER.as_bytes());
                        self.buf.push(b'\n');
                    }
                    let row = csv_row(record);
                    self.push_line(&row);
                } else {
                    self.records_skipped += 1;
                }
            }
        }
    }
}

fn fmt_opt_u32(v: Option<u32>) -> String {
    v.map_or_else(String::new, |x| x.to_string())
}

fn fmt_opt_rate(v: Option<f64>) -> String {
    v.map_or_else(String::new, |x| format!("{x:.6}"))
}

fn csv_row(r: &EpochRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{},{},{},{},{:.6},{:.6},{},{}",
        r.workload,
        r.scheme,
        r.epoch,
        r.at_access,
        r.accesses,
        r.instructions,
        r.translation_cycles,
        r.data_cycles,
        r.page_walks,
        r.page_walk_cycles,
        r.l1_tlb_mpki,
        r.l2_tlb_mpki,
        r.l2_cache_mpki,
        r.l3_cache_mpki,
        r.translation_cpi,
        r.walk_cycles_per_walk,
        r.context_switches,
        r.switch_overhead_cycles,
        fmt_opt_u32(r.l2_data_ways),
        fmt_opt_u32(r.l3_data_ways),
        r.l2_tlb_occupancy,
        r.l3_tlb_occupancy,
        fmt_opt_rate(r.ddr_row_hit_rate),
        fmt_opt_rate(r.stacked_row_hit_rate),
    )
}

impl Recorder for StreamRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.instruments.counter(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.instruments.gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.instruments.observe(name, value);
    }

    fn take_histogram(&mut self, name: &str) -> Option<Log2Histogram> {
        self.instruments.take_histogram(name)
    }

    fn record(&mut self, rec: &TelemetryRecord) {
        self.emit(rec);
    }

    fn flush(&mut self) {
        if let Some(instruments) = self.instruments.drain() {
            self.emit(&TelemetryRecord::Instruments {
                record: instruments,
            });
        }
        self.flush_buf();
        // Clean streams carry no footer (byte-identical to before the
        // footer existed); truncated or erroring streams get exactly
        // one, emitted after the buffer drained so it always fits.
        if (self.records_dropped > 0 || self.write_errors > 0) && !self.footer_emitted {
            self.footer_emitted = true;
            self.emit(&TelemetryRecord::Footer {
                record: FooterRecord {
                    records_written: self.records_written,
                    records_dropped: self.records_dropped,
                    write_errors: self.write_errors,
                },
            });
            self.flush_buf();
        }
        if self.sink.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

impl Drop for StreamRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A cloneable handle over one shared [`StreamRecorder`], for parallel
/// experiment sweeps.
///
/// Structured records go through a mutex to the shared stream; the
/// instrument API (counters, gauges, histograms) stays **clone-local**
/// so per-access `observe` calls never take the lock. Each worker run
/// gets its own clone, flushes its instruments at end of run, and the
/// owner calls [`SharedRecorder::finish`] once at program exit.
pub struct SharedRecorder {
    stream: Arc<Mutex<StreamRecorder>>,
    instruments: InstrumentSet,
}

impl std::fmt::Debug for SharedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRecorder").finish_non_exhaustive()
    }
}

impl Clone for SharedRecorder {
    /// Clones the stream handle with a **fresh** (empty) instrument set.
    fn clone(&self) -> Self {
        Self {
            stream: Arc::clone(&self.stream),
            instruments: InstrumentSet::default(),
        }
    }
}

impl SharedRecorder {
    /// Wraps a stream recorder for shared use.
    #[must_use]
    pub fn new(stream: StreamRecorder) -> Self {
        Self {
            stream: Arc::new(Mutex::new(stream)),
            instruments: InstrumentSet::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StreamRecorder> {
        self.stream.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flushes the underlying stream to its sink. Call once when the
    /// whole sweep is done.
    pub fn finish(&self) {
        self.lock().flush();
    }

    /// Total records written to the shared stream.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.lock().records_written()
    }

    /// Failed writes on the shared stream.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.lock().write_errors()
    }
}

impl Recorder for SharedRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.instruments.counter(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.instruments.gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.instruments.observe(name, value);
    }

    fn take_histogram(&mut self, name: &str) -> Option<Log2Histogram> {
        self.instruments.take_histogram(name)
    }

    fn record(&mut self, rec: &TelemetryRecord) {
        self.lock().emit(rec);
    }

    fn flush(&mut self) {
        if let Some(instruments) = self.instruments.drain() {
            self.lock().emit(&TelemetryRecord::Instruments {
                record: instruments,
            });
        }
    }
}

/// An in-memory recorder for tests and in-process consumers.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    records: Vec<TelemetryRecord>,
    instruments: InstrumentSet,
}

impl MemoryRecorder {
    /// An empty in-memory recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All records received so far, in order.
    #[must_use]
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// Consumes the recorder, returning its records.
    #[must_use]
    pub fn into_records(self) -> Vec<TelemetryRecord> {
        self.records
    }

    /// Current value of a named counter, if touched.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.instruments.counter_value(name)
    }

    /// Last value written to a named gauge, if any.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.instruments.gauge_value(name)
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.instruments.counter(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.instruments.gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.instruments.observe(name, value);
    }

    fn take_histogram(&mut self, name: &str) -> Option<Log2Histogram> {
        self.instruments.take_histogram(name)
    }

    fn record(&mut self, rec: &TelemetryRecord) {
        self.records.push(rec.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ProvenanceRecord, TelemetryRecord};
    use std::sync::mpsc;

    fn provenance(tag: &str) -> TelemetryRecord {
        TelemetryRecord::Provenance {
            record: ProvenanceRecord {
                tool: "test".into(),
                format_version: crate::record::FORMAT_VERSION,
                workload: tag.into(),
                scheme: "Conventional".into(),
                sample_interval: 0,
                config_json: "{}".into(),
            },
        }
    }

    /// A sink that hands written bytes back through a channel so tests
    /// can inspect what a Box<dyn Write + Send> received.
    struct ChannelSink(mpsc::Sender<Vec<u8>>);

    impl Write for ChannelSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .send(buf.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "closed"))?;
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drain(rx: &mpsc::Receiver<Vec<u8>>) -> String {
        let mut bytes = Vec::new();
        while let Ok(chunk) = rx.try_recv() {
            bytes.extend_from_slice(&chunk);
        }
        String::from_utf8(bytes).expect("utf8 stream")
    }

    #[test]
    fn jsonl_stream_parses_back() {
        let (tx, rx) = mpsc::channel();
        let mut rec = StreamRecorder::new(Box::new(ChannelSink(tx)), StreamFormat::Jsonl);
        rec.record(&provenance("w0"));
        rec.counter("runs", 2);
        rec.gauge("ipc", 1.25);
        rec.flush();
        let text = drain(&rx);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "provenance + instruments: {text}");
        let first: TelemetryRecord = serde_json::from_str(lines[0]).expect("line 0 parses");
        assert_eq!(first, provenance("w0"));
        let second: TelemetryRecord = serde_json::from_str(lines[1]).expect("line 1 parses");
        match second {
            TelemetryRecord::Instruments { record } => {
                assert_eq!(record.counters, vec![("runs".to_owned(), 2)]);
                assert_eq!(record.gauges.len(), 1);
            }
            other => panic!("expected instruments record, got {other:?}"),
        }
        assert_eq!(rec.write_errors(), 0);
    }

    #[test]
    fn bounded_buffer_defers_writes() {
        let (tx, rx) = mpsc::channel();
        let mut rec = StreamRecorder::new(Box::new(ChannelSink(tx)), StreamFormat::Jsonl)
            .with_buffer_capacity(usize::MAX);
        rec.record(&provenance("w1"));
        assert!(drain(&rx).is_empty(), "buffered record must not hit sink");
        rec.flush();
        assert!(!drain(&rx).is_empty(), "flush pushes the buffer");
    }

    #[test]
    fn drop_bound_drops_whole_records_and_reports_a_footer() {
        let (tx, rx) = mpsc::channel();
        let one_record = serde_json::to_string(&provenance("w9")).expect("serialize");
        // Room for exactly two records (plus newlines), not three.
        let bound = (one_record.len() + 1) * 2 + 1;
        let mut rec = StreamRecorder::new(Box::new(ChannelSink(tx)), StreamFormat::Jsonl)
            .with_drop_bound(bound);
        for _ in 0..5 {
            rec.record(&provenance("w9"));
        }
        assert_eq!(rec.records_written(), 2);
        assert_eq!(rec.records_dropped(), 3);
        assert!(drain(&rx).is_empty(), "drop-bounded buffer defers writes");
        rec.flush();
        let text = drain(&rx);
        let lines: Vec<&str> = text.lines().collect();
        // Every line parses — dropped records vanished whole, no tears.
        let parsed: Vec<TelemetryRecord> = lines
            .iter()
            .map(|l| serde_json::from_str(l).expect("untorn line"))
            .collect();
        assert_eq!(parsed.len(), 3, "2 kept + footer: {text}");
        match parsed.last().expect("footer line") {
            TelemetryRecord::Footer { record } => {
                assert_eq!(record.records_dropped, 3);
                assert_eq!(record.records_written, 2);
                assert_eq!(record.write_errors, 0);
            }
            other => panic!("expected footer, got {other:?}"),
        }
    }

    #[test]
    fn clean_stream_has_no_footer() {
        let (tx, rx) = mpsc::channel();
        let mut rec = StreamRecorder::new(Box::new(ChannelSink(tx)), StreamFormat::Jsonl)
            .with_drop_bound(1 << 20);
        rec.record(&provenance("w10"));
        rec.flush();
        let text = drain(&rx);
        assert_eq!(text.lines().count(), 1, "no footer on a clean stream");
        assert!(!text.contains("Footer"));
    }

    #[test]
    fn csv_mode_keeps_only_epoch_rows() {
        let (tx, rx) = mpsc::channel();
        let mut rec = StreamRecorder::new(Box::new(ChannelSink(tx)), StreamFormat::Csv)
            .with_buffer_capacity(0);
        rec.record(&provenance("w2"));
        assert_eq!(rec.records_skipped(), 1);
        assert!(drain(&rx).is_empty());
    }

    #[test]
    fn shared_recorder_clones_do_not_share_instruments() {
        let (tx, _rx) = mpsc::channel();
        let base = StreamRecorder::new(Box::new(ChannelSink(tx)), StreamFormat::Jsonl);
        let mut a = SharedRecorder::new(base);
        a.observe("lat", 8);
        let mut b = a.clone();
        assert!(b.take_histogram("lat").is_none(), "clone starts empty");
        assert_eq!(
            a.take_histogram("lat").map(|h| h.total()),
            Some(1),
            "original keeps its samples"
        );
    }

    #[test]
    fn memory_recorder_accumulates() {
        let mut m = MemoryRecorder::new();
        m.record(&provenance("w3"));
        m.counter("c", 1);
        m.counter("c", 4);
        m.observe("h", 31);
        assert_eq!(m.records().len(), 1);
        assert_eq!(m.counter_value("c"), Some(5));
        let h = m.take_histogram("h").expect("histogram exists");
        assert_eq!(h.total(), 1);
        assert_eq!(h.max(), Some(31));
    }

    #[test]
    fn format_inference_from_extension() {
        assert_eq!(
            StreamFormat::from_path(Path::new("out.csv")),
            StreamFormat::Csv
        );
        assert_eq!(
            StreamFormat::from_path(Path::new("out.jsonl")),
            StreamFormat::Jsonl
        );
        assert_eq!(
            StreamFormat::from_path(Path::new("noext")),
            StreamFormat::Jsonl
        );
    }
}
