//! Regenerates Figure 15: sensitivity to the repartitioning epoch length.

fn main() {
    let table = csalt_sim::experiments::fig15();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 15 (normalized to the 256K default): the default \
                      epoch is best on most workloads; ccomp and \
                      streamcluster slightly prefer other lengths.",
        },
    );
}
