//! Regenerates Table 1: average page-walk cycles, native vs virtualized.

fn main() {
    let table = csalt_sim::experiments::tab01();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Table 1 (native/virtualized cycles): canneal 53/61, \
                      connectedcomponent 44/1158, graph500 79/80, gups 43/70, \
                      pagerank 51/61, streamcluster 74/76 — virtualization \
                      never helps and hurts scattered workloads most.",
        },
    );
}
