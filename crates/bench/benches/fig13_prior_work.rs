//! Regenerates Figure 13: comparison against TSB and DIP.

fn main() {
    let table = csalt_sim::experiments::fig13();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 13 (normalized to POM-TLB): TSB underperforms \
                      every other scheme on most workloads; DIP tracks \
                      POM-TLB (~1.0); CSALT-CD wins by ~30% over DIP.",
        },
    );
}
