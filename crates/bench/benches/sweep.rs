//! Sweep-engine timing: cold vs. warm wall-clock for a deduplicated
//! figure-style suite, recorded in `BENCH_sweep.json` at the repo root.
//!
//! Where `throughput.rs` tracks how fast one simulation runs, this
//! bench tracks how fast the *suite* layer turns the evaluation crank:
//! a cold pass (fresh cache directory) must simulate each unique config
//! exactly once with cross-figure duplicates folded, and a warm pass
//! over the same cache must simulate **nothing** and reproduce
//! byte-identical results. Both invariants are asserted here (the CI
//! cache gate asserts them again at merge time via
//! `csalt-experiments cache-gate`); the timings and hit/dedup counts
//! are what gets recorded.
//!
//! Modes:
//!
//! * default (`cargo bench -p csalt-bench --bench sweep`) —
//!   full-length suite; **rewrites** `BENCH_sweep.json`.
//! * `CSALT_SMOKE=1` — shorter suite, asserts the same invariants,
//!   never writes the file.

use csalt_sim::sweep::{engine_fingerprint, git_dirty, git_rev};
use csalt_sim::{SimConfig, SimResult, Sweep, SweepOptions, SweepStats};
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The recorded sweep trajectory: `BENCH_sweep.json`.
#[derive(Debug, Serialize, Deserialize)]
struct SweepRecord {
    /// `git rev-parse --short HEAD` at measurement time (shared
    /// fingerprint helper).
    git_rev: String,
    /// Whether the tree had uncommitted changes at measurement time.
    /// Record mode refuses to replace a clean record for the same
    /// revision with dirty numbers (`CSALT_BENCH_FORCE=1` overrides).
    dirty: bool,
    /// Full engine fingerprint the cache was scoped to.
    engine_fingerprint: String,
    /// Configs submitted across the simulated "figures".
    configs_submitted: usize,
    /// Distinct configs among them.
    configs_unique: usize,
    /// Per-core accesses (measured phase) of each config.
    accesses_per_core: u64,
    /// Cold pass: fresh cache directory, every unique config simulated.
    cold_secs: f64,
    /// Warm pass: same cache, zero simulations.
    warm_secs: f64,
    /// Cold-pass sweep counters.
    cold: SweepStats,
    /// Warm-pass sweep counters.
    warm: SweepStats,
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A figure-suite stand-in with genuine cross-figure overlap: the
/// fig07 grid (4 schemes × workloads) plus fig08/fig13-style
/// re-submissions of its baselines.
fn suite(accesses: u64) -> Vec<SimConfig> {
    let mk = |w: &WorkloadSpec, s: TranslationScheme| {
        let mut c = SimConfig::new(w.clone(), s);
        c.system.cores = 2;
        c.system.cs_interval_cycles = 40_000;
        c.system.epoch_accesses = 10_000;
        c.accesses_per_core = accesses;
        c.warmup_accesses_per_core = accesses / 2;
        c.scale = 0.1;
        c
    };
    let workloads = [
        WorkloadSpec::pair("g500_gups", BenchKind::Graph500, BenchKind::Gups),
        WorkloadSpec::homogeneous("gups", BenchKind::Gups),
        WorkloadSpec::homogeneous("canneal", BenchKind::Canneal),
    ];
    let fig07 = [
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::CsaltCd,
    ];
    let mut configs = Vec::new();
    for w in &workloads {
        for s in fig07 {
            configs.push(mk(w, s));
        }
    }
    // "fig08": conventional + pom-tlb again; "fig13": pom-tlb + csalt-cd.
    for w in &workloads {
        for s in [TranslationScheme::Conventional, TranslationScheme::PomTlb] {
            configs.push(mk(w, s));
        }
        for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
            configs.push(mk(w, s));
        }
    }
    configs
}

fn json(results: &[SimResult]) -> String {
    serde_json::to_string(results).expect("results serialize")
}

/// Same guard as `throughput.rs`: never silently replace a clean-tree
/// record for the current revision with dirty-tree numbers. Parses the
/// old file leniently so any schema vintage still protects itself.
fn refuse_dirty_overwrite(path: &Path, rev: &str, dirty: bool) {
    if !dirty || std::env::var("CSALT_BENCH_FORCE").is_ok() {
        return;
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Ok(old) = serde_json::from_str::<serde_json::Value>(&text) else {
        return;
    };
    let field = |name: &str| {
        old.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    };
    let old_rev = match field("git_rev") {
        Some(serde_json::Value::Str(s)) => Some(s.as_str()),
        _ => None,
    };
    let old_dirty = matches!(field("dirty"), Some(serde_json::Value::Bool(true)));
    if old_rev == Some(rev) && !old_dirty {
        panic!(
            "refusing to overwrite {}: it records rev {rev} from a clean tree, and the \
             tree is now dirty — commit first, or set CSALT_BENCH_FORCE=1 to override",
            path.display(),
        );
    }
}

fn main() {
    let smoke = std::env::var_os("CSALT_SMOKE").is_some();
    let accesses: u64 = if smoke { 6_000 } else { 30_000 };
    let configs = suite(accesses);
    let unique = configs
        .iter()
        .map(csalt_sim::sweep::config_key)
        .collect::<std::collections::HashSet<_>>()
        .len();

    let dir = std::env::temp_dir().join(format!("csalt-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let t = Instant::now();
    let cold_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let cold_results = cold_sweep.run_batch(configs.clone());
    let cold_secs = t.elapsed().as_secs_f64();
    let cold = cold_sweep.stats();
    assert_eq!(
        cold.simulated as usize, unique,
        "cold pass must simulate each unique config exactly once"
    );
    assert_eq!(
        cold.deduped as usize,
        configs.len() - unique,
        "cross-figure duplicates must be folded"
    );

    let t = Instant::now();
    let warm_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let warm_results = warm_sweep.run_batch(configs.clone());
    let warm_secs = t.elapsed().as_secs_f64();
    let warm = warm_sweep.stats();
    assert_eq!(warm.simulated, 0, "warm pass must not simulate");
    assert_eq!(
        json(&cold_results),
        json(&warm_results),
        "warm results must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let record = SweepRecord {
        git_rev: git_rev(),
        dirty: git_dirty(),
        engine_fingerprint: engine_fingerprint(),
        configs_submitted: configs.len(),
        configs_unique: unique,
        accesses_per_core: accesses,
        cold_secs,
        warm_secs,
        cold,
        warm,
    };
    println!(
        "sweep [{}]: {} configs ({} unique, {} deduped) cold {:.2}s -> warm {:.3}s \
         ({} cache hits, 0 simulations){}",
        record.engine_fingerprint,
        record.configs_submitted,
        record.configs_unique,
        record.cold.deduped,
        record.cold_secs,
        record.warm_secs,
        record.warm.cache_hits,
        if smoke { " [smoke]" } else { "" },
    );

    if !smoke {
        let path = repo_root().join("BENCH_sweep.json");
        refuse_dirty_overwrite(&path, &record.git_rev, record.dirty);
        let mut text = serde_json::to_string_pretty(&record).expect("record serializes");
        text.push('\n');
        std::fs::write(&path, text).expect("BENCH_sweep.json written");
        println!("recorded to {}", path.display());
        csalt_bench::append_history(
            "sweep",
            &[
                ("cold_secs".to_owned(), record.cold_secs, "lower"),
                ("warm_secs".to_owned(), record.warm_secs, "lower"),
            ],
        );
    }
}
