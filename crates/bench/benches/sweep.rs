//! Sweep-engine timing: cold vs. warm wall-clock for a deduplicated
//! figure-style suite, recorded in `BENCH_sweep.json` at the repo root.
//!
//! Where `throughput.rs` tracks how fast one simulation runs, this
//! bench tracks how fast the *suite* layer turns the evaluation crank:
//! a cold pass (fresh cache directory) must simulate each unique config
//! exactly once with cross-figure duplicates folded, and a warm pass
//! over the same cache must simulate **nothing** and reproduce
//! byte-identical results. Both invariants are asserted here (the CI
//! cache gate asserts them again at merge time via
//! `csalt-experiments cache-gate`); the timings and hit/dedup counts
//! are what gets recorded.
//!
//! Modes:
//!
//! * default (`cargo bench -p csalt-bench --bench sweep`) —
//!   full-length suite; **rewrites** `BENCH_sweep.json`.
//! * `CSALT_SMOKE=1` — shorter suite, asserts the same invariants,
//!   never writes the file.

use csalt_sim::sweep::{engine_fingerprint, git_dirty, git_rev};
use csalt_sim::{SimConfig, SimResult, Sweep, SweepOptions, SweepStats};
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The recorded sweep trajectory: `BENCH_sweep.json`.
#[derive(Debug, Serialize, Deserialize)]
struct SweepRecord {
    /// `git rev-parse --short HEAD` at measurement time (shared
    /// fingerprint helper).
    git_rev: String,
    /// Whether the tree had uncommitted changes at measurement time.
    /// Record mode refuses to replace a clean record for the same
    /// revision with dirty numbers (`CSALT_BENCH_FORCE=1` overrides).
    dirty: bool,
    /// Full engine fingerprint the cache was scoped to.
    engine_fingerprint: String,
    /// Configs submitted across the simulated "figures".
    configs_submitted: usize,
    /// Distinct configs among them.
    configs_unique: usize,
    /// Per-core accesses (measured phase) of each config.
    accesses_per_core: u64,
    /// Cold pass with checkpointing and the shared trace store
    /// disabled: fresh cache directory, every unique config simulated
    /// straight through (the pre-checkpoint baseline).
    cold_secs: f64,
    /// Ablation cell: checkpointed warmup on, shared trace store off.
    cold_ckpt_only_secs: f64,
    /// Ablation cell: shared trace store on, checkpointed warmup off.
    cold_store_only_secs: f64,
    /// Cold pass with checkpointed warmup + shared staged traces
    /// enabled: same suite, fresh directory, byte-identical results.
    cold_ckpt_secs: f64,
    /// `cold_secs / cold_ckpt_secs` — the fork-from-snapshot speedup.
    ckpt_speedup: f64,
    /// Warm pass: same cache, zero simulations.
    warm_secs: f64,
    /// Cold-baseline sweep counters.
    cold: SweepStats,
    /// Checkpointed-cold sweep counters (`restored` > 0 proves the
    /// fork path ran).
    cold_ckpt: SweepStats,
    /// Warm-pass sweep counters.
    warm: SweepStats,
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A figure-suite stand-in with genuine cross-figure overlap: the
/// fig07 grid (4 schemes × workloads) plus fig08/fig13-style
/// re-submissions of its baselines, plus — like the real figure
/// harnesses — per-config measured-phase variants (an occupancy-scan
/// figure, a half-length zoom and a quarter-length convergence row)
/// that share the base config's warmup prefix exactly. Warmup equals
/// the measured length, matching `experiments::default_config`.
///
/// Full mode runs the real per-figure system parameters
/// (`scaled::QUANTUM_10MS` / `scaled::EPOCH_256K` / full scale) so the
/// warmup share of each run is what the actual figure suite pays;
/// smoke mode shrinks them along with the access count to stay fast.
fn suite(accesses: u64, smoke: bool) -> Vec<SimConfig> {
    let mk = |w: &WorkloadSpec, s: TranslationScheme| {
        let mut c = SimConfig::new(w.clone(), s);
        c.system.cores = 2;
        c.system.cs_interval_cycles = if smoke { 40_000 } else { 400_000 };
        c.system.epoch_accesses = if smoke { 10_000 } else { 32_000 };
        c.accesses_per_core = accesses;
        c.warmup_accesses_per_core = accesses;
        c.scale = if smoke { 0.1 } else { 1.0 };
        c
    };
    let workloads = [
        WorkloadSpec::pair("g500_gups", BenchKind::Graph500, BenchKind::Gups),
        WorkloadSpec::homogeneous("gups", BenchKind::Gups),
        WorkloadSpec::homogeneous("canneal", BenchKind::Canneal),
    ];
    let fig07 = [
        TranslationScheme::Conventional,
        TranslationScheme::PomTlb,
        TranslationScheme::CsaltD,
        TranslationScheme::CsaltCd,
    ];
    let mut configs = Vec::new();
    for w in &workloads {
        for s in fig07 {
            configs.push(mk(w, s));
        }
    }
    // "fig08": conventional + pom-tlb again; "fig13": pom-tlb + csalt-cd.
    for w in &workloads {
        for s in [TranslationScheme::Conventional, TranslationScheme::PomTlb] {
            configs.push(mk(w, s));
        }
        for s in [TranslationScheme::PomTlb, TranslationScheme::CsaltCd] {
            configs.push(mk(w, s));
        }
    }
    // Measured-phase variants of every fig07 config: an occupancy-scan
    // figure, a half-length zoom and a quarter-length convergence row.
    // All share their base's warmup prefix — the fork-from-snapshot
    // groups a cold suite restores in.
    for w in &workloads {
        for s in fig07 {
            let mut occ = mk(w, s);
            occ.occupancy_scan_interval = accesses / 32;
            configs.push(occ);
            let mut zoom = mk(w, s);
            zoom.accesses_per_core = accesses / 2;
            configs.push(zoom);
            let mut quarter = mk(w, s);
            quarter.accesses_per_core = accesses / 4;
            configs.push(quarter);
        }
    }
    configs
}

fn json(results: &[SimResult]) -> String {
    serde_json::to_string(results).expect("results serialize")
}

/// Same guard as `throughput.rs`: never silently replace a clean-tree
/// record for the current revision with dirty-tree numbers. Parses the
/// old file leniently so any schema vintage still protects itself.
fn refuse_dirty_overwrite(path: &Path, rev: &str, dirty: bool) {
    if !dirty || std::env::var("CSALT_BENCH_FORCE").is_ok() {
        return;
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Ok(old) = serde_json::from_str::<serde_json::Value>(&text) else {
        return;
    };
    let field = |name: &str| {
        old.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    };
    let old_rev = match field("git_rev") {
        Some(serde_json::Value::Str(s)) => Some(s.as_str()),
        _ => None,
    };
    let old_dirty = matches!(field("dirty"), Some(serde_json::Value::Bool(true)));
    if old_rev == Some(rev) && !old_dirty {
        panic!(
            "refusing to overwrite {}: it records rev {rev} from a clean tree, and the \
             tree is now dirty — commit first, or set CSALT_BENCH_FORCE=1 to override",
            path.display(),
        );
    }
}

fn main() {
    let smoke = std::env::var_os("CSALT_SMOKE").is_some();
    // Full mode runs the real per-figure scale (`scaled::ACCESSES_PER_CORE`
    // with warmup = accesses): at smaller sizes the timed warmup is a
    // trivial fraction of a run and a warmup checkpoint has nothing to
    // save, which would understate — not overstate — the suite effect.
    let accesses: u64 = if smoke { 6_000 } else { 120_000 };
    let configs = suite(accesses, smoke);
    let unique = configs
        .iter()
        .map(csalt_sim::sweep::config_key)
        .collect::<std::collections::HashSet<_>>()
        .len();

    // Pass 1 — cold baseline: checkpointing and the shared trace store
    // disabled, fresh cache directory. (Both layers resolve their
    // directory from the environment, so the env is pointed at the
    // pass's own directory throughout.)
    let dir = std::env::temp_dir().join(format!("csalt-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("CSALT_CACHE_DIR", &dir);
    std::env::set_var("CSALT_CKPT", "off");
    std::env::set_var("CSALT_TRACE_STORE", "off");
    let t = Instant::now();
    let cold_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let cold_results = cold_sweep.run_batch(configs.clone());
    let cold_secs = t.elapsed().as_secs_f64();
    let cold = cold_sweep.stats();
    assert_eq!(
        cold.simulated as usize, unique,
        "cold pass must simulate each unique config exactly once"
    );
    assert_eq!(
        cold.deduped as usize,
        configs.len() - unique,
        "cross-figure duplicates must be folded"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Ablation cells — each layer alone, fresh directory each time,
    // byte-identical to the baseline. These two timings plus the
    // baseline and pass 2 fill the EXPERIMENTS.md cold-suite ablation
    // table.
    let ablation = |ckpt: &str, store: &str| {
        std::env::set_var("CSALT_CKPT", ckpt);
        std::env::set_var("CSALT_TRACE_STORE", store);
        csalt_sim::trace_store::clear_resident();
        let t = Instant::now();
        let sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
        let results = sweep.run_batch(configs.clone());
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            json(&cold_results),
            json(&results),
            "ablation pass (ckpt={ckpt}, store={store}) must be byte-identical to the baseline"
        );
        let _ = std::fs::remove_dir_all(&dir);
        secs
    };
    let cold_ckpt_only_secs = ablation("on", "off");
    let cold_store_only_secs = ablation("off", "on");

    // Pass 2 — checkpointed cold: same suite, fresh directory,
    // checkpointed warmup + shared staged traces on. Must reproduce
    // the baseline byte-for-byte and actually fork from snapshots.
    std::env::set_var("CSALT_CKPT", "on");
    std::env::set_var("CSALT_TRACE_STORE", "on");
    csalt_sim::trace_store::clear_resident();
    let t = Instant::now();
    let ckpt_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let ckpt_results = ckpt_sweep.run_batch(configs.clone());
    let cold_ckpt_secs = t.elapsed().as_secs_f64();
    let cold_ckpt = ckpt_sweep.stats();
    assert_eq!(
        cold_ckpt.simulated as usize, unique,
        "checkpointed cold pass must still simulate each unique config"
    );
    assert_eq!(
        json(&cold_results),
        json(&ckpt_results),
        "checkpointed cold results must be byte-identical to the baseline"
    );
    assert!(
        cold_ckpt.restored > 0,
        "checkpointed cold pass must restore at least one warmup snapshot"
    );
    let ckpt_speedup = cold_secs / cold_ckpt_secs.max(f64::MIN_POSITIVE);

    // Pass 3 — warm: same cache as pass 2, zero simulations.
    let t = Instant::now();
    let warm_sweep = Sweep::new(SweepOptions::with_dir(dir.clone()));
    let warm_results = warm_sweep.run_batch(configs.clone());
    let warm_secs = t.elapsed().as_secs_f64();
    let warm = warm_sweep.stats();
    assert_eq!(warm.simulated, 0, "warm pass must not simulate");
    assert_eq!(
        json(&cold_results),
        json(&warm_results),
        "warm results must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
    std::env::remove_var("CSALT_CACHE_DIR");
    std::env::remove_var("CSALT_CKPT");
    std::env::remove_var("CSALT_TRACE_STORE");

    let record = SweepRecord {
        git_rev: git_rev(),
        dirty: git_dirty(),
        engine_fingerprint: engine_fingerprint(),
        configs_submitted: configs.len(),
        configs_unique: unique,
        accesses_per_core: accesses,
        cold_secs,
        cold_ckpt_only_secs,
        cold_store_only_secs,
        cold_ckpt_secs,
        ckpt_speedup,
        warm_secs,
        cold,
        cold_ckpt,
        warm,
    };
    println!(
        "sweep [{}]: {} configs ({} unique, {} deduped) cold {:.2}s \
         [ckpt-only {:.2}s, store-only {:.2}s] -> ckpt cold {:.2}s \
         ({:.2}x, {} restored) -> warm {:.3}s ({} cache hits, 0 simulations){}",
        record.engine_fingerprint,
        record.configs_submitted,
        record.configs_unique,
        record.cold.deduped,
        record.cold_secs,
        record.cold_ckpt_only_secs,
        record.cold_store_only_secs,
        record.cold_ckpt_secs,
        record.ckpt_speedup,
        record.cold_ckpt.restored,
        record.warm_secs,
        record.warm.cache_hits,
        if smoke { " [smoke]" } else { "" },
    );

    // The acceptance bar: a checkpointed cold suite ≥1.5× the
    // baseline (full mode; smoke sizes are dominated by fixed
    // per-checkpoint costs and only report). Below 2× is a warning.
    // Checked after the summary line so a failure still prints every
    // pass timing, but before the record is written.
    if !smoke {
        assert!(
            ckpt_speedup >= 1.5,
            "checkpointed cold suite speedup {ckpt_speedup:.2}x is below the 1.5x bar"
        );
        if ckpt_speedup < 2.0 {
            eprintln!("warning: checkpointed cold speedup {ckpt_speedup:.2}x is below 2x");
        }
    }

    if !smoke {
        let path = repo_root().join("BENCH_sweep.json");
        refuse_dirty_overwrite(&path, &record.git_rev, record.dirty);
        let mut text = serde_json::to_string_pretty(&record).expect("record serializes");
        text.push('\n');
        std::fs::write(&path, text).expect("BENCH_sweep.json written");
        println!("recorded to {}", path.display());
        csalt_bench::append_history(
            "sweep",
            &[
                ("cold_secs".to_owned(), record.cold_secs, "lower"),
                ("cold_ckpt_secs".to_owned(), record.cold_ckpt_secs, "lower"),
                ("warm_secs".to_owned(), record.warm_secs, "lower"),
            ],
        );
    }
}
