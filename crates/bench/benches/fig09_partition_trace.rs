//! Regenerates Figure 9: the TLB way-allocation of the L2/L3 caches over
//! time for connected component under CSALT-CD.

fn main() {
    let trace = csalt_sim::experiments::fig09();
    println!("== Figure 9: fraction of cache ways allocated to TLB entries over time (ccomp, CSALT-CD) ==");
    println!(
        "{:<12}{:>16}{:>16}",
        "progress", "l2_tlb_frac", "l3_tlb_frac"
    );
    // The two traces have independent epochs; print the merged timeline.
    let mut points: Vec<(f64, Option<f64>, Option<f64>)> = Vec::new();
    for &(p, f) in &trace.l2 {
        points.push((p, Some(f), None));
    }
    for &(p, f) in &trace.l3 {
        points.push((p, None, Some(f)));
    }
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite progress"));
    for (p, l2, l3) in points {
        let fmt = |v: Option<f64>| {
            v.map(|x| format!("{x:>16.3}"))
                .unwrap_or_else(|| format!("{:>16}", "-"))
        };
        println!("{p:<12.3}{}{}", fmt(l2), fmt(l3));
    }
    println!();
    println!(
        "paper: Figure 9 shows the TLB allocation tracking ccomp's iteration \
         phases, with the L3 TLB share dipping when the L2 TLB share rises."
    );
}
