//! Regenerates Figure 14: sensitivity to the number of VM contexts.

fn main() {
    let table = csalt_sim::experiments::fig14();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 14: CSALT's gain over POM-TLB grows with context \
                      count — smallest at 1 context, ~25% at 2, ~33% at 4.",
        },
    );
}
