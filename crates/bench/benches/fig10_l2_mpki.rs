//! Regenerates Figure 10: relative L2 data-cache MPKI vs POM-TLB.

fn main() {
    let cmp = csalt_sim::experiments::main_comparison();
    csalt_bench::report(
        &cmp.fig10(),
        &csalt_bench::PaperReference {
            summary: "Figure 10: CSALT-D/CD reduce L2 MPKI by up to 30% \
                      (ccomp); geomean reduction is modest (~5-10%).",
        },
    );
}
