//! Steady-state simulator throughput per translation scheme — the
//! perf-trajectory gate.
//!
//! Every figure replays hundreds of millions of accesses through
//! `MemoryHierarchy::access`, so accesses/sec is the binding constraint
//! on how many scenarios the harness can afford. This bench measures it
//! on a fig07-style configuration (virtualized, 2 contexts/core, scaled
//! quantum and epoch, the `graph500_gups` pairing) for the four Figure 7
//! schemes and records the result in `BENCH_throughput.json` at the repo
//! root, so future PRs are held to the recorded floor.
//!
//! Modes:
//!
//! * default (`cargo bench -p csalt-bench --bench throughput`) —
//!   full-length measurement, best of 3 rounds per scheme; **rewrites**
//!   `BENCH_throughput.json` with the new numbers and the current git
//!   revision. Run this after any intentional perf change.
//! * `CSALT_SMOKE=1` — short run used by `ci.sh`: measures each scheme
//!   at the *smoke* length, compares against the recorded smoke-length
//!   floor (like-for-like: short runs are systematically slower than
//!   the full-length rate because less of the modelled state is warm),
//!   and **fails** if any scheme drops more than 20% below it. The
//!   fast-forward and trace-replay floors are held in the same pass.
//!   Retries a failing comparison up to two more times, keeping each
//!   case's best rate, so a transient co-tenant noise burst does not
//!   fail the gate. Never writes the file.
//!
//! The throughput metric counts every simulated access (warmup +
//! measured phase — both run the identical hot path) divided by the
//! run's wall time, minimized over rounds to reject scheduler noise.

use csalt_sim::{experiments, run_inline, run_pipelined, SimConfig, WarmupMode};
use csalt_types::{geomean, Asid, TranslationHint, TranslationScheme};
use csalt_workloads::{BenchKind, TraceFile, TraceGenerator, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Tolerated drop below the recorded accesses/sec before the smoke
/// gate fails (covers machine-to-machine and co-tenant noise).
const MAX_REGRESSION: f64 = 0.20;

/// Pipeline speedup the record-mode run expects on a host with at
/// least [`SPEEDUP_MIN_THREADS`] hardware threads (warning, not gate —
/// CI gates must stay meaningful on small runners).
const SPEEDUP_TARGET: f64 = 1.25;
/// Host threads below which the speedup warning is suppressed: with
/// fewer, producers and the commit stage share cores and the pipelined
/// mode measures coordination overhead, not overlap.
const SPEEDUP_MIN_THREADS: usize = 4;

/// The recorded perf trajectory: `BENCH_throughput.json`.
#[derive(Debug, Serialize, Deserialize)]
struct ThroughputRecord {
    /// `git rev-parse --short HEAD` at measurement time.
    git_rev: String,
    /// Whether the tree had uncommitted changes at measurement time.
    /// Record mode refuses to replace a clean record for the same
    /// revision with dirty numbers (see `refuse_dirty_overwrite`).
    dirty: bool,
    /// `available_parallelism` of the recording host — context for the
    /// pipeline columns (speedup is only meaningful with ≥4 threads).
    host_threads: usize,
    /// Workload pairing measured (fig07 x-axis label).
    workload: String,
    /// Simulated cores.
    cores: u32,
    /// Measured-phase accesses per core.
    accesses_per_core: u64,
    /// Warmup accesses per core (also counted — same hot path).
    warmup_accesses_per_core: u64,
    /// Per-scheme steady-state throughput, in fig07 presentation order.
    schemes: Vec<SchemeThroughput>,
    /// Functional fast-forward accesses/sec: a warmup-dominated csalt-cd
    /// run under `--warmup-mode functional` (state updates only, no
    /// cycle accounting).
    fastforward_accesses_per_sec: f64,
    /// The identical warmup-dominated run with timed warmup — the
    /// baseline the fast-forward speedup compares against.
    fastforward_timed_accesses_per_sec: f64,
    /// v2 staged replay: records/sec through the producer staging loop
    /// with prepacked TLB keys (`TraceFile::next_staged`).
    trace_replay_v2_accesses_per_sec: f64,
    /// v1 unstaged replay: records/sec with per-access key packing —
    /// the cost the v2 format removes.
    trace_replay_v1_accesses_per_sec: f64,
    /// Smoke-length functional fast-forward rate — the floor the
    /// `CSALT_SMOKE=1` gate holds the fast-forward path to, inside the
    /// same noise-retry loop as the scheme floors.
    fastforward_smoke_accesses_per_sec: f64,
    /// Smoke-length v2 staged replay rate — same role for trace replay.
    trace_replay_v2_smoke_accesses_per_sec: f64,
    /// Geomean inline throughput across the fig07 schemes with the L0
    /// hit-way memo enabled (the default engine configuration).
    l0_on_geomean_accesses_per_sec: f64,
    /// The same geomean with `CSALT_L0=off` — the scan-skip ablation
    /// baseline. The on/off ratio is the memo's measured payoff.
    l0_off_geomean_accesses_per_sec: f64,
}

/// One scheme's recorded measurement: the inline baseline and the
/// forced-pipeline mode side by side, at both run lengths.
#[derive(Debug, Serialize, Deserialize)]
struct SchemeThroughput {
    /// `TranslationScheme::label()`.
    scheme: String,
    /// Inline-mode simulated accesses per wall-clock second
    /// (full-length run).
    accesses_per_sec: f64,
    /// Same metric at the smoke-length run — the floor `CSALT_SMOKE=1`
    /// compares against (short runs are systematically slower).
    smoke_accesses_per_sec: f64,
    /// Pipelined-mode accesses/sec, full-length run (`CSALT_PIPELINE=
    /// force` semantics). Informational: the smoke gate only holds the
    /// inline floors, so small CI hosts cannot fail on overlap they
    /// physically cannot express.
    pipeline_accesses_per_sec: f64,
    /// Pipelined-mode accesses/sec at the smoke length.
    pipeline_smoke_accesses_per_sec: f64,
    /// Inline full-length accesses/sec with `CSALT_L0=off` — the memo
    /// ablation row (`accesses_per_sec` is the memo-on rate).
    l0_off_accesses_per_sec: f64,
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Revision stamped into the record — the sweep engine's shared
/// fingerprint helper, so every BENCH_*.json agrees on provenance.
fn git_rev() -> String {
    csalt_sim::sweep::git_rev()
}

/// The fig07-style configuration: `default_config` knobs without the
/// env overrides, so the recorded number is reproducible.
fn config(scheme: TranslationScheme, accesses: u64, warmup: u64) -> SimConfig {
    let mut cfg = SimConfig::new(
        WorkloadSpec::pair("graph500_gups", BenchKind::Graph500, BenchKind::Gups),
        scheme,
    );
    cfg.accesses_per_core = accesses;
    cfg.warmup_accesses_per_core = warmup;
    cfg.scale = experiments::scaled::SCALE;
    cfg.system.cs_interval_cycles = experiments::scaled::QUANTUM_10MS;
    cfg.system.epoch_accesses = experiments::scaled::EPOCH_256K;
    cfg
}

/// Best-of-`rounds` accesses/sec for one scheme, in the inline mode
/// (`pipelined = false`, the measurement baseline and the smoke-gate
/// floor) or the forced-pipeline mode.
fn measure(cfg: &SimConfig, rounds: u32, pipelined: bool) -> f64 {
    let total_accesses =
        (cfg.accesses_per_core + cfg.warmup_accesses_per_core) * u64::from(cfg.system.cores);
    let mut best = 0.0f64;
    for _ in 0..rounds {
        let t = Instant::now();
        let r = if pipelined {
            run_pipelined(cfg).0
        } else {
            run_inline(cfg)
        };
        let elapsed = t.elapsed().as_secs_f64();
        assert!(r.instructions > 0, "run produced no work");
        best = best.max(total_accesses as f64 / elapsed);
    }
    best
}

/// Speedup targets for the two fast-path measurements (warnings, not
/// gates — single-thread CI runners measure these under co-tenant
/// noise, same policy as [`SPEEDUP_TARGET`]).
const FASTFORWARD_TARGET: f64 = 5.0;
const REPLAY_V2_TARGET: f64 = 2.0;

/// (measured, warmup, rounds) for the fast-forward measurement: warmup
/// dominates 30:1, so the run's rate is the warmup path's rate.
const FF_RUN: (u64, u64, u32) = (4_000, 120_000, 3);

/// Distinct records in the replay micro-loop (wraps like the engine).
const REPLAY_RECORDS: u64 = 65_536;
/// Accesses replayed per full-length timing round.
const REPLAY_ACCESSES: u64 = 4_000_000;

/// (measured, warmup, rounds) for the *smoke-length* fast-forward
/// measurement the gate retries alongside the scheme floors.
const FF_SMOKE_RUN: (u64, u64, u32) = (1_000, 30_000, 1);
/// Accesses replayed per smoke-length replay timing round.
const REPLAY_SMOKE_ACCESSES: u64 = 500_000;

/// Functional vs timed warmup throughput on a warmup-dominated csalt-cd
/// run: `(functional, timed)` accesses/sec.
fn measure_fastforward() -> (f64, f64) {
    let (accesses, warmup, rounds) = FF_RUN;
    let mut cfg = config(TranslationScheme::CsaltCd, accesses, warmup);
    let timed = measure(&cfg, rounds, false);
    cfg.warmup_mode = WarmupMode::Functional;
    let functional = measure(&cfg, rounds, false);
    (functional, timed)
}

/// Smoke-length functional fast-forward rate (no timed counterpart —
/// the gate only needs the functional floor).
fn measure_fastforward_smoke() -> f64 {
    let (accesses, warmup, rounds) = FF_SMOKE_RUN;
    let mut cfg = config(TranslationScheme::CsaltCd, accesses, warmup);
    cfg.warmup_mode = WarmupMode::Functional;
    measure(&cfg, rounds, false)
}

/// v2 (prepacked keys) vs v1 (pack per access) replay rate through the
/// producer staging loop: `(v2, v1)` records/sec, best of `rounds`.
fn measure_trace_replay(rounds: u32, accesses: u64) -> (f64, f64) {
    let mut g = BenchKind::Graph500.build(1, experiments::scaled::SCALE);
    let records: Vec<_> = (0..REPLAY_RECORDS).map(|_| g.next_access()).collect();
    let asid = Asid::new(1);
    let mut v1 = TraceFile::from_records(records.clone());
    let mut v2 = TraceFile::from_records(records);
    v2.restage(asid);

    let (mut best_v1, mut best_v2) = (0.0f64, 0.0f64);
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..accesses {
            let a = v1.next_access();
            let h = TranslationHint::compute(a.vaddr, asid);
            std::hint::black_box((a, h));
        }
        best_v1 = best_v1.max(accesses as f64 / t.elapsed().as_secs_f64());

        let t = Instant::now();
        for _ in 0..accesses {
            std::hint::black_box(v2.next_staged());
        }
        best_v2 = best_v2.max(accesses as f64 / t.elapsed().as_secs_f64());
    }
    (best_v2, best_v1)
}

/// (accesses, warmup, rounds) for the smoke-length run.
const SMOKE_RUN: (u64, u64, u32) = (20_000, 20_000, 2);
/// (accesses, warmup, rounds) for the full-length run.
const FULL_RUN: (u64, u64, u32) = (60_000, 60_000, 3);
/// Smoke attempts before a regression verdict sticks (noise bursts).
const SMOKE_ATTEMPTS: u32 = 3;

/// One smoke-length measurement of every fig07 scheme, in one mode.
fn measure_smoke_all(pipelined: bool) -> Vec<(String, f64)> {
    let (accesses, warmup, rounds) = SMOKE_RUN;
    experiments::FIG7_SCHEMES
        .into_iter()
        .map(|scheme| {
            let cfg = config(scheme, accesses, warmup);
            (scheme.label(), measure(&cfg, rounds, pipelined))
        })
        .collect()
}

fn run_smoke_gate(path: &Path) {
    let recorded: ThroughputRecord = serde_json::from_str(&std::fs::read_to_string(path).expect(
        "BENCH_throughput.json missing — record it with \
         `cargo bench -p csalt-bench --bench throughput`",
    ))
    .expect("BENCH_throughput.json must parse");

    /// Prints one floor comparison and says whether it passed.
    fn check(label: &str, now: f64, floor: f64) -> bool {
        let ratio = now / floor;
        let ok = ratio >= 1.0 - MAX_REGRESSION;
        println!(
            "{label:>15}: {now:>12.0} vs recorded {floor:>12.0} ({:+.1}%) {}",
            (ratio - 1.0) * 100.0,
            if ok { "ok" } else { "REGRESSION" },
        );
        ok
    }

    // Keep each case's best rate across attempts: one quiet window is
    // enough to prove the engine is not slower. The fast-forward and
    // trace-replay floors ride the same retry loop as the scheme
    // floors, so a noise burst on any one case costs a retry, never a
    // one-shot verdict.
    let mut best: Vec<(String, f64)> = Vec::new();
    let (mut best_ff, mut best_replay) = (0.0f64, 0.0f64);
    for attempt in 1..=SMOKE_ATTEMPTS {
        for (label, aps) in measure_smoke_all(false) {
            match best.iter_mut().find(|(l, _)| *l == label) {
                Some((_, b)) => *b = b.max(aps),
                None => best.push((label, aps)),
            }
        }
        best_ff = best_ff.max(measure_fastforward_smoke());
        best_replay = best_replay.max(measure_trace_replay(1, REPLAY_SMOKE_ACCESSES).0);
        let mut failed = false;
        for rec in &recorded.schemes {
            let Some(now) = best
                .iter()
                .find(|(l, _)| *l == rec.scheme)
                .map(|&(_, aps)| aps)
            else {
                continue;
            };
            failed |= !check(&rec.scheme, now, rec.smoke_accesses_per_sec);
        }
        failed |= !check(
            "fastforward",
            best_ff,
            recorded.fastforward_smoke_accesses_per_sec,
        );
        failed |= !check(
            "trace_replay_v2",
            best_replay,
            recorded.trace_replay_v2_smoke_accesses_per_sec,
        );
        if !failed {
            println!("throughput smoke ok (attempt {attempt}/{SMOKE_ATTEMPTS})");
            return;
        }
        if attempt < SMOKE_ATTEMPTS {
            println!("attempt {attempt}/{SMOKE_ATTEMPTS} below floor; retrying (noise?)");
        }
    }
    panic!(
        "throughput fell more than {:.0}% below the smoke floor recorded in \
         BENCH_throughput.json (rev {}) on {} consecutive attempts; if the \
         slowdown is intended, re-record with \
         `cargo bench -p csalt-bench --bench throughput`",
        MAX_REGRESSION * 100.0,
        recorded.git_rev,
        SMOKE_ATTEMPTS,
    );
}

/// Refuses (exit with a panic) to replace an existing record measured
/// at the *same* revision with a clean tree by one measured with
/// uncommitted changes — dirty-tree numbers would masquerade as that
/// commit's official floor. Parses the old file leniently (any schema
/// vintage) and honors `CSALT_BENCH_FORCE=1` as the escape hatch.
fn refuse_dirty_overwrite(path: &Path, rev: &str, dirty: bool) {
    if !dirty || std::env::var("CSALT_BENCH_FORCE").is_ok() {
        return;
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return; // Nothing recorded yet: a dirty first record is fine.
    };
    let Ok(old) = serde_json::from_str::<serde_json::Value>(&text) else {
        return; // A corrupt record protects nothing.
    };
    let field = |name: &str| {
        old.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    };
    let old_rev = match field("git_rev") {
        Some(serde_json::Value::Str(s)) => Some(s.as_str()),
        _ => None,
    };
    let old_dirty = matches!(field("dirty"), Some(serde_json::Value::Bool(true)));
    if old_rev == Some(rev) && !old_dirty {
        panic!(
            "refusing to overwrite {}: it records rev {rev} from a clean tree, and the \
             tree is now dirty — commit first, or set CSALT_BENCH_FORCE=1 to override",
            path.display(),
        );
    }
}

fn main() {
    let path = repo_root().join("BENCH_throughput.json");
    if std::env::var("CSALT_SMOKE").is_ok() {
        run_smoke_gate(&path);
        return;
    }

    let rev = git_rev();
    let dirty = csalt_sim::sweep::git_dirty();
    refuse_dirty_overwrite(&path, &rev, dirty);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    // Pin the memo on for every standard measurement so a stray
    // `CSALT_L0=off` in the recording shell cannot skew the floors;
    // the ablation column flips it off explicitly per scheme.
    std::env::set_var("CSALT_L0", "on");

    let (accesses, warmup, rounds) = FULL_RUN;
    let smoke_rates = measure_smoke_all(false);
    let pipeline_smoke_rates = measure_smoke_all(true);
    let rate_for = |rates: &[(String, f64)], label: &str| {
        rates
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, aps)| aps)
            .expect("smoke pass covers every fig07 scheme")
    };
    let mut schemes = Vec::new();
    for scheme in experiments::FIG7_SCHEMES {
        let cfg = config(scheme, accesses, warmup);
        let label = scheme.label();
        let aps = measure(&cfg, rounds, false);
        let pipeline_aps = measure(&cfg, rounds, true);
        std::env::set_var("CSALT_L0", "off");
        let l0_off_aps = measure(&cfg, rounds, false);
        std::env::set_var("CSALT_L0", "on");
        let speedup = pipeline_aps / aps;
        println!(
            "{label:>14}: inline {aps:>12.0} acc/s, pipeline {pipeline_aps:>12.0} acc/s \
             ({speedup:.2}x)",
        );
        if host_threads >= SPEEDUP_MIN_THREADS && speedup < SPEEDUP_TARGET {
            println!(
                "{label:>14}  WARNING: pipeline speedup {speedup:.2}x is below the \
                 {SPEEDUP_TARGET}x target on a {host_threads}-thread host",
            );
        }
        schemes.push(SchemeThroughput {
            scheme: label.clone(),
            accesses_per_sec: aps,
            smoke_accesses_per_sec: rate_for(&smoke_rates, &label),
            pipeline_accesses_per_sec: pipeline_aps,
            pipeline_smoke_accesses_per_sec: rate_for(&pipeline_smoke_rates, &label),
            l0_off_accesses_per_sec: l0_off_aps,
        });
    }

    // The L0 memo ablation: memo-on vs memo-off geomean across the
    // fig07 schemes. Warn-only, and only on hosts with enough threads
    // to make throughput comparisons meaningful (same policy as the
    // pipeline speedup — 1-thread CI runners measure co-tenant noise).
    let l0_on_geo = geomean(schemes.iter().map(|s| s.accesses_per_sec)).unwrap_or(0.0);
    let l0_off_geo = geomean(schemes.iter().map(|s| s.l0_off_accesses_per_sec)).unwrap_or(0.0);
    let l0_speedup = if l0_off_geo > 0.0 {
        l0_on_geo / l0_off_geo
    } else {
        0.0
    };
    println!(
        "        l0 memo: {l0_on_geo:>12.0} acc/s geomean vs off {l0_off_geo:>12.0} acc/s \
         ({l0_speedup:.2}x)",
    );
    if host_threads >= SPEEDUP_MIN_THREADS && l0_speedup < SPEEDUP_TARGET {
        println!(
            "        l0 memo  WARNING: memo-on geomean speedup {l0_speedup:.2}x is below the \
             {SPEEDUP_TARGET}x target on a {host_threads}-thread host",
        );
    }

    let (ff_functional, ff_timed) = measure_fastforward();
    let ff_speedup = ff_functional / ff_timed;
    println!(
        "   fastforward: {ff_functional:>12.0} acc/s vs timed {ff_timed:>12.0} acc/s \
         ({ff_speedup:.2}x)",
    );
    if ff_speedup < FASTFORWARD_TARGET {
        println!(
            "   fastforward  WARNING: functional warmup speedup {ff_speedup:.2}x is below \
             the {FASTFORWARD_TARGET}x target",
        );
    }

    let (replay_v2, replay_v1) = measure_trace_replay(rounds, REPLAY_ACCESSES);
    let replay_speedup = replay_v2 / replay_v1;
    println!(
        "trace_replay_v2: {replay_v2:>12.0} rec/s vs v1 {replay_v1:>12.0} rec/s \
         ({replay_speedup:.2}x)",
    );
    if replay_speedup < REPLAY_V2_TARGET {
        println!(
            "trace_replay_v2  WARNING: staged replay speedup {replay_speedup:.2}x is below \
             the {REPLAY_V2_TARGET}x target",
        );
    }

    // Smoke-length floors for the fast paths, recorded like-for-like so
    // the gate's retry loop compares short runs against short runs.
    let ff_smoke = measure_fastforward_smoke();
    let (replay_v2_smoke, _) = measure_trace_replay(1, REPLAY_SMOKE_ACCESSES);
    std::env::remove_var("CSALT_L0");

    let record = ThroughputRecord {
        git_rev: rev,
        dirty,
        host_threads,
        workload: "graph500_gups".to_owned(),
        cores: config(TranslationScheme::Conventional, accesses, warmup)
            .system
            .cores,
        accesses_per_core: accesses,
        warmup_accesses_per_core: warmup,
        schemes,
        fastforward_accesses_per_sec: ff_functional,
        fastforward_timed_accesses_per_sec: ff_timed,
        trace_replay_v2_accesses_per_sec: replay_v2,
        trace_replay_v1_accesses_per_sec: replay_v1,
        fastforward_smoke_accesses_per_sec: ff_smoke,
        trace_replay_v2_smoke_accesses_per_sec: replay_v2_smoke,
        l0_on_geomean_accesses_per_sec: l0_on_geo,
        l0_off_geomean_accesses_per_sec: l0_off_geo,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_throughput.json");
    println!(
        "recorded -> {} (dirty: {dirty}, host threads: {host_threads})",
        path.display()
    );

    // Trajectory: the same numbers, appended (never rewritten) so
    // `csalt-report bench-diff` can compare sessions over time.
    let mut history: Vec<csalt_bench::HistoryMetric> = Vec::new();
    for s in &record.schemes {
        history.push((
            format!("{}/accesses_per_sec", s.scheme),
            s.accesses_per_sec,
            "higher",
        ));
        history.push((
            format!("{}/pipeline_accesses_per_sec", s.scheme),
            s.pipeline_accesses_per_sec,
            "higher",
        ));
    }
    history.push((
        "fastforward/accesses_per_sec".to_owned(),
        record.fastforward_accesses_per_sec,
        "higher",
    ));
    history.push((
        "trace_replay_v2/accesses_per_sec".to_owned(),
        record.trace_replay_v2_accesses_per_sec,
        "higher",
    ));
    history.push((
        "l0_on/geomean_accesses_per_sec".to_owned(),
        record.l0_on_geomean_accesses_per_sec,
        "higher",
    ));
    history.push((
        "l0_off/geomean_accesses_per_sec".to_owned(),
        record.l0_off_geomean_accesses_per_sec,
        "higher",
    ));
    history.push(("l0_speedup/geomean".to_owned(), l0_speedup, "higher"));
    csalt_bench::append_history("throughput", &history);
}
