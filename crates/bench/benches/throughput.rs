//! Steady-state simulator throughput per translation scheme — the
//! perf-trajectory gate.
//!
//! Every figure replays hundreds of millions of accesses through
//! `MemoryHierarchy::access`, so accesses/sec is the binding constraint
//! on how many scenarios the harness can afford. This bench measures it
//! on a fig07-style configuration (virtualized, 2 contexts/core, scaled
//! quantum and epoch, the `graph500_gups` pairing) for the four Figure 7
//! schemes and records the result in `BENCH_throughput.json` at the repo
//! root, so future PRs are held to the recorded floor.
//!
//! Modes:
//!
//! * default (`cargo bench -p csalt-bench --bench throughput`) —
//!   full-length measurement, best of 3 rounds per scheme; **rewrites**
//!   `BENCH_throughput.json` with the new numbers and the current git
//!   revision. Run this after any intentional perf change.
//! * `CSALT_SMOKE=1` — short run used by `ci.sh`: measures each scheme
//!   at the *smoke* length, compares against the recorded smoke-length
//!   floor (like-for-like: short runs are systematically slower than
//!   the full-length rate because less of the modelled state is warm),
//!   and **fails** if any scheme drops more than 20% below it. Retries
//!   a failing comparison up to two more times, keeping each scheme's
//!   best rate, so a transient co-tenant noise burst does not fail the
//!   gate. Never writes the file.
//!
//! The throughput metric counts every simulated access (warmup +
//! measured phase — both run the identical hot path) divided by the
//! run's wall time, minimized over rounds to reject scheduler noise.

use csalt_sim::{experiments, run, SimConfig};
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Tolerated drop below the recorded accesses/sec before the smoke
/// gate fails (covers machine-to-machine and co-tenant noise).
const MAX_REGRESSION: f64 = 0.20;

/// The recorded perf trajectory: `BENCH_throughput.json`.
#[derive(Debug, Serialize, Deserialize)]
struct ThroughputRecord {
    /// `git rev-parse --short HEAD` at measurement time.
    git_rev: String,
    /// Workload pairing measured (fig07 x-axis label).
    workload: String,
    /// Simulated cores.
    cores: u32,
    /// Measured-phase accesses per core.
    accesses_per_core: u64,
    /// Warmup accesses per core (also counted — same hot path).
    warmup_accesses_per_core: u64,
    /// Per-scheme steady-state throughput, in fig07 presentation order.
    schemes: Vec<SchemeThroughput>,
}

/// One scheme's recorded measurement.
#[derive(Debug, Serialize, Deserialize)]
struct SchemeThroughput {
    /// `TranslationScheme::label()`.
    scheme: String,
    /// Simulated accesses per wall-clock second (full-length run).
    accesses_per_sec: f64,
    /// Same metric at the smoke-length run — the floor `CSALT_SMOKE=1`
    /// compares against (short runs are systematically slower).
    smoke_accesses_per_sec: f64,
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Revision stamped into the record — the sweep engine's shared
/// fingerprint helper, so every BENCH_*.json agrees on provenance.
fn git_rev() -> String {
    csalt_sim::sweep::git_rev()
}

/// The fig07-style configuration: `default_config` knobs without the
/// env overrides, so the recorded number is reproducible.
fn config(scheme: TranslationScheme, accesses: u64, warmup: u64) -> SimConfig {
    let mut cfg = SimConfig::new(
        WorkloadSpec::pair("graph500_gups", BenchKind::Graph500, BenchKind::Gups),
        scheme,
    );
    cfg.accesses_per_core = accesses;
    cfg.warmup_accesses_per_core = warmup;
    cfg.scale = experiments::scaled::SCALE;
    cfg.system.cs_interval_cycles = experiments::scaled::QUANTUM_10MS;
    cfg.system.epoch_accesses = experiments::scaled::EPOCH_256K;
    cfg
}

/// Best-of-`rounds` accesses/sec for one scheme.
fn measure(cfg: &SimConfig, rounds: u32) -> f64 {
    let total_accesses =
        (cfg.accesses_per_core + cfg.warmup_accesses_per_core) * u64::from(cfg.system.cores);
    let mut best = 0.0f64;
    for _ in 0..rounds {
        let t = Instant::now();
        let r = run(cfg);
        let elapsed = t.elapsed().as_secs_f64();
        assert!(r.instructions > 0, "run produced no work");
        best = best.max(total_accesses as f64 / elapsed);
    }
    best
}

/// (accesses, warmup, rounds) for the smoke-length run.
const SMOKE_RUN: (u64, u64, u32) = (20_000, 20_000, 2);
/// (accesses, warmup, rounds) for the full-length run.
const FULL_RUN: (u64, u64, u32) = (60_000, 60_000, 3);
/// Smoke attempts before a regression verdict sticks (noise bursts).
const SMOKE_ATTEMPTS: u32 = 3;

/// One smoke-length measurement of every fig07 scheme.
fn measure_smoke_all() -> Vec<(String, f64)> {
    let (accesses, warmup, rounds) = SMOKE_RUN;
    experiments::FIG7_SCHEMES
        .into_iter()
        .map(|scheme| {
            let cfg = config(scheme, accesses, warmup);
            (scheme.label(), measure(&cfg, rounds))
        })
        .collect()
}

fn run_smoke_gate(path: &Path) {
    let recorded: ThroughputRecord = serde_json::from_str(&std::fs::read_to_string(path).expect(
        "BENCH_throughput.json missing — record it with \
         `cargo bench -p csalt-bench --bench throughput`",
    ))
    .expect("BENCH_throughput.json must parse");

    // Keep each scheme's best rate across attempts: one quiet window is
    // enough to prove the engine is not slower.
    let mut best: Vec<(String, f64)> = Vec::new();
    for attempt in 1..=SMOKE_ATTEMPTS {
        for (label, aps) in measure_smoke_all() {
            match best.iter_mut().find(|(l, _)| *l == label) {
                Some((_, b)) => *b = b.max(aps),
                None => best.push((label, aps)),
            }
        }
        let mut failed = false;
        for rec in &recorded.schemes {
            let Some(now) = best
                .iter()
                .find(|(l, _)| *l == rec.scheme)
                .map(|&(_, aps)| aps)
            else {
                continue;
            };
            let (label, floor) = (&rec.scheme, rec.smoke_accesses_per_sec);
            let ratio = now / floor;
            let ok = ratio >= 1.0 - MAX_REGRESSION;
            println!(
                "{label:>14}: {now:>12.0} vs recorded {floor:>12.0} ({:+.1}%) {}",
                (ratio - 1.0) * 100.0,
                if ok { "ok" } else { "REGRESSION" },
            );
            failed |= !ok;
        }
        if !failed {
            println!("throughput smoke ok (attempt {attempt}/{SMOKE_ATTEMPTS})");
            return;
        }
        if attempt < SMOKE_ATTEMPTS {
            println!("attempt {attempt}/{SMOKE_ATTEMPTS} below floor; retrying (noise?)");
        }
    }
    panic!(
        "throughput fell more than {:.0}% below the smoke floor recorded in \
         BENCH_throughput.json (rev {}) on {} consecutive attempts; if the \
         slowdown is intended, re-record with \
         `cargo bench -p csalt-bench --bench throughput`",
        MAX_REGRESSION * 100.0,
        recorded.git_rev,
        SMOKE_ATTEMPTS,
    );
}

fn main() {
    let path = repo_root().join("BENCH_throughput.json");
    if std::env::var("CSALT_SMOKE").is_ok() {
        run_smoke_gate(&path);
        return;
    }

    let (accesses, warmup, rounds) = FULL_RUN;
    let smoke_rates = measure_smoke_all();
    let mut schemes = Vec::new();
    for scheme in experiments::FIG7_SCHEMES {
        let cfg = config(scheme, accesses, warmup);
        let aps = measure(&cfg, rounds);
        let smoke_aps = smoke_rates
            .iter()
            .find(|(l, _)| *l == scheme.label())
            .map(|&(_, aps)| aps)
            .expect("smoke pass covers every fig07 scheme");
        println!(
            "{:>14}: {:>12.0} accesses/sec (smoke-length {:>12.0})",
            scheme.label(),
            aps,
            smoke_aps,
        );
        schemes.push(SchemeThroughput {
            scheme: scheme.label(),
            accesses_per_sec: aps,
            smoke_accesses_per_sec: smoke_aps,
        });
    }

    let record = ThroughputRecord {
        git_rev: git_rev(),
        workload: "graph500_gups".to_owned(),
        cores: config(TranslationScheme::Conventional, accesses, warmup)
            .system
            .cores,
        accesses_per_core: accesses,
        warmup_accesses_per_core: warmup,
        schemes,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_throughput.json");
    println!("recorded -> {}", path.display());
}
