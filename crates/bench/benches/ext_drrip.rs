//! Extension — DRRIP replacement baseline from the related work (§6).

fn main() {
    let table = csalt_sim::experiments::ext_drrip();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "§6 argues content-oblivious replacement (DIP, DRRIP, \
                      SHiP...) cannot separate data from TLB traffic; like \
                      DIP, DRRIP should track POM-TLB while CSALT-CD wins.",
        },
    );
}
