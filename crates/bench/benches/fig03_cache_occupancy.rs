//! Regenerates Figure 3: fraction of L2/L3 data-cache capacity occupied
//! by translation entries under POM-TLB.

fn main() {
    let table = csalt_sim::experiments::fig03();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 3: TLB entries occupy ~60% of cache capacity on \
                      average, up to ~80% for connected component.",
        },
    );
}
