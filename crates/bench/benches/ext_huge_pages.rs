//! Extension — THP sensitivity of CSALT-CD's gain.

fn main() {
    let table = csalt_sim::experiments::ext_huge_pages();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "§6 notes the POM-TLB supports multiple page sizes; huge pages shrink the translation working set, so partitioning gains shrink as the THP fraction rises.",
        },
    );
}
