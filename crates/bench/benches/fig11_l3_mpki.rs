//! Regenerates Figure 11: relative L3 data-cache MPKI vs POM-TLB.

fn main() {
    let cmp = csalt_sim::experiments::main_comparison();
    csalt_bench::report(
        &cmp.fig11(),
        &csalt_bench::PaperReference {
            summary: "Figure 11: CSALT-CD reduces L3 MPKI by up to 26% \
                      (ccomp); geomean reduction ~10%.",
        },
    );
}
