//! Regenerates Figure 16: sensitivity to the context-switch interval.

fn main() {
    let table = csalt_sim::experiments::fig16();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 16: CSALT-CD's gain over POM-TLB is steady at \
                      5/10/30 ms, ~8% lower at 30 ms than at 10 ms.",
        },
    );
}
