//! Regenerates Figure 7: performance of Conventional / POM-TLB /
//! CSALT-D / CSALT-CD, normalized to POM-TLB.

fn main() {
    let cmp = csalt_sim::experiments::main_comparison();
    csalt_bench::report(
        &cmp.fig07(),
        &csalt_bench::PaperReference {
            summary: "Figure 7 geomeans (normalized to POM-TLB): conventional \
                      ~0.68, CSALT-D ~1.11, CSALT-CD ~1.25; ccomp reaches \
                      2.24 under CSALT-CD; gups/graph500 gain ~nothing over \
                      POM-TLB.",
        },
    );
}
