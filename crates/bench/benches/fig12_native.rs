//! Regenerates Figure 12: CSALT-CD in the native (non-virtualized)
//! context, normalized to POM-TLB.

fn main() {
    let table = csalt_sim::experiments::fig12();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 12: native-mode CSALT-CD gains ~5% geomean over \
                      POM-TLB, up to ~30% on connected component.",
        },
    );
}
