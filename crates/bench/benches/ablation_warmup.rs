//! Ablation — functional (state-only) vs timed warmup drift (§5
//! methodology: SMARTS-style sampled simulation).

fn main() {
    let table = csalt_sim::experiments::ablation_warmup();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "not in the paper: quantifies the measured-phase L2 TLB MPKI drift \
                      from fast-forwarding warmup through the functional path.",
        },
    );
}
