//! Criterion microbenchmarks for the simulator's hot components: cache
//! access, stack-distance profiling, TLB lookup, nested page walks,
//! pipeline staging (SPSC ring and generator batch) and DRAM timing.
//! These measure the *simulator's* performance (so the experiment
//! harness's runtime stays predictable), not the modelled machine's.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use csalt_cache::Cache;
use csalt_dram::DramModel;
use csalt_profiler::StackDistanceProfiler;
use csalt_ptw::{FrameAllocator, GuestAddressSpace, HugePagePolicy, NestedWalker, RadixPageTable};
use csalt_tlb::{SramTlb, Tsb};
use csalt_types::{
    Asid, DramTimings, EntryKind, LineAddr, PageSize, PhysAddr, PhysFrame, ReplacementKind,
    SystemConfig, VirtAddr, VirtPage,
};

fn bench_cache_access(c: &mut Criterion) {
    let mut cache = Cache::from_geometry(&SystemConfig::skylake().l3, ReplacementKind::TrueLru);
    let mut i = 0u64;
    c.bench_function("l3_cache_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            let line = LineAddr::from_line_number(i % 300_000);
            black_box(cache.access(line, EntryKind::Data, i.is_multiple_of(7)))
        });
    });
}

fn bench_partitioned_cache_access(c: &mut Criterion) {
    let mut cache = Cache::from_geometry(&SystemConfig::skylake().l3, ReplacementKind::TrueLru);
    cache.set_partition(10);
    let mut i = 0u64;
    c.bench_function("l3_cache_access_partitioned", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            let line = LineAddr::from_line_number(i % 300_000);
            let kind = if i.is_multiple_of(3) {
                EntryKind::Tlb
            } else {
                EntryKind::Data
            };
            black_box(cache.access(line, kind, false))
        });
    });
}

fn bench_profiler_record(c: &mut Criterion) {
    let mut prof = StackDistanceProfiler::new(8192, 16, 4);
    let mut i = 0u64;
    c.bench_function("stack_distance_record", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(prof.record(i % 8192, i % 64, EntryKind::Data))
        });
    });
}

fn bench_l2_tlb_lookup(c: &mut Criterion) {
    let mut tlb = SramTlb::new(SystemConfig::skylake().l2_tlb);
    let asid = Asid::new(1);
    for vpn in 0..1536 {
        tlb.insert(
            VirtPage::from_vpn(vpn, PageSize::Size4K),
            asid,
            PhysFrame::from_pfn(vpn, PageSize::Size4K),
        );
    }
    let mut i = 0u64;
    c.bench_function("l2_tlb_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(tlb.lookup(VirtPage::from_vpn(i % 2048, PageSize::Size4K), asid))
        });
    });
}

fn bench_radix_walk(c: &mut Criterion) {
    // Read-only walks over the arena-backed radix table: the per-PTE cost
    // of every simulated page walk, without PSC or nested-dimension
    // effects.
    let mut alloc = FrameAllocator::new(0, 16 << 30);
    let mut table = RadixPageTable::new(&mut alloc, HugePagePolicy::NONE);
    for vpn in 0..4096u64 {
        table.walk_or_map(VirtAddr::new(vpn << 12), &mut alloc);
    }
    let mut i = 0u64;
    c.bench_function("radix_table_walk", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(table.walk(VirtAddr::new((i % 4096) << 12)))
        });
    });
}

fn bench_tsb_lookup(c: &mut Criterion) {
    // Single-hash TSB probe (virtualized mode: guest + host tables).
    let mut tsb = Tsb::new(1 << 16, 0x7d00_0000_0000, true);
    let asid = Asid::new(1);
    for vpn in 0..40_000u64 {
        tsb.insert(
            VirtPage::from_vpn(vpn, PageSize::Size4K),
            asid,
            PhysFrame::from_pfn(vpn, PageSize::Size4K),
        );
    }
    let mut i = 0u64;
    c.bench_function("tsb_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(tsb.lookup(VirtPage::from_vpn(i % 65_536, PageSize::Size4K), asid))
        });
    });
}

fn bench_nested_walk(c: &mut Criterion) {
    let mut host = FrameAllocator::new(0, 64 << 30);
    let mut space = GuestAddressSpace::new(
        Asid::new(1),
        1 << 40,
        16 << 30,
        HugePagePolicy::NONE,
        &mut host,
    );
    let mut walker = NestedWalker::new(SystemConfig::skylake().psc);
    let mut i = 0u64;
    c.bench_function("nested_page_walk", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x1000);
            black_box(walker.walk(&mut space, VirtAddr::new(i % (1 << 30)), &mut host))
        });
    });
}

fn bench_spsc_ring(c: &mut Criterion) {
    // Per-record cost of the pipeline's lock-free ring: batched pushes
    // of staged 4-word records drained by batched pops, single-threaded
    // so the number is the ring's own overhead (encode + atomics), not
    // scheduler interference.
    let (mut tx, mut rx) = csalt_pipeline::ring::<csalt_pipeline::StagedAccess>(4096);
    let asid = Asid::new(1);
    let batch: Vec<csalt_pipeline::StagedAccess> = (0..64u64)
        .map(|i| {
            csalt_pipeline::StagedAccess::stage(
                csalt_types::MemAccess::read(VirtAddr::new(i << 12), 1),
                asid,
            )
        })
        .collect();
    c.bench_function("spsc_ring", |b| {
        b.iter(|| {
            let pushed = tx.push_batch(&batch);
            let mut drained = 0;
            while drained < pushed {
                if let Some(rec) = rx.pop() {
                    black_box(rec);
                    drained += 1;
                }
            }
            black_box(drained)
        });
    });
}

fn bench_generator_batch(c: &mut Criterion) {
    // Producer-side staging cost: one generator step plus the
    // translation-hint packing — what each pipeline producer thread
    // pays per record before it ever touches a ring.
    let mut cfg = csalt_sim::SimConfig::new(
        csalt_workloads::WorkloadSpec::pair(
            "graph500_gups",
            csalt_workloads::BenchKind::Graph500,
            csalt_workloads::BenchKind::Gups,
        ),
        csalt_types::TranslationScheme::CsaltCd,
    );
    cfg.scale = 0.05;
    use csalt_workloads::TraceGenerator as _;
    let mut threads = csalt_sim::build_threads(&cfg);
    let generator = &mut threads[0][0];
    let asid = Asid::new(1);
    c.bench_function("generator_batch", |b| {
        b.iter(|| {
            let acc = generator.next_access();
            black_box(csalt_pipeline::StagedAccess::stage(acc, asid))
        });
    });
}

fn bench_dram_access(c: &mut Criterion) {
    let mut dram = DramModel::new(DramTimings::ddr4_2133(), 4.0);
    let mut i = 0u64;
    c.bench_function("dram_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(dram.access(PhysAddr::new(i % (1 << 30)), false))
        });
    });
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_partitioned_cache_access,
    bench_profiler_record,
    bench_l2_tlb_lookup,
    bench_radix_walk,
    bench_tsb_lookup,
    bench_nested_walk,
    bench_spsc_ring,
    bench_generator_batch,
    bench_dram_access
);
criterion_main!(benches);
