//! Telemetry overhead gate: `run_instrumented` with a [`NullRecorder`]
//! (sampling off) must stay within 2% of the plain `run` path.
//!
//! A disabled recorder routes `run_instrumented` onto the same
//! monomorphized no-op-hooks engine as `run`, so this gate guards that
//! fast path against regressions (someone accidentally forcing the
//! live-hook engine, or adding per-access work ahead of the
//! `is_enabled` check). This harness times interleaved rounds of both
//! paths, takes the per-path minimum (robust against scheduler noise),
//! and fails loudly if the ratio exceeds the budget.
//!
//! `CSALT_SMOKE=1` shrinks the run for CI.

use csalt_sim::{run, run_instrumented, Instrumentation, SimConfig};
use csalt_telemetry::NullRecorder;
use csalt_types::TranslationScheme;
use csalt_workloads::{BenchKind, WorkloadSpec};
use std::time::{Duration, Instant};

const MAX_OVERHEAD: f64 = 0.02;

fn config(accesses: u64) -> SimConfig {
    let mut cfg = SimConfig::new(
        WorkloadSpec::homogeneous("gups", BenchKind::Gups),
        TranslationScheme::CsaltCd,
    );
    cfg.system.cores = 2;
    cfg.accesses_per_core = accesses;
    cfg.warmup_accesses_per_core = accesses / 4;
    cfg.scale = 0.05;
    cfg
}

fn time_plain(cfg: &SimConfig) -> Duration {
    let t = Instant::now();
    let r = run(cfg);
    assert!(r.instructions > 0);
    t.elapsed()
}

fn time_instrumented(cfg: &SimConfig) -> Duration {
    let mut rec = NullRecorder;
    let mut inst = Instrumentation {
        recorder: &mut rec,
        sample_interval: 0,
        progress_every_epochs: 0,
        trace: None,
    };
    let t = Instant::now();
    let r = run_instrumented(cfg, &mut inst);
    assert!(r.instructions > 0);
    t.elapsed()
}

fn main() {
    let smoke = std::env::var("CSALT_SMOKE").is_ok();
    let (accesses, rounds) = if smoke { (15_000, 9) } else { (100_000, 11) };
    let cfg = config(accesses);

    // One untimed round of each path warms allocator and caches.
    time_plain(&cfg);
    time_instrumented(&cfg);

    // Alternate measurement order each round so slow drift (thermal,
    // co-tenant load) cancels instead of biasing one side.
    let mut best_plain = Duration::MAX;
    let mut best_inst = Duration::MAX;
    for round in 0..rounds {
        let (p, i) = if round % 2 == 0 {
            let p = time_plain(&cfg);
            let i = time_instrumented(&cfg);
            (p, i)
        } else {
            let i = time_instrumented(&cfg);
            let p = time_plain(&cfg);
            (p, i)
        };
        best_plain = best_plain.min(p);
        best_inst = best_inst.min(i);
        println!("round {round}: plain {p:>8.3?}  instrumented {i:>8.3?}");
    }

    // Under co-tenant load the minimum can still carry a few percent of
    // noise. Extra rounds tighten both minima; only if the gap persists
    // is it a real regression (the paths are meant to be identical).
    let overhead = |p: Duration, i: Duration| i.as_secs_f64() / p.as_secs_f64() - 1.0;
    let mut extra = 0;
    while overhead(best_plain, best_inst) > MAX_OVERHEAD && extra < 4 * rounds {
        best_inst = best_inst.min(time_instrumented(&cfg));
        best_plain = best_plain.min(time_plain(&cfg));
        extra += 1;
    }
    if extra > 0 {
        println!("took {extra} extra rounds to separate noise from regression");
    }

    let overhead = overhead(best_plain, best_inst);
    println!(
        "best: plain {best_plain:?}, instrumented(NullRecorder) {best_inst:?} \
         -> overhead {:+.2}% (budget {:.0}%)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
    );
    assert!(
        overhead <= MAX_OVERHEAD,
        "NullRecorder instrumentation overhead {:.2}% exceeds {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
    );
}
