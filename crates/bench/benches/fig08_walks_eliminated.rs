//! Regenerates Figure 8: fraction of page walks the POM-TLB eliminates.

fn main() {
    let cmp = csalt_sim::experiments::main_comparison();
    csalt_bench::report(
        &cmp.fig08(),
        &csalt_bench::PaperReference {
            summary: "Figure 8: the POM-TLB eliminates 97% of page walks on \
                      average (all workloads above ~0.8).",
        },
    );
}
