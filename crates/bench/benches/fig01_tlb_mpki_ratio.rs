//! Regenerates Figure 1: the L2 TLB MPKI blow-up caused by VM context
//! switching (2 contexts/core vs 1).

fn main() {
    let table = csalt_sim::experiments::fig01();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "Figure 1 reports L2 TLB MPKI ratios per workload with a \
                      geomean above 6x when a second VM context is added.",
        },
    );
}
