//! Ablation — pseudo-LRU replacement under CSALT (§3.4).

fn main() {
    let table = csalt_sim::experiments::ablation_replacement();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "§3.4 (after Kędzierski et al.) expects only minor degradation when NRU or BT-PLRU stack-position estimates replace True-LRU.",
        },
    );
}
