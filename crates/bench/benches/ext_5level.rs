//! Extension — 5-level paging should widen CSALT's advantage over the conventional walker (the paper's intro argument).

fn main() {
    let table = csalt_sim::experiments::ext_5level();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "the paper's introduction predicts 5-level paging strengthens the case for large-TLB schemes; conventional walk cost grows with depth, CSALT-CD's does not.",
        },
    );
}
