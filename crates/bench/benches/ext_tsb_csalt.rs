//! Extension — CSALT partitioning layered over the TSB.

fn main() {
    let table = csalt_sim::experiments::ext_tsb_csalt();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "§5.2/§6 state the TSB organization can leverage CSALT partitioning and 'also sees performance improvement'.",
        },
    );
}
