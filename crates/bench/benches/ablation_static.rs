//! Ablation — static partitions vs dynamic CSALT (footnote 6).

fn main() {
    let table = csalt_sim::experiments::ablation_static();
    csalt_bench::report(
        &table,
        &csalt_bench::PaperReference {
            summary: "footnote 6: no single static partition performs well across all workloads, motivating the dynamic scheme.",
        },
    );
}
