//! Prints Table 2: the evaluated system parameters, as encoded in
//! `SystemConfig::skylake()`.

use csalt_types::SystemConfig;

fn main() {
    let c = SystemConfig::skylake();
    println!("== Table 2: experimental parameters ==");
    println!("frequency            {} GHz", c.core_ghz);
    println!("cores                {}", c.cores);
    let cache = |name: &str, g: &csalt_types::CacheGeometry| {
        println!(
            "{name:<20} {} KiB, {}-way, {} cycles",
            g.size_bytes >> 10,
            g.ways,
            g.latency
        );
    };
    cache("l1 d-cache", &c.l1d);
    cache("l2 unified cache", &c.l2);
    cache("l3 unified cache", &c.l3);
    println!(
        "l1 tlb (4K)          {} entry, {}-way, {} cycles",
        c.l1_tlb_4k.entries, c.l1_tlb_4k.ways, c.l1_tlb_4k.latency
    );
    println!(
        "l1 tlb (2M)          {} entry, {}-way, {} cycles",
        c.l1_tlb_2m.entries, c.l1_tlb_2m.ways, c.l1_tlb_2m.latency
    );
    println!(
        "l2 unified tlb       {} entry, {}-way, {} cycles",
        c.l2_tlb.entries, c.l2_tlb.ways, c.l2_tlb.latency
    );
    println!(
        "psc                  PML4 {} / PDP {} / PDE {} entries, {} cycles",
        c.psc.pml4_entries, c.psc.pdp_entries, c.psc.pde_entries, c.psc.latency
    );
    let dram = |name: &str, t: &csalt_types::DramTimings| {
        println!(
            "{name:<20} {} MHz bus, {}-bit, {} B row buffer, {}-{}-{}",
            t.bus_mhz, t.bus_bits, t.row_buffer_bytes, t.t_cas, t.t_rcd, t.t_rp
        );
    };
    dram("die-stacked dram", &c.die_stacked);
    dram("ddr4", &c.ddr);
    println!(
        "pom-tlb              {} MiB, {}-way, {} B entries",
        c.pom_tlb.size_bytes >> 20,
        c.pom_tlb.ways,
        c.pom_tlb.entry_bytes
    );
    println!();
    println!("paper: matches Table 2 of the paper exactly (verified in csalt-types tests).");
}
