//! Shared plumbing for the per-figure bench targets.
//!
//! Every `cargo bench --bench figNN_*` target regenerates one table or
//! figure of the paper: it runs the corresponding experiment from
//! `csalt_sim::experiments`, prints the paper-style rows to stdout, and
//! appends the machine-readable result to `target/csalt-results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csalt_sim::experiments::Table;
use std::io::Write;
use std::path::PathBuf;

/// Paper-reported reference values for one experiment, printed next to
/// the measured rows so divergence is visible at a glance.
pub struct PaperReference {
    /// Human-readable summary of what the paper measured.
    pub summary: &'static str,
}

/// Runs one experiment end to end: prints the measured table, the
/// paper's reference summary, and persists JSON for EXPERIMENTS.md.
pub fn report(table: &Table, reference: &PaperReference) {
    println!("{}", table.render());
    println!("paper: {}\n", reference.summary);
    if let Err(e) = persist(table) {
        eprintln!("warning: could not persist results: {e}");
    }
}

/// Writes the table as JSON under `target/csalt-results/<id>.json`.
fn persist(table: &Table) -> std::io::Result<()> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    // Slug from the full id (not just the part before the colon) so
    // distinct extensions/ablations never collide on one file.
    let slug: String = table
        .id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                ' '
            }
        })
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .take(60)
        .collect();
    let path = dir.join(format!("{slug}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(
        serde_json::to_string_pretty(table)
            .expect("table serializes")
            .as_bytes(),
    )?;
    println!("(results written to {})", path.display());
    Ok(())
}

/// One line of `BENCH_history.jsonl`: a single scalar measurement with
/// enough provenance to compare across sessions. The file is
/// append-only — every record-mode bench session adds its numbers, and
/// `csalt-report bench-diff` reads the trajectory back.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct HistoryLine {
    /// Bench target the number came from (`throughput`, `sweep`, …).
    pub bench: String,
    /// Metric path within the bench, e.g. `csalt-cd/accesses_per_sec`.
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// Which direction is an improvement: `higher` or `lower`.
    pub better: String,
    /// `git rev-parse --short HEAD` at measurement time.
    pub git_rev: String,
    /// Whether the tree had uncommitted changes. `bench-diff` baselines
    /// only against clean-tree lines.
    pub dirty: bool,
    /// `available_parallelism` of the measuring host.
    pub host_threads: usize,
    /// Unix timestamp (seconds) of the append.
    pub timestamp: u64,
}

/// A metric to append: `(path, value, better-direction)`.
pub type HistoryMetric = (String, f64, &'static str);

/// Appends one line per metric to `BENCH_history.jsonl` at the repo
/// root. Best-effort: history is observability, so failures warn on
/// stderr instead of failing the bench that produced the numbers.
pub fn append_history(bench: &str, metrics: &[HistoryMetric]) {
    let path = history_path();
    let git_rev = csalt_sim::sweep::git_rev();
    let dirty = csalt_sim::sweep::git_dirty();
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    for (metric, value, better) in metrics {
        let line = HistoryLine {
            bench: bench.to_owned(),
            metric: metric.clone(),
            value: *value,
            better: (*better).to_owned(),
            git_rev: git_rev.clone(),
            dirty,
            host_threads,
            timestamp,
        };
        out.push_str(&serde_json::to_string(&line).expect("history line serializes"));
        out.push('\n');
    }
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()));
    match appended {
        Ok(()) => println!(
            "history: {} metrics appended to {}",
            metrics.len(),
            path.display()
        ),
        Err(e) => eprintln!("warning: could not append {}: {e}", path.display()),
    }
}

/// `BENCH_history.jsonl` at the repo root.
pub fn history_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_history.jsonl")
}

/// Directory for machine-readable experiment outputs: the *workspace*
/// target directory (cargo runs bench binaries with the package root as
/// CWD, so a relative path would land under `crates/bench/`).
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("csalt-results");
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/csalt-results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_under_target() {
        let d = results_dir();
        assert!(d.ends_with("csalt-results"));
    }
}
