//! Shared plumbing for the per-figure bench targets.
//!
//! Every `cargo bench --bench figNN_*` target regenerates one table or
//! figure of the paper: it runs the corresponding experiment from
//! `csalt_sim::experiments`, prints the paper-style rows to stdout, and
//! appends the machine-readable result to `target/csalt-results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csalt_sim::experiments::Table;
use std::io::Write;
use std::path::PathBuf;

/// Paper-reported reference values for one experiment, printed next to
/// the measured rows so divergence is visible at a glance.
pub struct PaperReference {
    /// Human-readable summary of what the paper measured.
    pub summary: &'static str,
}

/// Runs one experiment end to end: prints the measured table, the
/// paper's reference summary, and persists JSON for EXPERIMENTS.md.
pub fn report(table: &Table, reference: &PaperReference) {
    println!("{}", table.render());
    println!("paper: {}\n", reference.summary);
    if let Err(e) = persist(table) {
        eprintln!("warning: could not persist results: {e}");
    }
}

/// Writes the table as JSON under `target/csalt-results/<id>.json`.
fn persist(table: &Table) -> std::io::Result<()> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    // Slug from the full id (not just the part before the colon) so
    // distinct extensions/ablations never collide on one file.
    let slug: String = table
        .id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                ' '
            }
        })
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .take(60)
        .collect();
    let path = dir.join(format!("{slug}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(
        serde_json::to_string_pretty(table)
            .expect("table serializes")
            .as_bytes(),
    )?;
    println!("(results written to {})", path.display());
    Ok(())
}

/// Directory for machine-readable experiment outputs: the *workspace*
/// target directory (cargo runs bench binaries with the package root as
/// CWD, so a relative path would land under `crates/bench/`).
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("csalt-results");
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/csalt-results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_under_target() {
        let d = results_dir();
        assert!(d.ends_with("csalt-results"));
    }
}
