//! Dynamic Insertion Policy (DIP) — Qureshi et al., ISCA 2007.
//!
//! The paper compares CSALT against DIP implemented *on top of POM-TLB*
//! (§5.2): DIP observes all incoming traffic — data and TLB entries alike,
//! without distinguishing them — and uses set dueling to choose between
//! conventional MRU insertion and Bimodal Insertion (BIP: insert at LRU,
//! promoting to MRU with a small probability ε = 1/32).
//!
//! A few *leader sets* are statically dedicated to each policy; misses in
//! a leader set nudge a saturating PSEL counter toward the other policy,
//! and all *follower sets* use whichever policy PSEL currently favours.

use crate::cache::InsertPos;
use csalt_types::{CkptError, CkptReader, CkptWriter};
use serde::{Deserialize, Serialize};

/// Which insertion policy a set follows this access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DuelRole {
    /// Leader set dedicated to conventional LRU (MRU-insert).
    LeaderLru,
    /// Leader set dedicated to BIP.
    LeaderBip,
    /// Follower set: obeys the PSEL winner.
    Follower,
}

/// Set-dueling DIP controller for one cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DipController {
    sets: u64,
    /// 10-bit saturating policy selector; ≥ midpoint ⇒ BIP wins.
    psel: u32,
    psel_max: u32,
    /// Every `leader_stride`-th set is an LRU leader; the next one a BIP
    /// leader (the "complement-select" simplification).
    leader_stride: u64,
    /// BIP promotes to MRU once every `bip_epsilon` fills.
    bip_epsilon: u32,
    bip_counter: u32,
}

impl DipController {
    /// Creates a controller for a cache with `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: u64) -> Self {
        assert!(sets > 0, "cache must have sets");
        // 32 leader pairs for large caches, fewer for tiny ones.
        let leader_stride = (sets / 64).max(2);
        Self {
            sets,
            psel: 511,
            psel_max: 1023,
            leader_stride,
            bip_epsilon: 32,
            bip_counter: 0,
        }
    }

    /// Classifies a set as LRU leader, BIP leader or follower.
    pub fn role(&self, set: u64) -> DuelRole {
        debug_assert!(set < self.sets);
        if set.is_multiple_of(self.leader_stride) {
            DuelRole::LeaderLru
        } else if set % self.leader_stride == 1 {
            DuelRole::LeaderBip
        } else {
            DuelRole::Follower
        }
    }

    /// `true` when the PSEL counter currently favours BIP for followers.
    pub fn bip_selected(&self) -> bool {
        self.psel > self.psel_max / 2
    }

    /// Records a miss in `set`, updating PSEL if the set is a leader.
    /// Misses in LRU leaders vote for BIP and vice versa.
    pub fn record_miss(&mut self, set: u64) {
        match self.role(set) {
            DuelRole::LeaderLru => self.psel = (self.psel + 1).min(self.psel_max),
            DuelRole::LeaderBip => self.psel = self.psel.saturating_sub(1),
            DuelRole::Follower => {}
        }
    }

    /// The insertion position to use for a fill into `set`, advancing the
    /// BIP ε-counter when BIP insertion applies.
    pub fn insertion_for(&mut self, set: u64) -> InsertPos {
        let use_bip = match self.role(set) {
            DuelRole::LeaderLru => false,
            DuelRole::LeaderBip => true,
            DuelRole::Follower => self.bip_selected(),
        };
        if !use_bip {
            return InsertPos::Mru;
        }
        self.bip_counter = (self.bip_counter + 1) % self.bip_epsilon;
        if self.bip_counter == 0 {
            InsertPos::Mru
        } else {
            InsertPos::Lru
        }
    }

    /// Serializes the duel state (PSEL and BIP ε-counter) plus the
    /// config-derived fields as guard words.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.sets);
        w.u32(self.psel);
        w.u32(self.psel_max);
        w.u64(self.leader_stride);
        w.u32(self.bip_epsilon);
        w.u32(self.bip_counter);
    }

    /// Restores state written by [`DipController::ckpt_save`]; the
    /// config-derived fields must match this controller's.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.sets {
            return Err(CkptError::Mismatch("dip set count"));
        }
        let psel = r.u32()?;
        let psel_max = r.u32()?;
        if psel_max != self.psel_max || psel > psel_max {
            return Err(CkptError::Mismatch("dip psel range"));
        }
        if r.u64()? != self.leader_stride {
            return Err(CkptError::Mismatch("dip leader stride"));
        }
        let eps = r.u32()?;
        if eps != self.bip_epsilon {
            return Err(CkptError::Mismatch("dip epsilon"));
        }
        let ctr = r.u32()?;
        if ctr >= eps {
            return Err(CkptError::Corrupt("dip bip counter out of range"));
        }
        self.psel = psel;
        self.bip_counter = ctr;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_partition_sets() {
        let d = DipController::new(1024);
        let mut lru = 0;
        let mut bip = 0;
        let mut fol = 0;
        for s in 0..1024 {
            match d.role(s) {
                DuelRole::LeaderLru => lru += 1,
                DuelRole::LeaderBip => bip += 1,
                DuelRole::Follower => fol += 1,
            }
        }
        assert_eq!(lru, bip, "balanced leader sets");
        assert!(lru >= 2);
        assert_eq!(lru + bip + fol, 1024);
    }

    #[test]
    fn psel_moves_toward_better_policy() {
        let mut d = DipController::new(1024);
        assert!(!d.bip_selected());
        // Hammer misses into LRU leader sets: BIP should win.
        let lru_leader = 0;
        for _ in 0..600 {
            d.record_miss(lru_leader);
        }
        assert!(d.bip_selected());
        // Now hammer BIP leaders: LRU should win again.
        let bip_leader = 1;
        for _ in 0..1200 {
            d.record_miss(bip_leader);
        }
        assert!(!d.bip_selected());
    }

    #[test]
    fn psel_saturates() {
        let mut d = DipController::new(64);
        for _ in 0..10_000 {
            d.record_miss(0); // LRU leader
        }
        assert!(d.bip_selected());
        for _ in 0..100_000 {
            d.record_miss(1); // BIP leader
        }
        assert!(!d.bip_selected()); // must not underflow
    }

    #[test]
    fn bip_leader_mostly_inserts_at_lru() {
        let mut d = DipController::new(1024);
        let bip_leader = 1;
        let mut mru = 0;
        for _ in 0..320 {
            if d.insertion_for(bip_leader) == InsertPos::Mru {
                mru += 1;
            }
        }
        // ε = 1/32 ⇒ exactly 10 MRU promotions in 320 fills.
        assert_eq!(mru, 10);
    }

    #[test]
    fn lru_leader_always_inserts_mru() {
        let mut d = DipController::new(1024);
        for _ in 0..100 {
            assert_eq!(d.insertion_for(0), InsertPos::Mru);
        }
    }

    #[test]
    fn followers_obey_psel() {
        let mut d = DipController::new(1024);
        let follower = 5;
        assert_eq!(d.insertion_for(follower), InsertPos::Mru);
        for _ in 0..600 {
            d.record_miss(0);
        }
        // BIP now selected: follower fills mostly at LRU.
        let lru_fills = (0..64)
            .filter(|_| d.insertion_for(follower) == InsertPos::Lru)
            .count();
        assert!(lru_fills >= 60);
    }

    #[test]
    fn tiny_cache_still_has_leaders() {
        let d = DipController::new(4);
        assert_eq!(d.role(0), DuelRole::LeaderLru);
        assert_eq!(d.role(1), DuelRole::LeaderBip);
    }
}
