//! The set-associative data cache with way partitioning and per-line
//! Data/TLB classification.
//!
//! Implements the cache behaviour Section 3.1 of the paper specifies:
//!
//! * **Lookup** scans *all* ways of the set regardless of the partition —
//!   after a repartition, lines of either kind may temporarily reside in
//!   ways now assigned to the other kind.
//! * **Replacement** honours the partition: an incoming data line evicts
//!   the LRU line among ways `0..N`, an incoming TLB line the LRU line
//!   among ways `N..K`.
//! * Each line carries its [`EntryKind`] so occupancy scans (Figure 3) and
//!   per-kind statistics are possible; in hardware this classification is
//!   by address range and costs no metadata.

use crate::replacement::{way_range_mask, SetReplacement, WayMask};
use csalt_types::{
    CkptError, CkptReader, CkptWriter, EntryKind, HitMissStats, L0Memo, L0Stats, LineAddr,
    ReplacementKind,
};
use serde::{Deserialize, Serialize};

/// Where an incoming line is placed in the recency stack on a fill.
///
/// Ordinary caches insert at MRU; DIP's bimodal insertion places most
/// fills at LRU so that single-use lines are evicted quickly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InsertPos {
    /// Insert at the most-recently-used position (conventional).
    Mru,
    /// Insert at the least-recently-used position (DIP/BIP insertion).
    Lru,
}

/// A line evicted by a fill, to be written back if dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its content classification.
    pub kind: EntryKind,
    /// Whether it must be written back to the next level.
    pub dirty: bool,
}

/// Result of [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// A line displaced by the fill (misses only; `None` if an invalid
    /// way absorbed the fill).
    pub evicted: Option<Evicted>,
}

/// Per-kind cache statistics plus fill/eviction/writeback counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Hits/misses for data-classified accesses.
    pub data: HitMissStats,
    /// Hits/misses for TLB-classified accesses.
    pub tlb: HitMissStats,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Combined hits/misses over both kinds.
    pub fn total(&self) -> HitMissStats {
        self.data + self.tlb
    }

    /// Stats for one kind.
    pub fn by_kind(&self, kind: EntryKind) -> HitMissStats {
        match kind {
            EntryKind::Data => self.data,
            EntryKind::Tlb => self.tlb,
        }
    }

    /// Counter delta relative to an `earlier` snapshot of the same
    /// cache (saturating, for telemetry epoch records).
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            data: self.data - earlier.data,
            tlb: self.tlb - earlier.tlb,
            fills: self.fills.saturating_sub(earlier.fills),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
        }
    }
}

/// Snapshot of how much of the cache each entry kind occupies (Figure 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Valid lines classified as data.
    pub data_lines: u64,
    /// Valid lines classified as TLB.
    pub tlb_lines: u64,
    /// Total line capacity (valid or not).
    pub capacity_lines: u64,
}

impl Occupancy {
    /// Fraction of total capacity holding TLB entries — the quantity
    /// Figure 3 plots.
    pub fn tlb_fraction(&self) -> f64 {
        if self.capacity_lines == 0 {
            0.0
        } else {
            self.tlb_lines as f64 / self.capacity_lines as f64
        }
    }

    /// Fraction of total capacity holding valid lines of any kind.
    pub fn valid_fraction(&self) -> f64 {
        if self.capacity_lines == 0 {
            0.0
        } else {
            (self.data_lines + self.tlb_lines) as f64 / self.capacity_lines as f64
        }
    }
}

/// Sentinel tag for an invalid way (no real tag reaches all-ones: that
/// would need a line number near `u64::MAX`, far beyond any physical
/// address space).
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative, write-back, write-allocate cache with optional way
/// partitioning between data and TLB lines.
///
/// Line metadata is struct-of-arrays: the tags sit in one flat `u64`
/// array (with [`INVALID_TAG`] marking empty ways) so the per-set way
/// scan — the hottest loop in the simulator — compares one word per way;
/// kind and dirty bits live in parallel arrays touched only on hits and
/// fills.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    /// `log2(sets)` — set count is a power of two, so the tag split is a
    /// shift rather than a division on the hot lookup path.
    set_shift: u32,
    ways: u32,
    /// Tag per slot; [`INVALID_TAG`] marks an invalid way.
    tags: Vec<u64>,
    /// Content classification per slot (garbage where invalid).
    kinds: Vec<EntryKind>,
    /// Dirty bit per slot (garbage where invalid).
    dirty: Vec<bool>,
    repl: Vec<SetReplacement>,
    /// `Some(n)` ⇒ ways `0..n` belong to data, `n..K` to TLB entries.
    data_ways: Option<u32>,
    stats: CacheStats,
    /// Last-hit `(line number → set, way)` memo; repeat hits skip the
    /// way scan and replay the hit arm's mutations (dirty bit, recency
    /// touch, per-kind hit count) with the *current* access's kind and
    /// write flag, exactly as the scan would.
    l0: L0Memo<()>,
}

impl Cache {
    /// Builds a cache with `sets` sets of `ways` ways under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `ways` is not in
    /// `1..=64`.
    pub fn new(sets: u64, ways: u32, policy: ReplacementKind) -> Self {
        assert!(sets > 0 && sets.is_power_of_two(), "sets must be 2^k");
        assert!((1..=64).contains(&ways), "ways must be in 1..=64");
        let slots = (sets * u64::from(ways)) as usize;
        Self {
            sets,
            set_shift: sets.trailing_zeros(),
            ways,
            tags: vec![INVALID_TAG; slots],
            kinds: vec![EntryKind::Data; slots],
            dirty: vec![false; slots],
            repl: (0..sets)
                .map(|_| SetReplacement::new(policy, ways))
                .collect(),
            data_ways: None,
            stats: CacheStats::default(),
            l0: L0Memo::new(),
        }
    }

    /// Builds a cache from a [`csalt_types::CacheGeometry`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate; see
    /// [`Cache::try_from_geometry`] for the fallible form.
    pub fn from_geometry(geom: &csalt_types::CacheGeometry, policy: ReplacementKind) -> Self {
        Self::try_from_geometry(geom, policy).expect("cache geometry must be valid")
    }

    /// Fallible form of [`Cache::from_geometry`]: returns the first
    /// CSALT-Axxx geometry violation instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`csalt_types::ConfigError`] when the geometry fails a
    /// static invariant (zero dimensions, non-dividing capacity, …).
    pub fn try_from_geometry(
        geom: &csalt_types::CacheGeometry,
        policy: ReplacementKind,
    ) -> Result<Self, csalt_types::ConfigError> {
        geom.validate("cache")?;
        Ok(Self::new(geom.sets(), geom.ways, policy))
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Current partition: ways reserved for data, if partitioned.
    pub fn data_ways(&self) -> Option<u32> {
        self.data_ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.l0.reset_stats();
    }

    /// Enables or disables the L0 hit-way memo (results are identical
    /// either way; only the way scan is skipped on repeats).
    pub fn set_l0_enabled(&mut self, enabled: bool) {
        self.l0.set_enabled(enabled);
    }

    /// L0 memo hit/invalidation counters.
    pub fn l0_stats(&self) -> L0Stats {
        self.l0.stats()
    }

    /// Drops the L0 memo entry (context switch hook).
    pub fn l0_invalidate(&mut self) {
        self.l0.invalidate();
    }

    /// Sets the way partition: `data_ways` ways for data lines, the rest
    /// for TLB lines. Takes effect on subsequent replacements only — no
    /// lines move (§3.1 "Cache Replacement").
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= data_ways < ways` (each kind keeps ≥ 1 way, as
    /// guaranteed by the partitioning algorithm's `Nmin`).
    pub fn set_partition(&mut self, data_ways: u32) {
        assert!(
            data_ways >= 1 && data_ways < self.ways,
            "partition must leave at least one way per kind"
        );
        self.data_ways = Some(data_ways);
        // Epoch repartition: way splits move, drop the memo.
        self.l0.invalidate();
    }

    /// Removes the partition (unmanaged replacement over all ways).
    pub fn clear_partition(&mut self) {
        self.data_ways = None;
        self.l0.invalidate();
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> u64 {
        line.line_number() & (self.sets - 1)
    }

    #[inline]
    fn tag(&self, line: LineAddr) -> u64 {
        let tag = line.line_number() >> self.set_shift;
        debug_assert!(tag != INVALID_TAG, "tag collides with invalid sentinel");
        tag
    }

    #[inline]
    fn slot(&self, set: u64, way: u32) -> usize {
        (set * u64::from(self.ways) + u64::from(way)) as usize
    }

    /// Reconstructs a line address from set + stored tag.
    #[inline]
    fn line_addr(&self, set: u64, tag: u64) -> LineAddr {
        LineAddr::from_line_number((tag << self.set_shift) + set)
    }

    /// The replacement candidate mask for an incoming line of `kind`.
    #[inline]
    fn partition_mask(&self, kind: EntryKind) -> WayMask {
        match (self.data_ways, kind) {
            (Some(n), EntryKind::Data) => way_range_mask(0, n),
            (Some(n), EntryKind::Tlb) => way_range_mask(n, self.ways),
            (None, _) => way_range_mask(0, self.ways),
        }
    }

    /// Checks for presence without disturbing replacement state or stats.
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag(line);
        let base = self.slot(set, 0);
        self.tags[base..base + self.ways as usize].contains(&tag)
    }

    /// Performs one access with conventional MRU insertion.
    ///
    /// See [`Cache::access_with_insertion`].
    pub fn access(&mut self, line: LineAddr, kind: EntryKind, write: bool) -> AccessOutcome {
        self.access_with_insertion(line, kind, write, InsertPos::Mru)
    }

    /// Performs one access: lookup over all ways; on a miss, fills the
    /// line, evicting the replacement victim from the partition's way
    /// range for `kind`. `insert` selects the fill's recency position
    /// (DIP support). Returns whether it hit and any evicted line.
    pub fn access_with_insertion(
        &mut self,
        line: LineAddr,
        kind: EntryKind,
        write: bool,
        insert: InsertPos,
    ) -> AccessOutcome {
        // L0 fast path: a repeat of the last hit line skips the way scan
        // and replays exactly the scan's hit arm below (dirty bit,
        // recency touch, per-kind hit count).
        if let Some((set, way, ())) = self.l0.hit(line.line_number()) {
            let slot = self.slot(set, way);
            self.dirty[slot] |= write;
            self.repl[set as usize].touch(way);
            self.kind_stats_mut(kind).record_hit();
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }
        let set = self.set_index(line);
        let tag = self.tag(line);
        let base = self.slot(set, 0);
        let ways = self.ways as usize;

        // Lookup: all K ways are scanned irrespective of partition. The
        // set's tags are sliced once so the scan is a flat one-word-per-
        // way compare — this is the hottest loop in the simulator.
        let set_tags = &self.tags[base..base + ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            self.dirty[base + way] |= write;
            self.repl[set as usize].touch(way as u32);
            self.kind_stats_mut(kind).record_hit();
            self.l0.remember(line.line_number(), set, way as u32, ());
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }
        self.kind_stats_mut(kind).record_miss();

        // Fill. Prefer an invalid way inside the partition range; else
        // evict the policy's victim within the range.
        let mask = self.partition_mask(kind);
        let invalid_way = (0..self.ways)
            .filter(|&w| mask & (1u64 << w) != 0)
            .find(|&w| self.tags[base + w as usize] == INVALID_TAG);
        let (way, evicted) = match invalid_way {
            Some(w) => (w, None),
            None => {
                let w = self.repl[set as usize].victim(mask);
                let slot = self.slot(set, w);
                let old_tag = self.tags[slot];
                debug_assert!(old_tag != INVALID_TAG);
                let old_dirty = self.dirty[slot];
                self.stats.evictions += 1;
                if old_dirty {
                    self.stats.writebacks += 1;
                }
                (
                    w,
                    Some(Evicted {
                        line: self.line_addr(set, old_tag),
                        kind: self.kinds[slot],
                        dirty: old_dirty,
                    }),
                )
            }
        };

        // The fill (and any eviction) rewrote a way of this set; a memo
        // pointing into it would be stale.
        self.l0.invalidate_set(set);
        let slot = self.slot(set, way);
        self.tags[slot] = tag;
        self.kinds[slot] = kind;
        self.dirty[slot] = write;
        self.stats.fills += 1;
        // Mru: make the fill most-recent (or RRIP's SRRIP long insert);
        // Lru: leave it the preferred victim (LIP/BIP; BRRIP for RRIP
        // storage).
        self.repl[set as usize].on_fill(way, insert == InsertPos::Lru);

        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Invalidates a line if present, returning it (for writeback by the
    /// caller if dirty). Used for inclusive-hierarchy back-invalidation.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        for way in 0..self.ways {
            let slot = self.slot(set, way);
            if self.tags[slot] == tag {
                self.tags[slot] = INVALID_TAG;
                self.l0.invalidate_set(set);
                return Some(Evicted {
                    line: self.line_addr(set, tag),
                    kind: self.kinds[slot],
                    dirty: self.dirty[slot],
                });
            }
        }
        None
    }

    /// Scans the array and reports per-kind occupancy (Figure 3's metric;
    /// the paper's simulator does exactly this scan periodically).
    pub fn occupancy(&self) -> Occupancy {
        let mut occ = Occupancy {
            capacity_lines: self.sets * u64::from(self.ways),
            ..Occupancy::default()
        };
        for (t, k) in self.tags.iter().zip(&self.kinds) {
            if *t != INVALID_TAG {
                match k {
                    EntryKind::Data => occ.data_lines += 1,
                    EntryKind::Tlb => occ.tlb_lines += 1,
                }
            }
        }
        occ
    }

    /// The estimated LRU stack position the given line currently holds,
    /// if present (exact under True-LRU). Exposed for profiler coupling
    /// and tests.
    pub fn stack_position_of(&self, line: LineAddr) -> Option<u32> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        (0..self.ways)
            .find(|&w| self.tags[self.slot(set, w)] == tag)
            .map(|w| self.repl[set as usize].stack_position(w))
    }

    #[inline]
    fn kind_stats_mut(&mut self, kind: EntryKind) -> &mut HitMissStats {
        match kind {
            EntryKind::Data => &mut self.stats.data,
            EntryKind::Tlb => &mut self.stats.tlb,
        }
    }

    /// Serializes the full result-affecting cache state: geometry guard
    /// words, tag/kind/dirty arrays, partition, per-kind statistics and
    /// per-set replacement state. The L0 memo is *not* serialized (it
    /// is a behaviour-invisible accelerator; restore invalidates it).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.sets);
        w.u32(self.ways);
        // Tags are stored XOR [`INVALID_TAG`] so invalid lines (all of
        // them in a freshly-warmed large cache) serialize as zero and
        // the sparse streaming encode collapses them.
        w.iter_u64(self.tags.len(), self.tags.iter().map(|&t| t ^ INVALID_TAG));
        w.iter_u8(
            self.kinds.len(),
            self.kinds.iter().map(|k| match k {
                EntryKind::Data => 0u8,
                EntryKind::Tlb => 1u8,
            }),
        );
        w.iter_u8(self.dirty.len(), self.dirty.iter().map(|&d| u8::from(d)));
        match self.data_ways {
            Some(n) => {
                w.bool(true);
                w.u32(n);
            }
            None => {
                w.bool(false);
                w.u32(0);
            }
        }
        w.u64(self.stats.data.hits);
        w.u64(self.stats.data.misses);
        w.u64(self.stats.tlb.hits);
        w.u64(self.stats.tlb.misses);
        w.u64(self.stats.fills);
        w.u64(self.stats.evictions);
        w.u64(self.stats.writebacks);
        for set in &self.repl {
            set.ckpt_save(w);
        }
    }

    /// Restores state written by [`Cache::ckpt_save`] into this
    /// (config-constructed) cache. Geometry must match; the L0 memo is
    /// invalidated so the first post-restore access rescans.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.sets || r.u32()? != self.ways {
            return Err(CkptError::Mismatch("cache geometry"));
        }
        let tags: Vec<u64> = r.vec_u64()?.into_iter().map(|t| t ^ INVALID_TAG).collect();
        if tags.len() != self.tags.len() {
            return Err(CkptError::Mismatch("cache tag array length"));
        }
        let kinds = r.vec_u8()?;
        if kinds.len() != self.kinds.len() {
            return Err(CkptError::Mismatch("cache kind array length"));
        }
        let dirty = r.vec_u8()?;
        if dirty.len() != self.dirty.len() {
            return Err(CkptError::Mismatch("cache dirty array length"));
        }
        self.tags = tags;
        for (dst, &b) in self.kinds.iter_mut().zip(kinds.iter()) {
            *dst = match b {
                0 => EntryKind::Data,
                1 => EntryKind::Tlb,
                _ => return Err(CkptError::Corrupt("entry kind byte")),
            };
        }
        for (dst, &b) in self.dirty.iter_mut().zip(dirty.iter()) {
            *dst = match b {
                0 => false,
                1 => true,
                _ => return Err(CkptError::Corrupt("dirty byte")),
            };
        }
        let partitioned = r.bool()?;
        let n = r.u32()?;
        self.data_ways = if partitioned {
            if !(1..self.ways).contains(&n) {
                return Err(CkptError::Corrupt("partition out of range"));
            }
            Some(n)
        } else {
            None
        };
        self.stats.data.hits = r.u64()?;
        self.stats.data.misses = r.u64()?;
        self.stats.tlb.hits = r.u64()?;
        self.stats.tlb.misses = r.u64()?;
        self.stats.fills = r.u64()?;
        self.stats.evictions = r.u64()?;
        self.stats.writebacks = r.u64()?;
        for set in &mut self.repl {
            set.ckpt_load(r)?;
        }
        self.l0.invalidate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    fn small_cache() -> Cache {
        Cache::new(4, 4, ReplacementKind::TrueLru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        let a = line(0x100);
        assert!(!c.access(a, EntryKind::Data, false).hit);
        assert!(c.access(a, EntryKind::Data, false).hit);
        assert_eq!(c.stats().data.hits, 1);
        assert_eq!(c.stats().data.misses, 1);
        assert!(c.probe(a));
    }

    #[test]
    fn distinct_tags_same_set_coexist_up_to_ways() {
        let mut c = small_cache();
        // Same set (stride = sets), 4 distinct tags fill all ways.
        for i in 0..4 {
            assert!(!c.access(line(i * 4), EntryKind::Data, false).hit);
        }
        for i in 0..4 {
            assert!(c.access(line(i * 4), EntryKind::Data, false).hit);
        }
        // Fifth tag evicts LRU (the first inserted).
        let out = c.access(line(16), EntryKind::Data, false);
        assert!(!out.hit);
        assert_eq!(out.evicted.expect("evicts").line, line(0));
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_writeback() {
        let mut c = small_cache();
        c.access(line(0), EntryKind::Data, true);
        for i in 1..4 {
            c.access(line(i * 4), EntryKind::Data, false);
        }
        let out = c.access(line(16), EntryKind::Data, false);
        let ev = out.evicted.expect("eviction");
        assert!(ev.dirty, "written line must evict dirty");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn partition_confines_victims() {
        let mut c = small_cache();
        c.set_partition(2); // ways 0-1 data, 2-3 TLB
                            // Fill 2 data lines and 2 TLB lines (same set).
        c.access(line(0), EntryKind::Data, false);
        c.access(line(4), EntryKind::Data, false);
        c.access(line(8), EntryKind::Tlb, false);
        c.access(line(12), EntryKind::Tlb, false);
        // New data line must evict a *data* line, not a TLB line.
        let out = c.access(line(16), EntryKind::Data, false);
        assert_eq!(out.evicted.expect("eviction").kind, EntryKind::Data);
        // New TLB line must evict a TLB line.
        let out = c.access(line(20), EntryKind::Tlb, false);
        assert_eq!(out.evicted.expect("eviction").kind, EntryKind::Tlb);
    }

    #[test]
    fn lookup_hits_across_partition_boundary() {
        let mut c = small_cache();
        // Fill a TLB line with no partition: it may land in any way.
        c.access(line(8), EntryKind::Tlb, false);
        // Now partition so that its way nominally belongs to data.
        c.set_partition(3);
        // Lookup must still hit (all ways scanned).
        assert!(c.access(line(8), EntryKind::Tlb, false).hit);
    }

    #[test]
    fn repartition_moves_no_lines() {
        let mut c = small_cache();
        for i in 0..4 {
            c.access(line(i * 4), EntryKind::Data, false);
        }
        let occ_before = c.occupancy();
        c.set_partition(1);
        assert_eq!(c.occupancy(), occ_before);
        c.clear_partition();
        assert_eq!(c.occupancy(), occ_before);
    }

    #[test]
    fn occupancy_counts_kinds() {
        let mut c = small_cache();
        c.access(line(0), EntryKind::Data, false);
        c.access(line(1), EntryKind::Tlb, false);
        c.access(line(2), EntryKind::Tlb, false);
        let occ = c.occupancy();
        assert_eq!(occ.data_lines, 1);
        assert_eq!(occ.tlb_lines, 2);
        assert_eq!(occ.capacity_lines, 16);
        assert!((occ.tlb_fraction() - 2.0 / 16.0).abs() < 1e-12);
        assert!((occ.valid_fraction() - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn lru_insertion_is_evicted_first() {
        let mut c = small_cache();
        for i in 0..4 {
            c.access(line(i * 4), EntryKind::Data, false);
        }
        // Fill a new line at LRU position.
        c.access_with_insertion(line(16), EntryKind::Data, false, InsertPos::Lru);
        // The next miss should evict the LRU-inserted line, not an older
        // MRU-inserted one... except way recency: the LRU-inserted line
        // inherited its victim way's (LRU) position.
        let out = c.access(line(20), EntryKind::Data, false);
        assert_eq!(out.evicted.expect("eviction").line, line(16));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.access(line(7), EntryKind::Data, true);
        let ev = c.invalidate(line(7)).expect("line present");
        assert!(ev.dirty);
        assert!(!c.probe(line(7)));
        assert!(c.invalidate(line(7)).is_none());
    }

    #[test]
    fn from_geometry_derives_shape() {
        let geom = csalt_types::SystemConfig::skylake().l2;
        let c = Cache::from_geometry(&geom, ReplacementKind::TrueLru);
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn stack_position_of_tracks_recency() {
        let mut c = small_cache();
        c.access(line(0), EntryKind::Data, false);
        c.access(line(4), EntryKind::Data, false);
        assert_eq!(c.stack_position_of(line(4)), Some(0));
        assert_eq!(c.stack_position_of(line(0)), Some(1));
        assert_eq!(c.stack_position_of(line(8)), None);
    }

    #[test]
    #[should_panic(expected = "at least one way per kind")]
    fn full_partition_rejected() {
        let mut c = small_cache();
        c.set_partition(4);
    }

    #[test]
    fn l0_memo_is_behaviour_invisible() {
        // Same access schedule with the memo on and off: identical
        // outcomes (hits, evicted lines), stats and final contents, even
        // across a repartition and a mid-stream invalidate.
        let mut on = small_cache();
        let mut off = small_cache();
        off.set_l0_enabled(false);
        let schedule: &[(u64, EntryKind, bool)] = &[
            (0, EntryKind::Data, false),
            (0, EntryKind::Data, true), // memoized repeat, sets dirty
            (0, EntryKind::Tlb, false), // repeat under a different kind
            (4, EntryKind::Data, false),
            (0, EntryKind::Data, false),
            (8, EntryKind::Tlb, false),
            (12, EntryKind::Tlb, false),
            (16, EntryKind::Data, false), // set 0 full → eviction
            (0, EntryKind::Data, false),
        ];
        for &(n, kind, write) in schedule {
            assert_eq!(
                on.access(line(n), kind, write),
                off.access(line(n), kind, write)
            );
        }
        on.set_partition(2);
        off.set_partition(2);
        for &(n, kind, write) in schedule {
            assert_eq!(
                on.access(line(n), kind, write),
                off.access(line(n), kind, write)
            );
        }
        assert_eq!(on.invalidate(line(0)), off.invalidate(line(0)));
        assert!(!on.access(line(0), EntryKind::Data, false).hit);
        assert!(!off.access(line(0), EntryKind::Data, false).hit);
        assert_eq!(on.stats(), off.stats());
        assert_eq!(on.occupancy(), off.occupancy());
        assert!(on.l0_stats().hits > 0, "repeats should hit the memo");
        assert_eq!(off.l0_stats().hits, 0);
    }

    #[test]
    fn per_kind_stats_are_separate() {
        let mut c = small_cache();
        c.access(line(0), EntryKind::Data, false);
        c.access(line(64), EntryKind::Tlb, false);
        c.access(line(64), EntryKind::Tlb, false);
        assert_eq!(c.stats().data.misses, 1);
        assert_eq!(c.stats().tlb.misses, 1);
        assert_eq!(c.stats().tlb.hits, 1);
        assert_eq!(c.stats().total().accesses(), 3);
        assert_eq!(c.stats().by_kind(EntryKind::Tlb).hits, 1);
    }
}
