//! Set-associative cache substrate for the CSALT simulator.
//!
//! Provides the data-cache machinery the paper's evaluation rests on:
//!
//! * [`Cache`] — a write-back, write-allocate set-associative cache whose
//!   lines carry the Data/TLB classification, with **way partitioning**
//!   enforced at replacement time exactly as §3.1 specifies (lookups scan
//!   all ways; fills evict only within the partition's way range).
//! * [`SetReplacement`] — True-LRU, NRU and binary-tree pseudo-LRU
//!   replacement with partition-restricted victim selection and LRU
//!   stack-position estimation (§3.4).
//! * [`DipController`] — the set-dueling Dynamic Insertion Policy baseline
//!   the paper compares against (§5.2).
//!
//! # Example
//!
//! ```
//! use csalt_cache::Cache;
//! use csalt_types::{EntryKind, LineAddr, ReplacementKind};
//!
//! let mut l2 = Cache::new(1024, 4, ReplacementKind::TrueLru);
//! l2.set_partition(3); // 3 ways for data, 1 way for TLB entries
//!
//! let line = LineAddr::from_line_number(0x40);
//! assert!(!l2.access(line, EntryKind::Data, false).hit);
//! assert!(l2.access(line, EntryKind::Data, false).hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dip;
mod replacement;

pub use cache::{AccessOutcome, Cache, CacheStats, Evicted, InsertPos, Occupancy};
pub use dip::{DipController, DuelRole};
pub use replacement::{way_range_mask, SetReplacement, WayMask};
