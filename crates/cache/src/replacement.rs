//! Per-set replacement state: True-LRU, NRU and binary-tree pseudo-LRU.
//!
//! CSALT's partitioning algorithms need two things from the replacement
//! policy (§3.1, §3.4 of the paper):
//!
//! 1. victim selection *restricted to a subset of ways* (the partition's
//!    range for the incoming line's kind), and
//! 2. an estimate of the accessed way's LRU *stack position*, which feeds
//!    the stack-distance profilers. With True-LRU the position is exact;
//!    for NRU and BT-PLRU the paper leverages Kędzierski et al. (IPDPS'10)
//!    to estimate it, at a small accuracy cost.
//!
//! [`SetReplacement`] provides both operations behind one interface so the
//! cache proper is policy-agnostic.

use csalt_types::{CkptError, CkptReader, CkptWriter, ReplacementKind};

/// Bitmask of candidate ways (bit *i* set ⇒ way *i* may be chosen).
pub type WayMask = u64;

/// Builds a mask covering ways `lo..hi` (exclusive upper bound).
///
/// # Panics
///
/// Panics if `hi < lo` or `hi > 64`.
#[inline]
pub fn way_range_mask(lo: u32, hi: u32) -> WayMask {
    assert!(hi >= lo && hi <= 64, "invalid way range {lo}..{hi}");
    if hi == lo {
        return 0;
    }
    let width = hi - lo;
    if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << lo
    }
}

/// Replacement metadata for one cache set.
///
/// All variants support the same three operations: [`touch`] (on hit or
/// fill), [`victim`] (choose a way to evict from a candidate mask) and
/// [`stack_position`] (exact or estimated LRU stack depth of a way).
///
/// [`touch`]: SetReplacement::touch
/// [`victim`]: SetReplacement::victim
/// [`stack_position`]: SetReplacement::stack_position
#[derive(Debug, Clone)]
pub enum SetReplacement {
    /// Exact recency via monotonic stamps: a touch writes one stamp, the
    /// victim is the minimum-stamp way. Stamps are always distinct, so
    /// the order is total — identical semantics to an MRU list without
    /// moving elements on every touch.
    TrueLru {
        /// Last-touch stamp per way; larger = more recent.
        stamps: Vec<u64>,
        /// Monotonic touch counter.
        clock: u64,
    },
    /// One "not recently used" bit per way (1 = not recently used).
    Nru {
        /// NRU bits; bit *i* set means way *i* has not been used recently.
        bits: WayMask,
        /// Number of ways.
        ways: u32,
    },
    /// Binary-tree pseudo-LRU. `tree` holds `ways - 1` internal-node bits
    /// in heap order; a 0 bit points left (lower half), 1 points right.
    BtPlru {
        /// Internal-node direction bits, heap-ordered, bit 1 = root.
        tree: u64,
        /// Number of ways (must be a power of two).
        ways: u32,
    },
    /// 2-bit Re-Reference Interval Prediction (Jaleel et al., ISCA'10).
    /// RRPV 0 = near-immediate re-reference, 3 = distant (victim).
    /// Combined with set dueling over insertion position this realizes
    /// DRRIP, one of the replacement baselines the paper's related work
    /// (§6) discusses.
    Rrip {
        /// Per-way 2-bit re-reference prediction values.
        rrpv: Vec<u8>,
    },
}

impl SetReplacement {
    /// Creates fresh state for a `ways`-way set under the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0, exceeds 64, or (for BT-PLRU) is not a power
    /// of two.
    pub fn new(kind: ReplacementKind, ways: u32) -> Self {
        assert!((1..=64).contains(&ways), "ways must be in 1..=64");
        match kind {
            ReplacementKind::TrueLru => SetReplacement::TrueLru {
                // Initial order: way 0 is MRU ... way K-1 is LRU; with an
                // empty set, victims come from the high ways first.
                stamps: (0..u64::from(ways)).rev().map(|s| s + 1).collect(),
                clock: u64::from(ways),
            },
            ReplacementKind::Nru => SetReplacement::Nru {
                bits: way_range_mask(0, ways),
                ways,
            },
            ReplacementKind::BtPlru => {
                assert!(
                    ways.is_power_of_two(),
                    "BT-PLRU requires power-of-two associativity"
                );
                SetReplacement::BtPlru { tree: 0, ways }
            }
            ReplacementKind::Rrip => SetReplacement::Rrip {
                // Everything starts distant, so cold ways are victims.
                rrpv: vec![3; ways as usize],
            },
        }
    }

    /// Number of ways this state covers.
    pub fn ways(&self) -> u32 {
        match self {
            SetReplacement::TrueLru { stamps, .. } => stamps.len() as u32,
            SetReplacement::Nru { ways, .. } | SetReplacement::BtPlru { ways, .. } => *ways,
            SetReplacement::Rrip { rrpv } => rrpv.len() as u32,
        }
    }

    /// Marks `way` most-recently-used (called on every hit and fill).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: u32) {
        assert!(way < self.ways(), "way {way} out of range");
        match self {
            SetReplacement::TrueLru { stamps, clock } => {
                *clock += 1;
                stamps[way as usize] = *clock;
            }
            SetReplacement::Nru { bits, ways } => {
                *bits &= !(1u64 << way);
                // When every way becomes recently-used, reset all other
                // bits, keeping this way marked used (standard NRU).
                if *bits == 0 {
                    *bits = way_range_mask(0, *ways) & !(1u64 << way);
                }
            }
            SetReplacement::BtPlru { tree, ways } => {
                // Walk root → leaf, setting each node to point *away*
                // from the touched way.
                let levels = ways.trailing_zeros();
                let mut node = 1u32; // heap index, root = 1
                for level in (0..levels).rev() {
                    let bit = (way >> level) & 1;
                    // Point away: store the complement of the direction
                    // taken.
                    if bit == 0 {
                        *tree |= 1u64 << node; // we went left; point right
                    } else {
                        *tree &= !(1u64 << node); // we went right; point left
                    }
                    node = node * 2 + bit;
                }
            }
            SetReplacement::Rrip { rrpv } => {
                // Hit promotion: predict near-immediate re-reference.
                rrpv[way as usize] = 0;
            }
        }
    }

    /// Fill hook: establishes the inserted way's replacement state.
    /// For recency policies, `distant` leaves the way at its inherited
    /// (victim) recency — the LIP/BIP realization — while a normal fill
    /// touches it to MRU. For RRIP storage, `distant` is BRRIP's RRPV-3
    /// insertion and normal is SRRIP's RRPV-2 long insertion.
    pub fn on_fill(&mut self, way: u32, distant: bool) {
        match self {
            SetReplacement::Rrip { rrpv } => {
                rrpv[way as usize] = if distant { 3 } else { 2 };
            }
            _ => {
                if !distant {
                    self.touch(way);
                }
            }
        }
    }

    /// Chooses the eviction victim among the ways allowed by `mask`.
    ///
    /// For True-LRU this is the least-recently-used allowed way. For NRU,
    /// the lowest allowed way with its NRU bit set (resetting allowed bits
    /// if none is set — the partition-local variant of NRU's global reset).
    /// For BT-PLRU, the tree is walked toward the pointed-to half whenever
    /// that half still contains an allowed way.
    ///
    /// # Panics
    ///
    /// Panics if `mask` selects no way within range.
    pub fn victim(&mut self, mask: WayMask) -> u32 {
        let full = way_range_mask(0, self.ways());
        let mask = mask & full;
        assert!(mask != 0, "victim mask selects no way");
        match self {
            SetReplacement::TrueLru { stamps, .. } => stamps
                .iter()
                .enumerate()
                .filter(|(w, _)| mask & (1u64 << w) != 0)
                .min_by_key(|(_, &s)| s)
                .map(|(w, _)| w as u32)
                .expect("mask verified nonempty"),
            SetReplacement::Nru { bits, .. } => {
                if *bits & mask == 0 {
                    // All allowed ways recently used: age them.
                    *bits |= mask;
                }
                (*bits & mask).trailing_zeros()
            }
            SetReplacement::BtPlru { tree, ways } => {
                let levels = ways.trailing_zeros();
                let mut node = 1u32;
                let mut way = 0u32;
                for level in (0..levels).rev() {
                    let point_right = (*tree >> node) & 1 == 1;
                    let half = 1u32 << level;
                    let left_mask = subtree_mask(way, half);
                    let right_mask = subtree_mask(way + half, half);
                    let go_right = if point_right {
                        mask & right_mask != 0
                    } else {
                        // Pointed left, but only if an allowed way exists.
                        mask & left_mask == 0
                    };
                    if go_right {
                        way += half;
                        node = node * 2 + 1;
                    } else {
                        node *= 2;
                    }
                }
                debug_assert!(mask & (1u64 << way) != 0);
                way
            }
            SetReplacement::Rrip { rrpv } => {
                // Find the first allowed way predicted "distant" (RRPV
                // 3); age the allowed ways until one appears.
                loop {
                    if let Some(w) = (0..rrpv.len() as u32)
                        .find(|&w| mask & (1u64 << w) != 0 && rrpv[w as usize] >= 3)
                    {
                        return w;
                    }
                    for (w, v) in rrpv.iter_mut().enumerate() {
                        if mask & (1u64 << w) != 0 {
                            *v += 1;
                        }
                    }
                }
            }
        }
    }

    /// Exact (True-LRU) or estimated (NRU / BT-PLRU, per Kędzierski et
    /// al.) LRU stack position of `way`; 0 is MRU, `ways-1` is LRU.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn stack_position(&self, way: u32) -> u32 {
        assert!(way < self.ways(), "way {way} out of range");
        match self {
            SetReplacement::TrueLru { stamps, .. } => {
                // Exact depth: the number of ways touched more recently.
                let s = stamps[way as usize];
                stamps.iter().filter(|&&o| o > s).count() as u32
            }
            SetReplacement::Nru { bits, ways } => {
                // Recently-used ways are estimated to occupy the upper
                // (MRU) half of the stack, others the lower half; within a
                // half, order by way index for determinism.
                let used_mask = way_range_mask(0, *ways) & !*bits;
                let is_used = bits & (1u64 << way) == 0;
                if is_used {
                    rank_within(used_mask, way)
                } else {
                    used_mask.count_ones() + rank_within(*bits, way)
                }
            }
            SetReplacement::BtPlru { tree, ways } => {
                // Identifier-based estimate: each tree node on the path
                // that points *away* from this way counts as evidence of
                // recency; accumulate binary weights to place the way in
                // the stack (Kędzierski et al. §IV-B).
                let levels = ways.trailing_zeros();
                let mut node = 1u32;
                let mut position = 0u32;
                for level in (0..levels).rev() {
                    let bit = (way >> level) & 1;
                    let points_right = (*tree >> node) & 1 == 1;
                    // If the node points toward this way's half, the way
                    // is closer to being the victim: add that level's
                    // weight.
                    let toward = (bit == 1) == points_right;
                    if toward {
                        position += 1u32 << level;
                    }
                    node = node * 2 + bit;
                }
                position
            }
            SetReplacement::Rrip { rrpv } => {
                // Estimate: quarter of the stack per RRPV step, ranked
                // by way index within a step for determinism.
                let k = rrpv.len() as u32;
                let v = u32::from(rrpv[way as usize]);
                let rank = (0..way)
                    .filter(|&w| u32::from(rrpv[w as usize]) == v)
                    .count() as u32;
                (v * k / 4 + rank).min(k - 1)
            }
        }
    }
    /// Serializes this set's replacement state: a one-byte variant tag
    /// followed by the variant's fields, fixed-width.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        match self {
            SetReplacement::TrueLru { stamps, clock } => {
                w.u8(0);
                w.slice_u64(stamps);
                w.u64(*clock);
            }
            SetReplacement::Nru { bits, ways } => {
                w.u8(1);
                w.u64(*bits);
                w.u32(*ways);
            }
            SetReplacement::BtPlru { tree, ways } => {
                w.u8(2);
                w.u64(*tree);
                w.u32(*ways);
            }
            SetReplacement::Rrip { rrpv } => {
                w.u8(3);
                w.bytes(rrpv);
            }
        }
    }

    /// Restores state written by [`SetReplacement::ckpt_save`] into this
    /// (config-constructed) instance. The stored variant and way count
    /// must match the receiver's.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let tag = r.u8()?;
        match (tag, &mut *self) {
            (0, SetReplacement::TrueLru { stamps, clock }) => {
                let got = r.vec_u64()?;
                if got.len() != stamps.len() {
                    return Err(CkptError::Mismatch("true-lru way count"));
                }
                *stamps = got;
                *clock = r.u64()?;
            }
            (1, SetReplacement::Nru { bits, ways }) => {
                let b = r.u64()?;
                let k = r.u32()?;
                if k != *ways {
                    return Err(CkptError::Mismatch("nru way count"));
                }
                *bits = b;
                *ways = k;
            }
            (2, SetReplacement::BtPlru { tree, ways }) => {
                let t = r.u64()?;
                let k = r.u32()?;
                if k != *ways {
                    return Err(CkptError::Mismatch("bt-plru way count"));
                }
                *tree = t;
                *ways = k;
            }
            (3, SetReplacement::Rrip { rrpv }) => {
                let got = r.bytes()?;
                if got.len() != rrpv.len() {
                    return Err(CkptError::Mismatch("rrip way count"));
                }
                rrpv.copy_from_slice(got);
            }
            _ => return Err(CkptError::Mismatch("replacement policy variant")),
        }
        Ok(())
    }
}

/// Mask covering `count` ways starting at `start`.
#[inline]
fn subtree_mask(start: u32, count: u32) -> WayMask {
    way_range_mask(start, start + count)
}

/// Rank (0-based) of `way` among the set bits of `mask`.
#[inline]
fn rank_within(mask: WayMask, way: u32) -> u32 {
    (mask & ((1u64 << way) - 1)).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn way_range_mask_basics() {
        assert_eq!(way_range_mask(0, 4), 0b1111);
        assert_eq!(way_range_mask(2, 5), 0b11100);
        assert_eq!(way_range_mask(3, 3), 0);
        assert_eq!(way_range_mask(0, 64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid way range")]
    fn way_range_mask_rejects_inverted() {
        way_range_mask(5, 2);
    }

    #[test]
    fn true_lru_exact_order() {
        let mut r = SetReplacement::new(ReplacementKind::TrueLru, 4);
        r.touch(2); // order: 2 0 1 3
        r.touch(1); // order: 1 2 0 3
        assert_eq!(r.stack_position(1), 0);
        assert_eq!(r.stack_position(2), 1);
        assert_eq!(r.stack_position(0), 2);
        assert_eq!(r.stack_position(3), 3);
        assert_eq!(r.victim(way_range_mask(0, 4)), 3);
        // Restricted to ways {0,1}: LRU among them is 0.
        assert_eq!(r.victim(0b0011), 0);
    }

    #[test]
    fn true_lru_victim_respects_partition() {
        let mut r = SetReplacement::new(ReplacementKind::TrueLru, 8);
        for w in [7, 6, 5, 4, 3, 2, 1, 0] {
            r.touch(w); // 0 is now MRU, 7 LRU
        }
        // Only ways 0..4 allowed: victim must be way 3 (the LRU of those).
        assert_eq!(r.victim(way_range_mask(0, 4)), 3);
        // Only ways 4..8 allowed: victim must be way 7.
        assert_eq!(r.victim(way_range_mask(4, 8)), 7);
    }

    #[test]
    fn nru_victims_prefer_unused() {
        let mut r = SetReplacement::new(ReplacementKind::Nru, 4);
        r.touch(0);
        r.touch(1);
        // Ways 2,3 still "not recently used".
        assert_eq!(r.victim(way_range_mask(0, 4)), 2);
        r.touch(2);
        r.touch(3); // all used → internal reset keeps 3 used
        let v = r.victim(way_range_mask(0, 4));
        assert_ne!(v, 3, "most recent way should not be the victim");
    }

    #[test]
    fn nru_partition_local_reset() {
        let mut r = SetReplacement::new(ReplacementKind::Nru, 4);
        for w in 0..4 {
            r.touch(w);
        }
        // After global use, restricting to {0,1} must still yield a victim.
        let v = r.victim(0b0011);
        assert!(v < 2);
    }

    #[test]
    fn nru_stack_positions_rank_used_before_unused() {
        let mut r = SetReplacement::new(ReplacementKind::Nru, 4);
        r.touch(3);
        // Used way 3 must rank above (closer to MRU than) unused ways.
        let p3 = r.stack_position(3);
        for w in 0..3 {
            assert!(p3 < r.stack_position(w));
        }
    }

    #[test]
    fn btplru_touch_protects_way() {
        let mut r = SetReplacement::new(ReplacementKind::BtPlru, 8);
        r.touch(5);
        let v = r.victim(way_range_mask(0, 8));
        assert_ne!(v, 5, "just-touched way must not be the victim");
    }

    #[test]
    fn btplru_victim_respects_partition() {
        let mut r = SetReplacement::new(ReplacementKind::BtPlru, 8);
        for w in 0..8 {
            r.touch(w);
        }
        for _ in 0..16 {
            let v = r.victim(way_range_mask(0, 3));
            assert!(v < 3, "victim {v} escaped partition");
            r.touch(v);
        }
    }

    #[test]
    fn btplru_stack_position_monotone_for_fresh_touch() {
        let mut r = SetReplacement::new(ReplacementKind::BtPlru, 8);
        r.touch(4);
        assert_eq!(r.stack_position(4), 0, "touched way estimated MRU");
        // The PLRU victim should have the maximal estimate.
        let v = r.victim(way_range_mask(0, 8));
        let pv = r.stack_position(v);
        for w in 0..8 {
            assert!(r.stack_position(w) <= pv);
        }
    }

    #[test]
    fn victim_cycle_covers_all_ways_true_lru() {
        // Repeatedly evicting + touching the victim must cycle fairly.
        let mut r = SetReplacement::new(ReplacementKind::TrueLru, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let v = r.victim(way_range_mask(0, 4));
            seen.insert(v);
            r.touch(v);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "victim mask selects no way")]
    fn empty_mask_panics() {
        let mut r = SetReplacement::new(ReplacementKind::TrueLru, 4);
        r.victim(0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn btplru_rejects_non_power_of_two() {
        SetReplacement::new(ReplacementKind::BtPlru, 12);
    }

    #[test]
    fn rrip_victims_prefer_distant_ways() {
        let mut r = SetReplacement::new(ReplacementKind::Rrip, 4);
        // Fill all 4 ways with long (SRRIP) insertions.
        for w in 0..4 {
            let v = r.victim(way_range_mask(0, 4));
            assert_eq!(v, w, "cold fill takes ways in order");
            r.on_fill(v, false);
        }
        // Touch way 1: it becomes near-immediate.
        r.touch(1);
        // Aging must find a victim and it must not be way 1.
        let v = r.victim(way_range_mask(0, 4));
        assert_ne!(v, 1);
    }

    #[test]
    fn rrip_distant_insertion_is_next_victim() {
        let mut r = SetReplacement::new(ReplacementKind::Rrip, 4);
        for w in 0..4 {
            r.on_fill(w, false); // RRPV 2
        }
        r.on_fill(2, true); // BRRIP distant insert at way 2
        assert_eq!(r.victim(way_range_mask(0, 4)), 2);
    }

    #[test]
    fn rrip_respects_partition_mask() {
        let mut r = SetReplacement::new(ReplacementKind::Rrip, 8);
        for w in 0..8 {
            r.on_fill(w, false);
            r.touch(w); // everything near-immediate
        }
        for _ in 0..16 {
            let v = r.victim(way_range_mask(2, 5));
            assert!((2..5).contains(&v), "victim {v} escaped mask");
            r.touch(v);
        }
    }

    #[test]
    fn rrip_stack_positions_rank_by_rrpv() {
        let mut r = SetReplacement::new(ReplacementKind::Rrip, 8);
        for w in 0..8 {
            r.on_fill(w, false);
        }
        r.touch(3); // RRPV 0 → most recent
        assert!(r.stack_position(3) < r.stack_position(0));
    }

    #[test]
    fn twelve_way_nru_works() {
        // The paper's L2 TLB is 12-way; NRU must handle non-power-of-two.
        let mut r = SetReplacement::new(ReplacementKind::Nru, 12);
        for w in 0..12 {
            r.touch(w);
        }
        let v = r.victim(way_range_mask(0, 12));
        assert!(v < 12);
    }
}
