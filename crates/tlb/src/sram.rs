//! On-chip SRAM TLBs: the per-core L1 (split by page size) and unified L2
//! levels of the paper's Table 2, ASID-tagged so context switches do not
//! flush them (§1).

use csalt_cache::SetReplacement;
use csalt_types::{
    Asid, CkptError, CkptReader, CkptWriter, Cycle, HitMissStats, L0Memo, L0Stats, PageSize,
    PhysFrame, ReplacementKind, TlbGeometry, VirtPage,
};

/// Encodes a page size as a one-byte checkpoint code.
pub(crate) fn size_code(size: PageSize) -> u8 {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

/// Decodes a checkpoint page-size code.
pub(crate) fn size_from_code(code: u8) -> Result<PageSize, CkptError> {
    match code {
        0 => Ok(PageSize::Size4K),
        1 => Ok(PageSize::Size2M),
        2 => Ok(PageSize::Size1G),
        _ => Err(CkptError::Corrupt("page size code")),
    }
}

/// Full lookup key: virtual page (number + size) and address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbKey {
    /// The virtual page.
    pub page: VirtPage,
    /// The owning address space.
    pub asid: Asid,
}

/// Sentinel for an empty way (no real packed key reaches all-ones: the
/// VPN would have to exceed the 48-bit address space).
pub(crate) const EMPTY: u64 = csalt_types::PACKED_TLB_EMPTY;

/// Packs a [`TlbKey`] into one comparable word so the per-set way scan
/// compares one `u64` per way instead of a multi-word struct. The layout
/// (VPN above, 2-bit page-size code, 16-bit ASID) is defined once in
/// [`csalt_types::pack_tlb_key`] so the pipeline's producer stage can
/// precompute identical keys.
#[inline]
pub(crate) fn pack(key: &TlbKey) -> u64 {
    csalt_types::pack_tlb_key(key.page.vpn(), key.page.size(), key.asid)
}

/// A set-associative, ASID-tagged SRAM TLB.
///
/// Used for both L1 TLBs (one instance per page size) and the unified L2
/// TLB (entries of both sizes coexist; the set index mixes the page size
/// so 4 KiB and 2 MiB entries of the same region do not collide).
/// Storage is struct-of-arrays: packed keys in one flat `u64` array
/// (scanned on the hot path) with frames alongside.
#[derive(Debug, Clone)]
pub struct SramTlb {
    sets: u32,
    ways: u32,
    latency: Cycle,
    /// Packed keys per slot; [`EMPTY`] marks an invalid way.
    keys: Vec<u64>,
    /// Frame per slot, parallel to `keys` (garbage where empty).
    frames: Vec<PhysFrame>,
    repl: Vec<SetReplacement>,
    stats: HitMissStats,
    /// Last-hit `(packed key → set, way)` memo; payload is the hit frame.
    /// On a repeat lookup the set scan is skipped and the hit path's
    /// mutations (recency stamp, hit counter) are replayed verbatim.
    l0: L0Memo<PhysFrame>,
}

impl SramTlb {
    /// Builds a TLB from its geometry, with True-LRU replacement (SRAM
    /// TLBs are small enough that real hardware implements exact LRU).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate or the set count is not a
    /// power of two; see [`SramTlb::try_new`] for the fallible form.
    pub fn new(geom: TlbGeometry) -> Self {
        Self::try_new(geom).expect("TLB geometry must be valid")
    }

    /// Fallible form of [`SramTlb::new`]: returns the first CSALT-Axxx
    /// geometry violation instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`csalt_types::ConfigError`] when the geometry fails a
    /// static invariant or the derived set count is not a power of two.
    pub fn try_new(geom: TlbGeometry) -> Result<Self, csalt_types::ConfigError> {
        geom.validate("sram-tlb")?;
        let sets = geom.sets();
        if !sets.is_power_of_two() {
            return Err(csalt_types::ConfigError::new(format!(
                "sram-tlb: {sets} sets is not a power of two"
            )));
        }
        let slots = (sets * geom.ways) as usize;
        Ok(Self {
            sets,
            ways: geom.ways,
            latency: geom.latency,
            keys: vec![EMPTY; slots],
            frames: vec![PhysFrame::from_pfn(0, PageSize::Size4K); slots],
            repl: (0..sets)
                .map(|_| SetReplacement::new(ReplacementKind::TrueLru, geom.ways))
                .collect(),
            stats: HitMissStats::new(),
            l0: L0Memo::new(),
        })
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> u32 {
        self.sets * self.ways
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &HitMissStats {
        &self.stats
    }

    /// Resets statistics; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.l0.reset_stats();
    }

    /// Enables or disables the L0 hit-way memo (results are identical
    /// either way; only the set scan is skipped on repeats).
    pub fn set_l0_enabled(&mut self, enabled: bool) {
        self.l0.set_enabled(enabled);
    }

    /// L0 memo hit/invalidation counters.
    pub fn l0_stats(&self) -> L0Stats {
        self.l0.stats()
    }

    /// Drops the L0 memo entry (context switch / ASID recycling hook).
    pub fn l0_invalidate(&mut self) {
        self.l0.invalidate();
    }

    #[inline]
    fn set_of(&self, key: &TlbKey) -> u32 {
        self.set_of_packed(pack(key))
    }

    /// Set index from a packed key: the VPN xor a size salt, masked to
    /// the set count. Mixing the size tag in lets a unified TLB separate
    /// 4K/2M streams. Derived entirely from the packed word so the
    /// prepacked lookup path computes the identical index.
    #[inline]
    fn set_of_packed(&self, packed: u64) -> u32 {
        let size_salt = match csalt_types::unpack_tlb_size(packed) {
            PageSize::Size4K => 0u64,
            PageSize::Size2M => 0x9e37_79b9,
            PageSize::Size1G => 0x7f4a_7c15,
        };
        ((csalt_types::unpack_tlb_vpn(packed) ^ size_salt) & (u64::from(self.sets) - 1)) as u32
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    /// Looks up a translation, updating recency and statistics.
    pub fn lookup(&mut self, page: VirtPage, asid: Asid) -> Option<PhysFrame> {
        self.lookup_prepacked(pack(&TlbKey { page, asid }))
    }

    /// [`SramTlb::lookup`] with the key already packed (the pipeline's
    /// producer stage precomputes keys; see [`csalt_types::pack_tlb_key`]).
    /// Identical semantics and statistics — `lookup` delegates here.
    pub fn lookup_prepacked(&mut self, packed: u64) -> Option<PhysFrame> {
        // L0 fast path: a repeat of the last hit skips the way scan but
        // replays exactly the mutations the scan's hit arm performs
        // below (recency touch + hit count), so state is bit-identical.
        if let Some((set, way, frame)) = self.l0.hit(packed) {
            self.repl[set as usize].touch(way);
            self.stats.record_hit();
            return Some(frame);
        }
        let set = self.set_of_packed(packed);
        let base = self.slot(set, 0);
        let set_keys = &self.keys[base..base + self.ways as usize];
        if let Some(way) = set_keys.iter().position(|&k| k == packed) {
            let frame = self.frames[base + way];
            self.repl[set as usize].touch(way as u32);
            self.stats.record_hit();
            self.l0.remember(packed, u64::from(set), way as u32, frame);
            return Some(frame);
        }
        self.stats.record_miss();
        None
    }

    /// Checks presence without updating recency or statistics.
    pub fn probe(&self, page: VirtPage, asid: Asid) -> bool {
        let key = TlbKey { page, asid };
        let set = self.set_of(&key);
        let packed = pack(&key);
        let base = self.slot(set, 0);
        self.keys[base..base + self.ways as usize].contains(&packed)
    }

    /// Installs a translation (no-op refresh if already present),
    /// evicting the set's LRU entry when full.
    pub fn insert(&mut self, page: VirtPage, asid: Asid, frame: PhysFrame) {
        let key = TlbKey { page, asid };
        let set = self.set_of(&key);
        let packed = pack(&key);
        let base = self.slot(set, 0);
        let set_keys = &self.keys[base..base + self.ways as usize];
        // Refresh in place if present; else fill the first free way; else
        // evict the set's LRU victim.
        let way = match set_keys.iter().position(|&k| k == packed) {
            Some(w) => w as u32,
            None => match set_keys.iter().position(|&k| k == EMPTY) {
                Some(w) => w as u32,
                None => self.repl[set as usize].victim(csalt_cache::way_range_mask(0, self.ways)),
            },
        };
        let slot = base + way as usize;
        self.keys[slot] = packed;
        self.frames[slot] = frame;
        self.repl[set as usize].touch(way);
        // Any write into the memoized set (refresh, fill or eviction) may
        // have moved or replaced the remembered entry.
        self.l0.invalidate_set(u64::from(set));
    }

    /// Invalidates every entry (a full TLB flush).
    pub fn flush(&mut self) {
        self.keys.fill(EMPTY);
        self.l0.invalidate();
    }

    /// Invalidates all entries belonging to `asid`.
    pub fn flush_asid(&mut self, asid: Asid) {
        let tag = u64::from(asid.raw());
        for k in &mut self.keys {
            if *k != EMPTY && *k & 0xffff == tag {
                *k = EMPTY;
            }
        }
        self.l0.invalidate();
    }

    /// Number of currently valid entries (for tests and occupancy
    /// reporting).
    pub fn valid_entries(&self) -> u32 {
        self.keys.iter().filter(|&&k| k != EMPTY).count() as u32
    }

    /// Fraction of entry slots currently holding a valid translation,
    /// in `[0, 1]` — a telemetry gauge for reach-starvation diagnosis.
    pub fn utilization(&self) -> f64 {
        f64::from(self.valid_entries()) / f64::from(self.capacity())
    }

    /// Serializes geometry guards, packed keys, frames (PFN + size
    /// code), per-set replacement state and hit/miss counters. The L0
    /// memo is not serialized (restore invalidates it).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u32(self.sets);
        w.u32(self.ways);
        w.slice_u64(&self.keys);
        let pfns: Vec<u64> = self.frames.iter().map(|f| f.pfn()).collect();
        w.slice_u64(&pfns);
        let sizes: Vec<u8> = self.frames.iter().map(|f| size_code(f.size())).collect();
        w.slice_u8(&sizes);
        for set in &self.repl {
            set.ckpt_save(w);
        }
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
    }

    /// Restores state written by [`SramTlb::ckpt_save`] into this
    /// (geometry-constructed) TLB; the L0 memo is invalidated.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u32()? != self.sets || r.u32()? != self.ways {
            return Err(CkptError::Mismatch("sram-tlb geometry"));
        }
        let keys = r.vec_u64()?;
        let pfns = r.vec_u64()?;
        if keys.len() != self.keys.len() || pfns.len() != self.frames.len() {
            return Err(CkptError::Mismatch("sram-tlb slot count"));
        }
        let sizes = r.vec_u8()?;
        if sizes.len() != self.frames.len() {
            return Err(CkptError::Mismatch("sram-tlb size array"));
        }
        self.keys = keys;
        for (dst, (pfn, &code)) in self.frames.iter_mut().zip(pfns.iter().zip(sizes.iter())) {
            *dst = PhysFrame::from_pfn(*pfn, size_from_code(code)?);
        }
        for set in &mut self.repl {
            set.ckpt_load(r)?;
        }
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.l0.invalidate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(entries: u32, ways: u32) -> TlbGeometry {
        TlbGeometry {
            entries,
            ways,
            latency: 9,
        }
    }

    fn page(vpn: u64) -> VirtPage {
        VirtPage::from_vpn(vpn, PageSize::Size4K)
    }

    fn frame(pfn: u64) -> PhysFrame {
        PhysFrame::from_pfn(pfn, PageSize::Size4K)
    }

    #[test]
    fn miss_insert_hit() {
        let mut t = SramTlb::new(geom(64, 4));
        let a = Asid::new(1);
        assert!(t.lookup(page(5), a).is_none());
        t.insert(page(5), a, frame(77));
        assert_eq!(t.lookup(page(5), a), Some(frame(77)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn asid_isolation() {
        let mut t = SramTlb::new(geom(64, 4));
        t.insert(page(5), Asid::new(1), frame(10));
        assert!(t.lookup(page(5), Asid::new(2)).is_none());
        assert!(t.lookup(page(5), Asid::new(1)).is_some());
    }

    #[test]
    fn context_switch_without_flush_retains_entries() {
        // The ASID-tagged design means entries survive a switch (§1).
        let mut t = SramTlb::new(geom(64, 4));
        let (a1, a2) = (Asid::new(1), Asid::new(2));
        t.insert(page(3), a1, frame(30));
        // "Switch" to asid 2, do some work.
        t.insert(page(3), a2, frame(40));
        // Switch back: asid 1's entry is still there.
        assert_eq!(t.lookup(page(3), a1), Some(frame(30)));
    }

    #[test]
    fn set_conflict_evicts_lru() {
        let mut t = SramTlb::new(geom(8, 2)); // 4 sets, 2 ways
        let a = Asid::new(0);
        // Pages 0, 4, 8 all map to set 0 (vpn % 4 == 0).
        t.insert(page(0), a, frame(1));
        t.insert(page(4), a, frame(2));
        t.lookup(page(0), a); // page 0 now MRU; page 4 is LRU
        t.insert(page(8), a, frame(3)); // evicts page 4
        assert!(t.probe(page(0), a));
        assert!(!t.probe(page(4), a));
        assert!(t.probe(page(8), a));
    }

    #[test]
    fn unified_tlb_separates_page_sizes() {
        let mut t = SramTlb::new(geom(1536, 12));
        let a = Asid::new(1);
        let p4k = VirtPage::from_vpn(100, PageSize::Size4K);
        let p2m = VirtPage::from_vpn(100, PageSize::Size2M);
        t.insert(p4k, a, frame(1));
        assert!(t.lookup(p2m, a).is_none(), "sizes are distinct keys");
        t.insert(p2m, a, PhysFrame::from_pfn(2, PageSize::Size2M));
        assert!(t.lookup(p4k, a).is_some());
        assert!(t.lookup(p2m, a).is_some());
    }

    #[test]
    fn reinsert_updates_frame() {
        let mut t = SramTlb::new(geom(64, 4));
        let a = Asid::new(1);
        t.insert(page(9), a, frame(1));
        t.insert(page(9), a, frame(2));
        assert_eq!(t.lookup(page(9), a), Some(frame(2)));
        assert_eq!(t.valid_entries(), 1, "no duplicate entries");
    }

    #[test]
    fn flush_and_flush_asid() {
        let mut t = SramTlb::new(geom(64, 4));
        t.insert(page(1), Asid::new(1), frame(1));
        t.insert(page(2), Asid::new(2), frame(2));
        t.flush_asid(Asid::new(1));
        assert!(!t.probe(page(1), Asid::new(1)));
        assert!(t.probe(page(2), Asid::new(2)));
        t.flush();
        assert_eq!(t.valid_entries(), 0);
    }

    #[test]
    fn capacity_matches_geometry() {
        let t = SramTlb::new(geom(1536, 12));
        assert_eq!(t.capacity(), 1536);
        assert_eq!(t.latency(), 9);
    }

    #[test]
    fn probe_does_not_affect_stats() {
        let t = SramTlb::new(geom(64, 4));
        t.probe(page(1), Asid::new(0));
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn l0_memo_is_behaviour_invisible() {
        // Identical op sequence against a memo-on and a memo-off TLB must
        // leave identical stats and identical eviction outcomes — the L0
        // path may only skip scans, never change state transitions.
        let mut on = SramTlb::new(geom(8, 2)); // 4 sets, 2 ways
        let mut off = SramTlb::new(geom(8, 2));
        off.set_l0_enabled(false);
        let a = Asid::new(1);
        for t in [&mut on, &mut off] {
            t.insert(page(0), a, frame(1));
            t.insert(page(4), a, frame(2));
            // Repeat lookups: the second one hits the memo on `on`.
            t.lookup(page(0), a);
            t.lookup(page(0), a);
            // Page 4 is LRU in set 0 despite the memoized repeats.
            t.insert(page(8), a, frame(3));
        }
        assert!(on.l0_stats().hits > 0, "memo should have served a repeat");
        assert_eq!(off.l0_stats().hits, 0);
        assert_eq!(on.stats().hits, off.stats().hits);
        assert_eq!(on.stats().misses, off.stats().misses);
        for p in [0, 4, 8] {
            assert_eq!(on.probe(page(p), a), off.probe(page(p), a));
        }
    }

    #[test]
    fn l0_memo_invalidated_by_set_insert_and_flush() {
        let mut t = SramTlb::new(geom(8, 2)); // 4 sets, 2 ways
        let a = Asid::new(1);
        t.insert(page(0), a, frame(1));
        t.lookup(page(0), a); // memoized
        assert_eq!(t.l0_stats().invalidations, 0);
        t.insert(page(4), a, frame(2)); // same set → memo dropped
        assert_eq!(t.l0_stats().invalidations, 1);
        t.lookup(page(0), a); // re-memoize via scan
        t.flush_asid(Asid::new(2)); // flushes invalidate unconditionally
        assert_eq!(t.l0_stats().invalidations, 2);
        t.lookup(page(0), a);
        t.flush();
        assert_eq!(t.l0_stats().invalidations, 3);
        assert!(t.lookup(page(0), a).is_none(), "no stale frame after flush");
    }
}
