//! The large memory-resident L3 TLB — POM-TLB (Ryoo et al., ISCA 2017) —
//! that CSALT uses as its substrate.
//!
//! The POM-TLB is a set-associative TLB array carved out of die-stacked
//! DRAM and given an explicit physical address range (*aperture*). Because
//! it is addressable, its entries are cacheable in the L2/L3 data caches:
//! a translation request first probes the data caches at the entry's home
//! address and only on a data-cache miss pays the die-stacked DRAM
//! latency. One set occupies exactly one 64-byte cache line (4 ways of
//! 16-byte entries, Table 2), so a single memory access resolves a
//! translation — the property that makes POM-TLB cheaper than TSB or page
//! walks in virtualized mode.
//!
//! This module models the array's *contents* (hit/miss, LRU within the
//! set) and exposes each operation's home [`LineAddr`]; the caller routes
//! that address through the cache hierarchy and DRAM timing model.

use crate::sram::{pack, size_code, size_from_code, TlbKey, EMPTY};
use csalt_types::{
    Asid, CkptError, CkptReader, CkptWriter, HitMissStats, L0Memo, L0Stats, LineAddr, PageSize,
    PhysAddr, PhysFrame, PomTlbConfig, VirtPage,
};

/// Result of a POM-TLB lookup: the translation (if resident) and the
/// memory line the lookup touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PomLookup {
    /// The translation, when the array holds it.
    pub frame: Option<PhysFrame>,
    /// The line address of the probed set, inside the aperture.
    pub line: LineAddr,
}

/// The memory-resident large TLB array.
///
/// Storage is struct-of-arrays with packed `u64` keys (shared with the
/// SRAM TLBs), MRU-first within each set: the way scan compares one word
/// per way and recency updates are short rotations — no per-insert
/// allocation. Valid entries always form a prefix of the set.
#[derive(Debug, Clone)]
pub struct PomTlb {
    cfg: PomTlbConfig,
    sets: u64,
    ways: u32,
    /// Packed key per slot (`keys[set * ways + way]`); [`EMPTY`] marks an
    /// invalid way.
    keys: Vec<u64>,
    /// Frame per slot, parallel to `keys` (garbage where empty).
    frames: Vec<PhysFrame>,
    stats: HitMissStats,
    /// Last-hit memo. A POM hit always rotates the entry to way 0, so
    /// the memo only ever records way 0 — where a repeat hit's rotation
    /// is a 1-element no-op, making the replay trivially bit-identical.
    /// Any *other* hit or insert in the same set shifts positions, so
    /// both invalidate it.
    l0: L0Memo<PhysFrame>,
}

impl PomTlb {
    /// Builds the array from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's set count is not a power of two.
    pub fn new(cfg: PomTlbConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "POM-TLB sets must be 2^k");
        let slots = (sets * u64::from(cfg.ways)) as usize;
        Self {
            sets,
            ways: cfg.ways,
            keys: vec![EMPTY; slots],
            frames: vec![PhysFrame::from_pfn(0, PageSize::Size4K); slots],
            cfg,
            stats: HitMissStats::new(),
            l0: L0Memo::new(),
        }
    }

    /// The array's configuration.
    pub fn config(&self) -> &PomTlbConfig {
        &self.cfg
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &HitMissStats {
        &self.stats
    }

    /// Resets statistics; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.l0.reset_stats();
    }

    /// Enables or disables the L0 hit-way memo (results are identical
    /// either way; only the set scan is skipped on repeats).
    pub fn set_l0_enabled(&mut self, enabled: bool) {
        self.l0.set_enabled(enabled);
    }

    /// L0 memo hit/invalidation counters.
    pub fn l0_stats(&self) -> L0Stats {
        self.l0.stats()
    }

    /// Drops the L0 memo entry (context switch / ASID recycling hook).
    pub fn l0_invalidate(&mut self) {
        self.l0.invalidate();
    }

    /// Whether a physical address belongs to the POM-TLB aperture — the
    /// address-range classification of §3.1.
    pub fn owns(&self, pa: PhysAddr) -> bool {
        self.cfg.contains(pa.raw())
    }

    #[inline]
    fn set_of(&self, key: &TlbKey) -> u64 {
        self.set_of_packed(pack(key))
    }

    /// Set index from a packed key. Hashes VPN, page size and ASID
    /// together; multiple contexts share the array, so the ASID must
    /// participate in indexing. Derived entirely from the packed word so
    /// the prepacked lookup path computes the identical index.
    #[inline]
    fn set_of_packed(&self, packed: u64) -> u64 {
        let size_salt = match csalt_types::unpack_tlb_size(packed) {
            PageSize::Size4K => 0u64,
            PageSize::Size2M => 0x9e37_79b9_7f4a_7c15,
            PageSize::Size1G => 0x6a09_e667_f3bc_c909,
        };
        let mixed = (csalt_types::unpack_tlb_vpn(packed).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ size_salt
            ^ ((packed & 0xffff) << 17);
        // Fibonacci hashing: take the *top* bits, which receive full
        // avalanche from the multiplication. Masking the low bits would
        // let strided VPNs (whose product keeps their trailing zeros)
        // alias into a fraction of the sets.
        mixed >> (64 - self.sets.trailing_zeros())
    }

    /// The aperture line that stores `set` — one set per 64-byte line.
    #[inline]
    fn line_of_set(&self, set: u64) -> LineAddr {
        PhysAddr::new(self.cfg.base + set * csalt_types::LINE_BYTES).line()
    }

    /// The home line a translation for (`page`, `asid`) lives in. This is
    /// the address the cache hierarchy sees for both lookups and fills.
    pub fn home_line(&self, page: VirtPage, asid: Asid) -> LineAddr {
        let key = TlbKey { page, asid };
        self.line_of_set(self.set_of(&key))
    }

    /// Looks up a translation, maintaining per-set LRU order.
    pub fn lookup(&mut self, page: VirtPage, asid: Asid) -> PomLookup {
        self.lookup_prepacked(pack(&TlbKey { page, asid }))
    }

    /// [`PomTlb::lookup`] with the key already packed (the pipeline's
    /// producer stage precomputes keys; see [`csalt_types::pack_tlb_key`]).
    /// Identical semantics and statistics — `lookup` delegates here.
    pub fn lookup_prepacked(&mut self, packed: u64) -> PomLookup {
        // L0 fast path: the memoized entry sits at way 0, so the hit
        // arm's MRU rotation below would be a 1-element no-op — replay
        // is just the hit count plus the remembered frame and line.
        if let Some((set, _way, frame)) = self.l0.hit(packed) {
            self.stats.record_hit();
            return PomLookup {
                frame: Some(frame),
                line: self.line_of_set(set),
            };
        }
        let set = self.set_of_packed(packed);
        let line = self.line_of_set(set);
        let base = (set * u64::from(self.ways)) as usize;
        let ways = self.ways as usize;
        if let Some(way) = self.keys[base..base + ways]
            .iter()
            .position(|&k| k == packed)
        {
            let frame = self.frames[base + way];
            // Move to MRU (front) by rotating the prefix.
            self.keys[base..=base + way].rotate_right(1);
            self.frames[base..=base + way].rotate_right(1);
            self.stats.record_hit();
            // The rotation shifted every way below `way`, so a memo for
            // a *different* key in this set is stale; this key is now
            // the set's way-0 entry.
            self.l0.invalidate_set(set);
            self.l0.remember(packed, set, 0, frame);
            return PomLookup {
                frame: Some(frame),
                line,
            };
        }
        self.stats.record_miss();
        PomLookup { frame: None, line }
    }

    /// Installs a translation at MRU, evicting the set's LRU entry when
    /// full. Returns the written line (the caller issues the write
    /// through the hierarchy).
    pub fn insert(&mut self, page: VirtPage, asid: Asid, frame: PhysFrame) -> LineAddr {
        let key = TlbKey { page, asid };
        let set = self.set_of(&key);
        let line = self.line_of_set(set);
        let base = (set * u64::from(self.ways)) as usize;
        let ways = self.ways as usize;
        let packed = pack(&key);
        // Rotate a stale copy (if present) — else the whole set, pushing
        // the LRU (or an empty tail slot) to the front — then overwrite
        // the front with the new MRU entry. Valid entries stay a prefix.
        let upto = match self.keys[base..base + ways]
            .iter()
            .position(|&k| k == packed)
        {
            Some(way) => way,
            None => ways - 1,
        };
        self.keys[base..=base + upto].rotate_right(1);
        self.frames[base..=base + upto].rotate_right(1);
        self.keys[base] = packed;
        self.frames[base] = frame;
        // The rotation + overwrite moved every entry in the set.
        self.l0.invalidate_set(set);
        line
    }

    /// Number of valid entries currently held (tests / reporting).
    pub fn valid_entries(&self) -> u64 {
        self.keys.iter().filter(|&&k| k != EMPTY).count() as u64
    }

    /// Fraction of POM-TLB slots holding a valid translation, in
    /// `[0, 1]` — a telemetry gauge tracking how much of the large
    /// in-DRAM table a workload actually touches.
    pub fn utilization(&self) -> f64 {
        let capacity = self.sets * u64::from(self.ways);
        if capacity == 0 {
            0.0
        } else {
            self.valid_entries() as f64 / capacity as f64
        }
    }

    /// Serializes geometry guards, packed keys in positional (MRU-first)
    /// order, frames and hit/miss counters. The L0 memo is not
    /// serialized (restore invalidates it).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.sets);
        w.u32(self.ways);
        // Keys are stored XOR [`EMPTY`] so untouched slots (the vast
        // majority after a short warmup) serialize as zero and the
        // sparse streaming encodes collapse them.
        w.iter_u64(self.keys.len(), self.keys.iter().map(|&k| k ^ EMPTY));
        w.iter_u64(self.frames.len(), self.frames.iter().map(|f| f.pfn()));
        w.iter_u8(
            self.frames.len(),
            self.frames.iter().map(|f| size_code(f.size())),
        );
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
    }

    /// Restores state written by [`PomTlb::ckpt_save`] into this
    /// (config-constructed) array; recency is positional, so restoring
    /// the key order restores it exactly. The L0 memo is invalidated.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.sets || r.u32()? != self.ways {
            return Err(CkptError::Mismatch("pom-tlb geometry"));
        }
        let keys: Vec<u64> = r.vec_u64()?.into_iter().map(|k| k ^ EMPTY).collect();
        let pfns = r.vec_u64()?;
        if keys.len() != self.keys.len() || pfns.len() != self.frames.len() {
            return Err(CkptError::Mismatch("pom-tlb slot count"));
        }
        let sizes = r.vec_u8()?;
        if sizes.len() != self.frames.len() {
            return Err(CkptError::Mismatch("pom-tlb size array"));
        }
        self.keys = keys;
        for (dst, (pfn, &code)) in self.frames.iter_mut().zip(pfns.iter().zip(sizes.iter())) {
            *dst = PhysFrame::from_pfn(*pfn, size_from_code(code)?);
        }
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.l0.invalidate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PomTlbConfig {
        PomTlbConfig {
            size_bytes: 1 << 20, // 1 MiB for tests
            ways: 4,
            entry_bytes: 16,
            base: 0x7e00_0000_0000,
        }
    }

    fn page(vpn: u64) -> VirtPage {
        VirtPage::from_vpn(vpn, PageSize::Size4K)
    }

    fn frame(pfn: u64) -> PhysFrame {
        PhysFrame::from_pfn(pfn, PageSize::Size4K)
    }

    #[test]
    fn miss_insert_hit() {
        let mut p = PomTlb::new(cfg());
        let a = Asid::new(1);
        let r = p.lookup(page(42), a);
        assert!(r.frame.is_none());
        let wline = p.insert(page(42), a, frame(7));
        assert_eq!(wline, r.line, "fill writes the probed set's line");
        let r2 = p.lookup(page(42), a);
        assert_eq!(r2.frame, Some(frame(7)));
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn lines_are_inside_aperture() {
        let mut p = PomTlb::new(cfg());
        for vpn in 0..1000 {
            let r = p.lookup(page(vpn), Asid::new(3));
            assert!(p.owns(r.line.base()), "line {:?} outside aperture", r.line);
        }
    }

    #[test]
    fn home_line_is_stable_and_matches_lookup() {
        let mut p = PomTlb::new(cfg());
        let a = Asid::new(2);
        let home = p.home_line(page(123), a);
        assert_eq!(p.lookup(page(123), a).line, home);
        assert_eq!(p.home_line(page(123), a), home);
    }

    #[test]
    fn asid_participates_in_indexing_and_matching() {
        let mut p = PomTlb::new(cfg());
        p.insert(page(5), Asid::new(1), frame(10));
        assert!(p.lookup(page(5), Asid::new(2)).frame.is_none());
        assert_eq!(p.lookup(page(5), Asid::new(1)).frame, Some(frame(10)));
    }

    #[test]
    fn set_overflow_evicts_lru() {
        let mut p = PomTlb::new(cfg());
        let a = Asid::new(0);
        // Find 5 pages in the same set.
        let target = {
            let k = TlbKey {
                page: page(0),
                asid: a,
            };
            p.set_of(&k)
        };
        let colliders: Vec<u64> = (0..200_000u64)
            .filter(|&v| {
                p.set_of(&TlbKey {
                    page: page(v),
                    asid: a,
                }) == target
            })
            .take(5)
            .collect();
        assert_eq!(colliders.len(), 5, "need 5 colliding pages");
        for (i, &v) in colliders.iter().enumerate() {
            p.insert(page(v), a, frame(i as u64));
        }
        // First inserted (LRU) must be gone; the rest resident.
        assert!(p.lookup(page(colliders[0]), a).frame.is_none());
        for &v in &colliders[1..] {
            assert!(p.lookup(page(v), a).frame.is_some());
        }
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut p = PomTlb::new(cfg());
        let a = Asid::new(0);
        p.insert(page(9), a, frame(1));
        p.insert(page(9), a, frame(2));
        assert_eq!(p.valid_entries(), 1);
        assert_eq!(p.lookup(page(9), a).frame, Some(frame(2)));
    }

    #[test]
    fn large_array_holds_working_set() {
        // 1 MiB / 16 B = 65536 entries: a 40k-page working set fits,
        // which is what makes POM-TLB eliminate page walks (Figure 8).
        let mut p = PomTlb::new(cfg());
        let a = Asid::new(1);
        for vpn in 0..40_000u64 {
            p.insert(page(vpn), a, frame(vpn));
        }
        let mut hits = 0;
        for vpn in 0..40_000u64 {
            if p.lookup(page(vpn), a).frame.is_some() {
                hits += 1;
            }
        }
        assert!(
            f64::from(hits) / 40_000.0 > 0.95,
            "expected >95% resident, got {hits}"
        );
    }

    #[test]
    fn distinct_sets_map_to_distinct_lines() {
        let p = PomTlb::new(cfg());
        let l0 = p.line_of_set(0);
        let l1 = p.line_of_set(1);
        assert_ne!(l0, l1);
        assert_eq!(l1.line_number(), l0.line_number() + 1);
    }

    #[test]
    fn owns_rejects_outside_addresses() {
        let p = PomTlb::new(cfg());
        assert!(!p.owns(PhysAddr::new(0x1000)));
        assert!(p.owns(PhysAddr::new(p.config().base)));
    }

    #[test]
    fn l0_memo_survives_mru_rotations_bit_identically() {
        // Interleave repeat hits (memoized) with hits and inserts on
        // *colliding* pages — the rotations that shift way positions —
        // and require memo-on and memo-off to agree on every lookup
        // result, line, stat and final MRU order.
        let mut on = PomTlb::new(cfg());
        let mut off = PomTlb::new(cfg());
        off.set_l0_enabled(false);
        let a = Asid::new(0);
        let target = on.set_of(&TlbKey {
            page: page(0),
            asid: a,
        });
        let colliders: Vec<u64> = (0..200_000u64)
            .filter(|&v| {
                on.set_of(&TlbKey {
                    page: page(v),
                    asid: a,
                }) == target
            })
            .take(5)
            .collect();
        assert_eq!(colliders.len(), 5, "need 5 colliding pages");
        for t in [&mut on, &mut off] {
            for (i, &v) in colliders.iter().take(4).enumerate() {
                t.insert(page(v), a, frame(i as u64));
            }
        }
        // Deterministic mixed schedule: repeats, rotating hits, one
        // overflow insert that evicts the set's LRU.
        let schedule = [0usize, 0, 1, 1, 0, 2, 2, 0, 3, 3];
        for &i in &schedule {
            let r_on = on.lookup(page(colliders[i]), a);
            let r_off = off.lookup(page(colliders[i]), a);
            assert_eq!(r_on, r_off);
        }
        for t in [&mut on, &mut off] {
            t.insert(page(colliders[4]), a, frame(4));
        }
        for &v in &colliders {
            assert_eq!(on.lookup(page(v), a), off.lookup(page(v), a));
        }
        assert_eq!(on.stats().hits, off.stats().hits);
        assert_eq!(on.stats().misses, off.stats().misses);
        assert!(on.l0_stats().hits > 0, "repeats should hit the memo");
        assert!(on.l0_stats().invalidations > 0, "rotations must drop it");
    }
}
