//! The TLB hierarchy of the CSALT system (Figure 4 of the paper).
//!
//! Three kinds of translation store are modelled:
//!
//! * [`SramTlb`] — the fast on-chip levels: per-core split L1 TLBs
//!   (4 KiB / 2 MiB) and the unified 1536-entry L2 TLB, all ASID-tagged.
//! * [`PomTlb`] — the large memory-resident L3 TLB in die-stacked DRAM
//!   whose entries are cacheable in the data caches; the substrate CSALT
//!   partitions for.
//! * [`Tsb`] — the UltraSPARC Translation Storage Buffer comparison point
//!   (software-managed, multiple dependent accesses when virtualized).
//!
//! # Example
//!
//! ```
//! use csalt_tlb::SramTlb;
//! use csalt_types::{Asid, PageSize, PhysFrame, SystemConfig, VirtPage};
//!
//! let mut l2 = SramTlb::new(SystemConfig::skylake().l2_tlb);
//! let page = VirtPage::from_vpn(0x1234, PageSize::Size4K);
//! let asid = Asid::new(1);
//! assert!(l2.lookup(page, asid).is_none());
//! l2.insert(page, asid, PhysFrame::from_pfn(0x9999, PageSize::Size4K));
//! assert!(l2.lookup(page, asid).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pom;
mod sram;
mod tsb;

pub use pom::{PomLookup, PomTlb};
pub use sram::{SramTlb, TlbKey};
pub use tsb::{Tsb, TsbAccesses, TsbLookup};
