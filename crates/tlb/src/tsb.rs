//! Translation Storage Buffer (TSB) — the Oracle/Sun UltraSPARC software
//! translation cache the paper compares against (§5.2, §6).
//!
//! A TSB is a per-address-space, direct-mapped, software-managed array of
//! translation entries in ordinary memory. On a TLB miss the trap handler
//! indexes the TSB by VPN hash and reloads the TLB on a match. Like the
//! POM-TLB, TSB entries are cacheable; *unlike* the POM-TLB, resolving a
//! guest-virtual → host-physical translation in a virtualized system
//! requires **multiple dependent memory accesses** (the guest TSB lookup
//! yields a guest-physical address that itself must be located through
//! the hypervisor's structures — see the Solaris virtualization
//! architecture the paper cites). The model charges one access natively
//! and three dependent accesses when virtualized.
//!
//! Being direct-mapped, conflicting pages overwrite each other, so the
//! TSB also suffers more misses (→ page walks) than the set-associative
//! POM-TLB at equal capacity.
//!
//! Per-ASID state is flat: a dense `asid → table` index resolved once
//! per operation, with each table a boxed slot array — no hashing on
//! the access path (ASIDs are small integers; the old map-based layout
//! hashed the ASID twice per access).

use crate::sram::{pack, size_code, size_from_code, TlbKey};
use csalt_types::{
    Asid, CkptError, CkptReader, CkptWriter, HitMissStats, L0Memo, L0Stats, LineAddr, PageSize,
    PhysAddr, PhysFrame, VirtPage,
};
use std::ops::Deref;

/// Sentinel in [`Tsb::asid_index`] for an ASID with no table yet.
const NO_TABLE: u32 = u32::MAX;

/// The dependent memory lines of one software lookup: an inline list
/// (1 native, 3 virtualized), so a lookup allocates nothing.
///
/// Dereferences to `[LineAddr]`; use it like a slice.
#[derive(Debug, Clone, Copy)]
pub struct TsbAccesses {
    len: u8,
    items: [LineAddr; 3],
}

impl TsbAccesses {
    fn one(line: LineAddr) -> Self {
        Self {
            len: 1,
            items: [line; 3],
        }
    }

    fn three(a: LineAddr, b: LineAddr, c: LineAddr) -> Self {
        Self {
            len: 3,
            items: [a, b, c],
        }
    }
}

impl Deref for TsbAccesses {
    type Target = [LineAddr];

    #[inline]
    fn deref(&self) -> &[LineAddr] {
        &self.items[..self.len as usize]
    }
}

impl PartialEq for TsbAccesses {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for TsbAccesses {}

impl<'a> IntoIterator for &'a TsbAccesses {
    type Item = &'a LineAddr;
    type IntoIter = std::slice::Iter<'a, LineAddr>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Result of a TSB lookup: the translation (if the slot matches) and the
/// dependent memory accesses the software walk performed, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsbLookup {
    /// The translation, when the indexed slot holds this page.
    pub frame: Option<PhysFrame>,
    /// Memory lines touched by the software lookup (1 native,
    /// 3 virtualized), to be charged through the cache hierarchy as
    /// translation traffic.
    pub accesses: TsbAccesses,
}

#[derive(Debug, Clone, Copy)]
struct TsbSlot {
    page: VirtPage,
    frame: PhysFrame,
}

/// One ASID's direct-mapped table. Its position in [`Tsb::tables`] is
/// its first-touch order, which fixes its aperture offset.
#[derive(Debug, Clone)]
struct AsidTable {
    slots: Box<[Option<TsbSlot>]>,
}

/// The software translation-buffer model: one direct-mapped table per
/// ASID, laid out consecutively in a dedicated physical aperture.
#[derive(Debug, Clone)]
pub struct Tsb {
    /// Entries per per-ASID table (power of two).
    entries_per_table: u64,
    /// Bytes per entry (UltraSPARC TTE pairs are 16 bytes).
    entry_bytes: u64,
    /// Aperture base; table *i* starts at `base + i * table_bytes`.
    base: u64,
    virtualized: bool,
    /// Dense `asid.raw() → tables` index ([`NO_TABLE`] = unseen):
    /// resolved exactly once per lookup/insert.
    asid_index: Vec<u32>,
    tables: Vec<AsidTable>,
    stats: HitMissStats,
    /// Last-hit memo. The "set" is `(table << 32) | slot`; the payload
    /// carries the hit frame *and* the dependent walk lines, which are a
    /// pure function of `(page, table, tables.len())` — so the memo is
    /// dropped whenever a new table materializes (the virtualized
    /// descriptor region floats above all tables) or the slot is
    /// rewritten.
    l0: L0Memo<(PhysFrame, TsbAccesses)>,
}

impl Tsb {
    /// Creates a TSB model.
    ///
    /// * `entries_per_table` — slots per address space (power of two).
    /// * `base` — physical base of the TSB aperture.
    /// * `virtualized` — whether lookups need the 2D (3-access) walk.
    ///
    /// # Panics
    ///
    /// Panics if `entries_per_table` is not a positive power of two.
    pub fn new(entries_per_table: u64, base: u64, virtualized: bool) -> Self {
        assert!(
            entries_per_table > 0 && entries_per_table.is_power_of_two(),
            "entries per table must be a positive power of two"
        );
        Self {
            entries_per_table,
            entry_bytes: 16,
            base,
            virtualized,
            asid_index: Vec::new(),
            tables: Vec::new(),
            stats: HitMissStats::new(),
            l0: L0Memo::new(),
        }
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &HitMissStats {
        &self.stats
    }

    /// Resets statistics; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.l0.reset_stats();
    }

    /// Enables or disables the L0 hit-way memo (results are identical
    /// either way; only the indexed probe is skipped on repeats).
    pub fn set_l0_enabled(&mut self, enabled: bool) {
        self.l0.set_enabled(enabled);
    }

    /// L0 memo hit/invalidation counters.
    pub fn l0_stats(&self) -> L0Stats {
        self.l0.stats()
    }

    /// Drops the L0 memo entry (context switch / ASID recycling hook).
    pub fn l0_invalidate(&mut self) {
        self.l0.invalidate();
    }

    /// Bytes occupied by one per-ASID table.
    pub fn table_bytes(&self) -> u64 {
        self.entries_per_table * self.entry_bytes
    }

    /// Resolves `asid` to its table, materializing it on first touch
    /// (first-touch order fixes the aperture offset). The single
    /// per-ASID resolution of every operation.
    fn table_id(&mut self, asid: Asid) -> usize {
        let a = asid.raw() as usize;
        if a >= self.asid_index.len() {
            self.asid_index.resize(a + 1, NO_TABLE);
        }
        if self.asid_index[a] == NO_TABLE {
            self.asid_index[a] =
                u32::try_from(self.tables.len()).expect("more tables than 16-bit ASIDs");
            self.tables.push(AsidTable {
                slots: vec![None; self.entries_per_table as usize].into_boxed_slice(),
            });
            // The table count feeds the virtualized descriptor/locator
            // addressing, so memoized walk lines may now be stale.
            self.l0.invalidate();
        }
        self.asid_index[a] as usize
    }

    #[inline]
    fn slot_of(&self, page: VirtPage) -> u64 {
        let salt = match page.size() {
            PageSize::Size4K => 0u64,
            PageSize::Size2M => 0x9e37_79b9,
            PageSize::Size1G => 0x517c_c1b7,
        };
        (page.vpn() ^ salt) & (self.entries_per_table - 1)
    }

    /// The aperture address of `page`'s slot in table `table`.
    fn entry_addr(&self, page: VirtPage, table: u64) -> PhysAddr {
        PhysAddr::new(
            self.base + table * self.table_bytes() + self.slot_of(page) * self.entry_bytes,
        )
    }

    /// The dependent accesses a lookup performs. Natively: the entry
    /// itself. Virtualized: the hypervisor's per-guest TSB descriptor,
    /// the nested locator for the entry's guest-physical page, then the
    /// entry (cf. the multi-step TSB translation flow in virtualized
    /// SPARC the paper references).
    fn walk_lines(&self, page: VirtPage, table: u64) -> TsbAccesses {
        let entry = self.entry_addr(page, table);
        if !self.virtualized {
            return TsbAccesses::one(entry.line());
        }
        // Descriptor region sits above all tables; one line per ASID.
        let descriptors = self.base + (self.tables.len() as u64).max(64) * self.table_bytes();
        let descriptor = PhysAddr::new(descriptors + table * csalt_types::LINE_BYTES);
        // Nested locator: hashes the entry's page within a per-ASID
        // region, modelling the hypervisor-side lookup.
        let locator_region = descriptors + (64 << 10);
        let locator = PhysAddr::new(
            locator_region
                + table * (256 << 10)
                + ((self.slot_of(page) >> 2) * csalt_types::LINE_BYTES) % (256 << 10),
        );
        TsbAccesses::three(descriptor.line(), locator.line(), entry.line())
    }

    /// Performs a software TSB lookup.
    pub fn lookup(&mut self, page: VirtPage, asid: Asid) -> TsbLookup {
        self.lookup_impl(pack(&TlbKey { page, asid }), page, asid)
    }

    /// [`Tsb::lookup`] with the key already packed (the pipeline's
    /// producer stage precomputes keys; see [`csalt_types::pack_tlb_key`]).
    /// Identical semantics and statistics — `lookup` delegates to the
    /// same implementation. The packing is lossless, so the page and
    /// ASID are reconstructed exactly.
    pub fn lookup_prepacked(&mut self, packed: u64) -> TsbLookup {
        let page = VirtPage::from_vpn(
            csalt_types::unpack_tlb_vpn(packed),
            csalt_types::unpack_tlb_size(packed),
        );
        let asid = Asid::new((packed & 0xffff) as u16);
        self.lookup_impl(packed, page, asid)
    }

    fn lookup_impl(&mut self, packed: u64, page: VirtPage, asid: Asid) -> TsbLookup {
        // L0 fast path: a repeat of the last *hit* skips the table
        // resolution and slot probe. A memo hit implies this ASID's
        // table already exists, so no materialization is skipped, and
        // the stored walk lines are valid because any table-count
        // change or slot rewrite invalidated the memo.
        if let Some((_set, _way, (frame, accesses))) = self.l0.hit(packed) {
            self.stats.record(true);
            return TsbLookup {
                frame: Some(frame),
                accesses,
            };
        }
        let table = self.table_id(asid);
        let accesses = self.walk_lines(page, table as u64);
        let slot = self.slot_of(page) as usize;
        let frame =
            self.tables[table].slots[slot].and_then(|s| (s.page == page).then_some(s.frame));
        self.stats.record(frame.is_some());
        if let Some(f) = frame {
            let set = ((table as u64) << 32) | self.slot_of(page);
            self.l0.remember(packed, set, 0, (f, accesses));
        }
        TsbLookup { frame, accesses }
    }

    /// Installs a translation (software reload after a page walk),
    /// returning the written line.
    pub fn insert(&mut self, page: VirtPage, asid: Asid, frame: PhysFrame) -> LineAddr {
        let table = self.table_id(asid);
        let line = self.entry_addr(page, table as u64).line();
        let slot = self.slot_of(page) as usize;
        self.tables[table].slots[slot] = Some(TsbSlot { page, frame });
        // Direct-mapped: this write replaced whatever the slot held.
        self.l0.invalidate_set(((table as u64) << 32) | slot as u64);
        line
    }

    /// Number of dependent accesses per lookup in this configuration.
    pub fn accesses_per_lookup(&self) -> usize {
        if self.virtualized {
            3
        } else {
            1
        }
    }

    /// Serializes config guards, the dense ASID index, every table in
    /// first-touch order (slot = flag + packed page + frame), and the
    /// hit/miss counters. The L0 memo is not serialized.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.entries_per_table);
        w.u64(self.entry_bytes);
        w.u64(self.base);
        w.bool(self.virtualized);
        let index: Vec<u64> = self.asid_index.iter().map(|&i| u64::from(i)).collect();
        w.slice_u64(&index);
        w.len64(self.tables.len());
        for table in &self.tables {
            for slot in &table.slots {
                match slot {
                    Some(s) => {
                        w.u8(1);
                        w.u64(s.page.vpn());
                        w.u8(size_code(s.page.size()));
                        w.u64(s.frame.pfn());
                        w.u8(size_code(s.frame.size()));
                    }
                    None => {
                        w.u8(0);
                        w.u64(0);
                        w.u8(0);
                        w.u64(0);
                        w.u8(0);
                    }
                }
            }
        }
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
    }

    /// Restores state written by [`Tsb::ckpt_save`]; table positions
    /// (first-touch order) are restored exactly, so aperture offsets —
    /// and thus every walk line — reproduce. The L0 memo is invalidated.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.u64()? != self.entries_per_table
            || r.u64()? != self.entry_bytes
            || r.u64()? != self.base
            || r.bool()? != self.virtualized
        {
            return Err(CkptError::Mismatch("tsb configuration"));
        }
        let index = r.vec_u64()?;
        let table_count = r.len64()?;
        let mut asid_index = Vec::with_capacity(index.len());
        for v in index {
            let i = u32::try_from(v).map_err(|_| CkptError::Corrupt("tsb asid index"))?;
            if i != NO_TABLE && i as usize >= table_count {
                return Err(CkptError::Corrupt("tsb asid index out of range"));
            }
            asid_index.push(i);
        }
        // Each slot is a fixed 19 bytes; bound the table count by the
        // remaining payload before allocating anything.
        let slot_bytes = self
            .entries_per_table
            .checked_mul(19)
            .and_then(|b| b.checked_mul(table_count as u64))
            .ok_or(CkptError::Truncated)?;
        if slot_bytes > r.remaining() as u64 {
            return Err(CkptError::Truncated);
        }
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let mut slots = vec![None; self.entries_per_table as usize].into_boxed_slice();
            for slot in &mut slots {
                let valid = r.u8()?;
                let vpn = r.u64()?;
                let psize = r.u8()?;
                let pfn = r.u64()?;
                let fsize = r.u8()?;
                *slot = match valid {
                    0 => None,
                    1 => Some(TsbSlot {
                        page: VirtPage::from_vpn(vpn, size_from_code(psize)?),
                        frame: PhysFrame::from_pfn(pfn, size_from_code(fsize)?),
                    }),
                    _ => return Err(CkptError::Corrupt("tsb slot flag")),
                };
            }
            tables.push(AsidTable { slots });
        }
        self.asid_index = asid_index;
        self.tables = tables;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.l0.invalidate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(vpn: u64) -> VirtPage {
        VirtPage::from_vpn(vpn, PageSize::Size4K)
    }

    fn frame(pfn: u64) -> PhysFrame {
        PhysFrame::from_pfn(pfn, PageSize::Size4K)
    }

    const BASE: u64 = 0x7d00_0000_0000;

    #[test]
    fn miss_insert_hit() {
        let mut t = Tsb::new(1024, BASE, false);
        let a = Asid::new(1);
        assert!(t.lookup(page(3), a).frame.is_none());
        t.insert(page(3), a, frame(9));
        assert_eq!(t.lookup(page(3), a).frame, Some(frame(9)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn native_lookup_is_single_access() {
        let mut t = Tsb::new(1024, BASE, false);
        let r = t.lookup(page(3), Asid::new(1));
        assert_eq!(r.accesses.len(), 1);
        assert_eq!(t.accesses_per_lookup(), 1);
    }

    #[test]
    fn virtualized_lookup_takes_three_dependent_accesses() {
        let mut t = Tsb::new(1024, BASE, true);
        let r = t.lookup(page(3), Asid::new(1));
        assert_eq!(r.accesses.len(), 3);
        assert_eq!(t.accesses_per_lookup(), 3);
        // All three distinct lines (dependent, not coalescable).
        let mut lines = r.accesses.to_vec();
        lines.dedup();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn final_access_is_the_entry_line() {
        let mut t = Tsb::new(1024, BASE, true);
        let a = Asid::new(2);
        let written = t.insert(page(77), a, frame(5));
        let r = t.lookup(page(77), a);
        assert_eq!(*r.accesses.last().expect("nonempty"), written);
        assert_eq!(r.frame, Some(frame(5)));
    }

    #[test]
    fn direct_mapped_conflict_overwrites() {
        let mut t = Tsb::new(16, BASE, false);
        let a = Asid::new(0);
        t.insert(page(1), a, frame(1));
        t.insert(page(17), a, frame(2)); // 17 & 15 == 1: same slot
        assert!(t.lookup(page(1), a).frame.is_none(), "overwritten");
        assert_eq!(t.lookup(page(17), a).frame, Some(frame(2)));
    }

    #[test]
    fn per_asid_tables_are_disjoint() {
        let mut t = Tsb::new(64, BASE, false);
        t.insert(page(4), Asid::new(1), frame(1));
        assert!(t.lookup(page(4), Asid::new(2)).frame.is_none());
        // And their entry lines differ (distinct table regions).
        let l1 = t.insert(page(4), Asid::new(1), frame(1));
        let l2 = t.insert(page(4), Asid::new(2), frame(1));
        assert_ne!(l1, l2);
    }

    #[test]
    fn lookup_lines_stay_in_aperture_region() {
        let mut t = Tsb::new(1024, BASE, true);
        for vpn in 0..100 {
            for &l in &t.lookup(page(vpn), Asid::new(3)).accesses {
                assert!(l.base().raw() >= BASE);
            }
        }
    }

    #[test]
    fn accesses_compare_by_contents() {
        let mut t = Tsb::new(1024, BASE, true);
        let a = t.lookup(page(5), Asid::new(1)).accesses;
        let b = t.lookup(page(5), Asid::new(1)).accesses;
        assert_eq!(a, b);
        // A page in a different slot group lands on different lines.
        let c = t.lookup(page(512), Asid::new(1)).accesses;
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Tsb::new(1000, BASE, false);
    }

    #[test]
    fn prepacked_lookup_matches_unpacked() {
        let mut a = Tsb::new(1024, BASE, true);
        let mut b = Tsb::new(1024, BASE, true);
        b.set_l0_enabled(false);
        for asid in [1u16, 2, 1] {
            for vpn in [3u64, 19, 3, 3] {
                a.insert(page(vpn), Asid::new(asid), frame(vpn));
                b.insert(page(vpn), Asid::new(asid), frame(vpn));
                let packed = csalt_types::pack_tlb_key(vpn, PageSize::Size4K, Asid::new(asid));
                assert_eq!(
                    a.lookup_prepacked(packed),
                    b.lookup(page(vpn), Asid::new(asid))
                );
                assert_eq!(
                    a.lookup_prepacked(packed),
                    b.lookup(page(vpn), Asid::new(asid)),
                    "repeat (memoized on `a`) must agree too"
                );
            }
        }
        assert!(a.l0_stats().hits > 0);
        assert_eq!(a.stats().hits, b.stats().hits);
        assert_eq!(a.stats().misses, b.stats().misses);
    }

    #[test]
    fn l0_memo_dropped_on_slot_rewrite_and_table_growth() {
        let mut t = Tsb::new(16, BASE, true);
        let a = Asid::new(1);
        t.insert(page(1), a, frame(1));
        assert!(t.lookup(page(1), a).frame.is_some()); // memoized
        let inv0 = t.l0_stats().invalidations;
        // Direct-mapped conflict rewrites the memoized slot.
        t.insert(page(17), a, frame(2));
        assert_eq!(t.l0_stats().invalidations, inv0 + 1);
        assert!(t.lookup(page(1), a).frame.is_none(), "no stale hit");
        t.insert(page(1), a, frame(1));
        let before = t.lookup(page(1), a); // re-memoized
                                           // A new ASID's first touch materializes a table, which moves the
                                           // virtualized descriptor/locator region → memo must drop.
        let inv1 = t.l0_stats().invalidations;
        t.insert(page(9), Asid::new(7), frame(9));
        assert_eq!(t.l0_stats().invalidations, inv1 + 1);
        let after = t.lookup(page(1), a);
        assert_eq!(before.frame, after.frame);
        assert_eq!(
            after.accesses,
            t.lookup(page(1), a).accesses,
            "replayed lines must match a fresh walk"
        );
    }
}
