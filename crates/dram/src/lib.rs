//! DRAM timing model for the CSALT simulator.
//!
//! Models the two memories of the paper's Table 2 — off-chip DDR4-2133 and
//! the on-package die-stacked DRAM that hosts the POM-TLB — at the level
//! the evaluation is sensitive to: per-bank open-row state, so that each
//! access resolves to a row-buffer *hit*, *closed-row miss* or *conflict*
//! with the corresponding tCAS / tRCD / tRP timing, plus the burst time for
//! a 64-byte line over the configured bus.
//!
//! The model is deliberately queueing-free: it returns the service latency
//! of an access in core cycles and leaves overlap/contention accounting to
//! the core model (see `csalt-sim`), mirroring how the paper separates
//! translation stalls (blocking) from data stalls (overlapped).
//!
//! # Example
//!
//! ```
//! use csalt_dram::DramModel;
//! use csalt_types::{DramTimings, PhysAddr};
//!
//! let mut ddr = DramModel::new(DramTimings::ddr4_2133(), 4.0);
//! let first = ddr.access(PhysAddr::new(0x1000), false);
//! let second = ddr.access(PhysAddr::new(0x1040), false);
//! assert!(second < first, "second access hits the open row");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csalt_types::{CkptError, CkptReader, CkptWriter, Cycle, DramTimings, PhysAddr, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Outcome of an access with respect to the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The addressed row was already open: column access only (tCAS).
    Hit,
    /// The bank was idle: activate + column access (tRCD + tCAS).
    ClosedMiss,
    /// Another row was open: precharge + activate + column access
    /// (tRP + tRCD + tCAS).
    Conflict,
}

/// Aggregate statistics for one DRAM device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Closed-row activations.
    pub row_closed: u64,
    /// Row conflicts (precharge needed).
    pub row_conflicts: u64,
    /// Writes among the accesses.
    pub writes: u64,
    /// Sum of returned latencies (core cycles), for averaging.
    pub total_latency: u64,
}

impl DramStats {
    /// Average access latency in core cycles (0 if no accesses).
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }

    /// Row-buffer hit rate in `[0, 1]`, or `None` when the device was
    /// never accessed (matches `HitMissStats::hit_rate` semantics so an
    /// idle channel never reports a fake 0%).
    pub fn row_hit_rate(&self) -> Option<f64> {
        if self.accesses == 0 {
            None
        } else {
            Some(self.row_hits as f64 / self.accesses as f64)
        }
    }

    /// Counter delta relative to an `earlier` snapshot of the same
    /// device (saturating, for telemetry epoch records).
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            accesses: self.accesses.saturating_sub(earlier.accesses),
            row_hits: self.row_hits.saturating_sub(earlier.row_hits),
            row_closed: self.row_closed.saturating_sub(earlier.row_closed),
            row_conflicts: self.row_conflicts.saturating_sub(earlier.row_conflicts),
            writes: self.writes.saturating_sub(earlier.writes),
            total_latency: self.total_latency.saturating_sub(earlier.total_latency),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
}

/// A single DRAM device with per-bank open-row tracking.
///
/// Latencies are returned in **core** cycles; the conversion uses the core
/// clock supplied at construction (4 GHz in the paper).
#[derive(Debug, Clone)]
pub struct DramModel {
    timings: DramTimings,
    banks: Vec<BankState>,
    stats: DramStats,
    /// Core cycles per memory-bus cycle, precomputed.
    core_per_bus: f64,
    /// Fixed controller/interconnect overhead in core cycles.
    controller_overhead: Cycle,
    row_shift: u32,
    bank_mask: u64,
    bank_shift: u32,
    /// Precomputed total latency per row outcome (hit / closed miss /
    /// conflict) — an access only ever takes one of three values, so the
    /// float timing math runs once at construction.
    latency_hit: Cycle,
    latency_closed: Cycle,
    latency_conflict: Cycle,
}

impl DramModel {
    /// Builds a model for `timings` driven by a core clocked at `core_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if the timing parameters describe a degenerate device
    /// (zero banks, zero bus width, or a row buffer smaller than a line).
    pub fn new(timings: DramTimings, core_ghz: f64) -> Self {
        assert!(timings.banks > 0, "DRAM must have at least one bank");
        assert!(timings.bus_bits >= 8, "bus must be at least one byte wide");
        assert!(
            timings.row_buffer_bytes >= LINE_BYTES,
            "row buffer must hold at least one line"
        );
        assert!(
            timings.row_buffer_bytes.is_power_of_two() && timings.banks.is_power_of_two(),
            "row buffer and bank count must be powers of two"
        );
        let row_shift = timings.row_buffer_bytes.trailing_zeros();
        let bank_shift = row_shift;
        let bank_mask = u64::from(timings.banks) - 1;
        let mut model = Self {
            banks: vec![BankState::default(); timings.banks as usize],
            stats: DramStats::default(),
            core_per_bus: timings.core_cycles_per_bus_cycle(core_ghz),
            // A small fixed cost for the on-chip network + memory
            // controller, common to both devices.
            controller_overhead: 10,
            timings,
            row_shift,
            bank_mask,
            bank_shift,
            latency_hit: 0,
            latency_closed: 0,
            latency_conflict: 0,
        };
        model.latency_hit = model.outcome_latency(RowOutcome::Hit);
        model.latency_closed = model.outcome_latency(RowOutcome::ClosedMiss);
        model.latency_conflict = model.outcome_latency(RowOutcome::Conflict);
        model
    }

    /// Total latency for one access with the given row outcome, in core
    /// cycles (the timing formula; evaluated once per outcome at build).
    fn outcome_latency(&self, outcome: RowOutcome) -> Cycle {
        let bus_cycles = match outcome {
            RowOutcome::Hit => f64::from(self.timings.t_cas),
            RowOutcome::ClosedMiss => f64::from(self.timings.t_rcd + self.timings.t_cas),
            RowOutcome::Conflict => {
                f64::from(self.timings.t_rp + self.timings.t_rcd + self.timings.t_cas)
            }
        };
        (bus_cycles * self.core_per_bus + self.burst_cycles()).round() as Cycle
            + self.controller_overhead
    }

    /// The device's timing parameters.
    pub fn timings(&self) -> &DramTimings {
        &self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (open-row state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Maps a physical address to (bank index, row number).
    #[inline]
    fn map(&self, pa: PhysAddr) -> (usize, u64) {
        let row_addr = pa.raw() >> self.row_shift;
        let bank = (row_addr & self.bank_mask) as usize;
        let row = pa.raw() >> (self.bank_shift + self.timings.banks.trailing_zeros());
        (bank, row)
    }

    /// Burst transfer time for one 64-byte line, in core cycles.
    #[inline]
    fn burst_cycles(&self) -> f64 {
        // Double data rate: bus_bits/8 bytes per half bus cycle.
        let bytes_per_bus_cycle = (f64::from(self.timings.bus_bits) / 8.0) * 2.0;
        (LINE_BYTES as f64 / bytes_per_bus_cycle) * self.core_per_bus
    }

    /// Classifies an access against the bank's open row and updates it.
    fn row_outcome(&mut self, bank: usize, row: u64) -> RowOutcome {
        let state = &mut self.banks[bank];
        let outcome = match state.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::ClosedMiss,
        };
        state.open_row = Some(row);
        outcome
    }

    /// Serves one line-granular access and returns its latency in core
    /// cycles. `is_write` only affects statistics — write latency to the
    /// row buffer is modelled identically to reads, as in the paper's
    /// simplified Ramulator front-end.
    pub fn access(&mut self, pa: PhysAddr, is_write: bool) -> Cycle {
        let (bank, row) = self.map(pa);
        let outcome = self.row_outcome(bank, row);
        let latency = match outcome {
            RowOutcome::Hit => self.latency_hit,
            RowOutcome::ClosedMiss => self.latency_closed,
            RowOutcome::Conflict => self.latency_conflict,
        };

        self.stats.accesses += 1;
        self.stats.total_latency += latency;
        if is_write {
            self.stats.writes += 1;
        }
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::ClosedMiss => self.stats.row_closed += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        latency
    }

    /// Updates the addressed bank's open-row register without serving
    /// the access: no latency, no statistics. The functional
    /// (state-only) execution path uses this to keep row-buffer state
    /// exactly as warm as a timed run would, so switching warmup modes
    /// never changes which rows the measured phase finds open.
    #[inline]
    pub fn touch(&mut self, pa: PhysAddr) {
        let (bank, row) = self.map(pa);
        self.banks[bank].open_row = Some(row);
    }

    /// Latency of a row-buffer hit, in core cycles — the best case this
    /// device can serve. Useful for latency estimators.
    pub fn best_case_latency(&self) -> Cycle {
        (f64::from(self.timings.t_cas) * self.core_per_bus + self.burst_cycles()).round() as Cycle
            + self.controller_overhead
    }

    /// Latency of a row conflict, in core cycles — the worst case.
    pub fn worst_case_latency(&self) -> Cycle {
        (f64::from(self.timings.t_rp + self.timings.t_rcd + self.timings.t_cas) * self.core_per_bus
            + self.burst_cycles())
        .round() as Cycle
            + self.controller_overhead
    }

    /// Serializes the per-bank open-row registers and statistics. Timing
    /// parameters are config-derived; only the bank count is written as a
    /// guard word.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len64(self.banks.len());
        for bank in &self.banks {
            match bank.open_row {
                Some(row) => {
                    w.u8(1);
                    w.u64(row);
                }
                None => {
                    w.u8(0);
                    w.u64(0);
                }
            }
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.row_hits);
        w.u64(self.stats.row_closed);
        w.u64(self.stats.row_conflicts);
        w.u64(self.stats.writes);
        w.u64(self.stats.total_latency);
    }

    /// Restores state written by [`DramModel::ckpt_save`]; the bank count
    /// must match this model's geometry.
    pub fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        if r.len64()? != self.banks.len() {
            return Err(CkptError::Mismatch("dram bank count"));
        }
        for bank in &mut self.banks {
            let flag = r.u8()?;
            let row = r.u64()?;
            bank.open_row = match flag {
                0 => None,
                1 => Some(row),
                _ => return Err(CkptError::Corrupt("dram open-row flag")),
            };
        }
        self.stats.accesses = r.u64()?;
        self.stats.row_hits = r.u64()?;
        self.stats.row_closed = r.u64()?;
        self.stats.row_conflicts = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.total_latency = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::DramKind;

    fn ddr() -> DramModel {
        DramModel::new(DramTimings::ddr4_2133(), 4.0)
    }

    fn stacked() -> DramModel {
        DramModel::new(DramTimings::die_stacked(), 4.0)
    }

    #[test]
    fn first_access_is_closed_miss() {
        let mut m = ddr();
        m.access(PhysAddr::new(0x4000), false);
        assert_eq!(m.stats().row_closed, 1);
        assert_eq!(m.stats().row_hits, 0);
    }

    #[test]
    fn same_row_hits_and_is_faster() {
        let mut m = ddr();
        let miss = m.access(PhysAddr::new(0x0), false);
        let hit = m.access(PhysAddr::new(0x40), false);
        assert_eq!(m.stats().row_hits, 1);
        assert!(hit < miss, "row hit {hit} must be faster than miss {miss}");
        assert_eq!(hit, m.best_case_latency());
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut m = ddr();
        let row_bytes = m.timings().row_buffer_bytes;
        let banks = u64::from(m.timings().banks);
        m.access(PhysAddr::new(0), false);
        // Same bank, different row: stride = row_buffer * banks.
        let conflict = m.access(PhysAddr::new(row_bytes * banks), false);
        assert_eq!(m.stats().row_conflicts, 1);
        assert_eq!(conflict, m.worst_case_latency());
        assert!(conflict > m.best_case_latency());
    }

    #[test]
    fn die_stacked_is_faster_than_ddr() {
        let mut s = stacked();
        let mut d = ddr();
        // Compare best cases: wider bus + lower CAS + faster clock.
        assert!(s.best_case_latency() < d.best_case_latency());
        let sl = s.access(PhysAddr::new(0x80), false);
        let dl = d.access(PhysAddr::new(0x80), false);
        assert!(sl < dl);
        assert_eq!(s.timings().kind, DramKind::DieStacked);
    }

    #[test]
    fn ddr_latencies_are_plausible() {
        // ~14+14 bus cycles @ 3.75 core/bus + burst(4 bus) + 10 ≈ 130 core
        // cycles: a realistic ~32 ns DDR4 access at 4 GHz.
        let mut m = ddr();
        let lat = m.access(PhysAddr::new(0), false);
        assert!((80..220).contains(&(lat as i64)), "got {lat}");
    }

    #[test]
    fn stats_average_matches_sum() {
        let mut m = ddr();
        let mut total = 0;
        for i in 0..100u64 {
            total += m.access(PhysAddr::new(i * 4096), i % 3 == 0);
        }
        assert_eq!(m.stats().accesses, 100);
        assert_eq!(m.stats().total_latency, total);
        assert!((m.stats().avg_latency() - total as f64 / 100.0).abs() < 1e-9);
        assert_eq!(m.stats().writes, 34);
        m.reset_stats();
        assert_eq!(m.stats().accesses, 0);
    }

    #[test]
    fn outcome_counts_partition_accesses() {
        let mut m = stacked();
        for i in 0..1000u64 {
            m.access(PhysAddr::new((i * 197) % (1 << 22)), false);
        }
        let s = m.stats();
        assert_eq!(s.accesses, s.row_hits + s.row_closed + s.row_conflicts);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let mut t = DramTimings::ddr4_2133();
        t.banks = 0;
        DramModel::new(t, 4.0);
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut m = ddr();
        for i in 0..512u64 {
            m.access(PhysAddr::new(i * LINE_BYTES), false);
        }
        // A 2 KiB row holds 32 lines; expect ~31/32 hit rate.
        assert!(m.stats().row_hit_rate().expect("accesses recorded") > 0.9);
        // An untouched device reports no rate at all, not 0%.
        assert_eq!(DramStats::default().row_hit_rate(), None);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let mut m = ddr();
        for i in 0..64u64 {
            m.access(PhysAddr::new(i * LINE_BYTES), i % 2 == 0);
        }
        let mid = *m.stats();
        for i in 0..64u64 {
            m.access(PhysAddr::new(i * 7919 * LINE_BYTES), false);
        }
        let delta = m.stats().delta_since(&mid);
        assert_eq!(delta.accesses, 64);
        assert_eq!(delta.writes, 0);
        assert_eq!(
            delta.accesses,
            delta.row_hits + delta.row_closed + delta.row_conflicts
        );
    }
}
