//! Memory request vocabulary: access types, the data/TLB classification,
//! and the trace record that workload generators emit.

use crate::addr::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessType {
    /// `true` for stores.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessType::Write)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Read => f.write_str("R"),
            AccessType::Write => f.write_str("W"),
        }
    }
}

/// Classification of a cache line's contents.
///
/// This is *the* distinction CSALT is built on (§3.1 "Classifying Addresses
/// as Data or TLB"): lines holding translation entries (POM-TLB entries, or
/// page-table entries for the conventional walker) compete with ordinary
/// data lines for cache capacity, and the partitioning algorithms treat the
/// two streams separately. The simulator classifies by address range, the
/// implementation choice the paper selects because it adds no metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryKind {
    /// An ordinary program data line.
    Data,
    /// A translation line: a POM-TLB entry, TSB entry or page-table entry.
    Tlb,
}

impl EntryKind {
    /// The other kind.
    #[inline]
    pub const fn other(self) -> Self {
        match self {
            EntryKind::Data => EntryKind::Tlb,
            EntryKind::Tlb => EntryKind::Data,
        }
    }

    /// Index (0 = data, 1 = TLB) for kind-indexed arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            EntryKind::Data => 0,
            EntryKind::Tlb => 1,
        }
    }
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryKind::Data => f.write_str("data"),
            EntryKind::Tlb => f.write_str("tlb"),
        }
    }
}

/// One record of a workload's memory trace: a virtual access plus the
/// number of non-memory instructions executed since the previous record.
///
/// The `gap` field lets the core model account for compute instructions
/// between memory operations without storing them individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// The virtual address touched.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub ty: AccessType,
    /// Non-memory instructions retired since the previous memory access.
    pub gap: u32,
}

impl MemAccess {
    /// Convenience constructor for a read with a given gap.
    #[inline]
    pub const fn read(vaddr: VirtAddr, gap: u32) -> Self {
        Self {
            vaddr,
            ty: AccessType::Read,
            gap,
        }
    }

    /// Convenience constructor for a write with a given gap.
    #[inline]
    pub const fn write(vaddr: VirtAddr, gap: u32) -> Self {
        Self {
            vaddr,
            ty: AccessType::Write,
            gap,
        }
    }

    /// Instructions this record represents (the access itself plus the gap).
    #[inline]
    pub const fn instructions(self) -> u64 {
        self.gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_kind_other_is_involutive() {
        assert_eq!(EntryKind::Data.other().other(), EntryKind::Data);
        assert_eq!(EntryKind::Tlb.other(), EntryKind::Data);
        assert_ne!(EntryKind::Data.index(), EntryKind::Tlb.index());
    }

    #[test]
    fn mem_access_instruction_count() {
        let a = MemAccess::read(VirtAddr::new(0x1000), 4);
        assert_eq!(a.instructions(), 5);
        assert!(!a.ty.is_write());
        let w = MemAccess::write(VirtAddr::new(0x2000), 0);
        assert_eq!(w.instructions(), 1);
        assert!(w.ty.is_write());
    }
}
