//! Machine configuration: the paper's Table 2, expressed as data.
//!
//! [`SystemConfig::skylake`] reproduces the evaluated host exactly; every
//! experiment starts from it and overrides only the knob under study.

use crate::addr::LINE_BYTES;
use crate::error::ConfigError;
use crate::ids::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry and access latency of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Access latency in cycles (hit latency, total from request).
    pub latency: Cycle,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    #[inline]
    pub const fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Total number of lines.
    #[inline]
    pub const fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Validates that the geometry is internally consistent.
    ///
    /// Delegates to the audit rule engine's invariants
    /// ([`crate::invariants::check_cache_geometry`]) so the `CSALT-Axxx`
    /// rules are the single source of truth.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero, the capacity is not
    /// an exact multiple of `ways * line_bytes`, or the set count is not a
    /// power of two (required for bit-sliced indexing).
    pub fn validate(&self, name: &str) -> Result<(), ConfigError> {
        let violations = crate::invariants::check_cache_geometry(name, self);
        match crate::invariants::first_error(&violations) {
            Some(v) => Err(ConfigError::new(v.to_string())),
            None => Ok(()),
        }
    }
}

/// Geometry and latency of one SRAM TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbGeometry {
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Lookup latency in cycles.
    pub latency: Cycle,
}

impl TlbGeometry {
    /// Number of sets implied by the geometry.
    #[inline]
    pub const fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    /// Validates the TLB geometry.
    ///
    /// Delegates to the audit rule engine's invariants
    /// ([`crate::invariants::check_tlb_geometry`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if entries/ways are zero or do not divide.
    pub fn validate(&self, name: &str) -> Result<(), ConfigError> {
        let violations = crate::invariants::check_tlb_geometry(name, self);
        match crate::invariants::first_error(&violations) {
            Some(v) => Err(ConfigError::new(v.to_string())),
            None => Ok(()),
        }
    }
}

/// MMU paging-structure caches (Intel PSC), per Table 2.
///
/// Each level caches partial translations so a 2D walk can skip upper
/// levels; hit latency is 2 cycles per the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PscConfig {
    /// PML4 (level-4) cache entries.
    pub pml4_entries: u32,
    /// PDP (level-3) cache entries.
    pub pdp_entries: u32,
    /// PDE (level-2) cache entries.
    pub pde_entries: u32,
    /// Lookup latency in cycles.
    pub latency: Cycle,
}

/// Which DRAM device a channel models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// Off-chip DDR4-2133 (Table 2 "DDR").
    Ddr4,
    /// On-package die-stacked DRAM (Table 2 "Die-Stacked DRAM"), used by
    /// the POM-TLB.
    DieStacked,
}

impl fmt::Display for DramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramKind::Ddr4 => f.write_str("DDR4"),
            DramKind::DieStacked => f.write_str("die-stacked"),
        }
    }
}

/// Timing and organization of one DRAM device, per Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Device kind.
    pub kind: DramKind,
    /// I/O bus frequency in MHz (data rate is double).
    pub bus_mhz: u64,
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Row buffer size in bytes.
    pub row_buffer_bytes: u64,
    /// CAS latency in memory-bus cycles.
    pub t_cas: u32,
    /// RAS-to-CAS delay in memory-bus cycles.
    pub t_rcd: u32,
    /// Row precharge in memory-bus cycles.
    pub t_rp: u32,
    /// Banks per rank (organizational; 16 is typical for DDR4).
    pub banks: u32,
}

impl DramTimings {
    /// Core cycles (at `core_ghz`) per memory-bus cycle.
    #[inline]
    pub fn core_cycles_per_bus_cycle(&self, core_ghz: f64) -> f64 {
        core_ghz * 1000.0 / self.bus_mhz as f64
    }

    /// DDR4-2133 parameters from Table 2.
    pub const fn ddr4_2133() -> Self {
        Self {
            kind: DramKind::Ddr4,
            bus_mhz: 1066,
            bus_bits: 64,
            row_buffer_bytes: 2 << 10,
            t_cas: 14,
            t_rcd: 14,
            t_rp: 14,
            banks: 16,
        }
    }

    /// Die-stacked DRAM parameters from Table 2.
    pub const fn die_stacked() -> Self {
        Self {
            kind: DramKind::DieStacked,
            bus_mhz: 1000,
            bus_bits: 128,
            row_buffer_bytes: 2 << 10,
            t_cas: 11,
            t_rcd: 11,
            t_rp: 11,
            banks: 16,
        }
    }
}

/// Organization of the large memory-resident L3 TLB (POM-TLB, Ryoo et al.
/// ISCA'17) that CSALT is architected over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PomTlbConfig {
    /// Capacity in bytes carved out of die-stacked DRAM (16 MiB in the
    /// paper — "orders of magnitude larger than on-chip TLBs").
    pub size_bytes: u64,
    /// Associativity of the memory-resident TLB array.
    pub ways: u32,
    /// Bytes per entry (one translation entry; the paper stores one
    /// translation per entry, several entries per 64 B line).
    pub entry_bytes: u64,
    /// Physical base address of the memory-mapped aperture. Cache lines
    /// whose address falls inside `[base, base + size)` are classified as
    /// [`crate::EntryKind::Tlb`].
    pub base: u64,
}

impl PomTlbConfig {
    /// Total entries the array can hold.
    #[inline]
    pub const fn entries(&self) -> u64 {
        self.size_bytes / self.entry_bytes
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(&self) -> u64 {
        self.entries() / self.ways as u64
    }

    /// Whether a physical byte address falls inside the aperture.
    #[inline]
    pub const fn contains(&self, pa: u64) -> bool {
        pa >= self.base && pa < self.base + self.size_bytes
    }
}

/// Address-translation scheme under evaluation (§5 compares these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TranslationScheme {
    /// Conventional L1-L2 TLBs + 2D page walker; walk entries cached in
    /// the data caches (the paper's "Conventional" baseline).
    Conventional,
    /// Large memory-resident L3 TLB with unmanaged (LRU) caching of its
    /// entries in L2/L3 data caches (the paper's "POM-TLB" baseline).
    PomTlb,
    /// CSALT with dynamic (unweighted marginal-utility) partitioning.
    CsaltD,
    /// CSALT with criticality-weighted dynamic partitioning.
    CsaltCd,
    /// Dynamic Insertion Policy (Qureshi et al.) layered over POM-TLB —
    /// the cache-replacement prior work the paper compares against.
    Dip,
    /// Translation Storage Buffer (UltraSPARC): addressable software
    /// translation buffer requiring multiple cacheable lookups per
    /// translation in virtualized mode.
    Tsb,
    /// CSALT with a *static* way partition: the given number of ways per
    /// set reserved for data entries (footnote 6 ablation).
    StaticPartition {
        /// Ways reserved for data lines in every partitioned cache.
        data_ways: u32,
    },
    /// TSB translation with CSALT-CD cache partitioning layered on top —
    /// §5.2/§6 note that "the TSB system organization can leverage CSALT
    /// cache partitioning schemes"; this variant quantifies it.
    TsbCsalt,
    /// DRRIP replacement (Jaleel et al.) over POM-TLB — a second
    /// content-oblivious replacement baseline from the paper's related
    /// work (§6), alongside DIP.
    Drrip,
}

impl TranslationScheme {
    /// Short lowercase label used in reports.
    pub fn label(&self) -> String {
        match self {
            TranslationScheme::Conventional => "conventional".into(),
            TranslationScheme::PomTlb => "pom-tlb".into(),
            TranslationScheme::CsaltD => "csalt-d".into(),
            TranslationScheme::CsaltCd => "csalt-cd".into(),
            TranslationScheme::Dip => "dip".into(),
            TranslationScheme::Tsb => "tsb".into(),
            TranslationScheme::StaticPartition { data_ways } => format!("static-{data_ways}"),
            TranslationScheme::TsbCsalt => "tsb-csalt".into(),
            TranslationScheme::Drrip => "drrip".into(),
        }
    }

    /// Parses the labels produced by [`TranslationScheme::label`]
    /// (CLI argument form). Returns `None` for unknown labels.
    #[must_use]
    pub fn parse_label(label: &str) -> Option<Self> {
        match label {
            "conventional" => Some(TranslationScheme::Conventional),
            "pom-tlb" => Some(TranslationScheme::PomTlb),
            "csalt-d" => Some(TranslationScheme::CsaltD),
            "csalt-cd" => Some(TranslationScheme::CsaltCd),
            "dip" => Some(TranslationScheme::Dip),
            "tsb" => Some(TranslationScheme::Tsb),
            "tsb-csalt" => Some(TranslationScheme::TsbCsalt),
            "drrip" => Some(TranslationScheme::Drrip),
            other => {
                let ways = other.strip_prefix("static-")?.parse().ok()?;
                Some(TranslationScheme::StaticPartition { data_ways: ways })
            }
        }
    }

    /// Whether the scheme uses the large L3 TLB (everything except the
    /// conventional walker and the TSB).
    pub const fn uses_pom_tlb(&self) -> bool {
        !matches!(
            self,
            TranslationScheme::Conventional | TranslationScheme::Tsb | TranslationScheme::TsbCsalt
        )
    }
}

impl fmt::Display for TranslationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Cache replacement policy family (§3.4 discusses all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Exact least-recently-used ordering.
    TrueLru,
    /// Not-Recently-Used single-bit approximation.
    Nru,
    /// Binary-tree pseudo-LRU.
    BtPlru,
    /// 2-bit Re-Reference Interval Prediction (SRRIP/BRRIP storage);
    /// combined with set dueling this realizes DRRIP (§6 related work).
    Rrip,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::TrueLru => f.write_str("true-lru"),
            ReplacementKind::Nru => f.write_str("nru"),
            ReplacementKind::BtPlru => f.write_str("bt-plru"),
            ReplacementKind::Rrip => f.write_str("rrip"),
        }
    }
}

/// Full machine description: the paper's Table 2 plus the POM-TLB and
/// simulation knobs that Section 4 specifies in prose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core clock in GHz.
    pub core_ghz: f64,
    /// Number of cores.
    pub cores: u32,
    /// Per-core L1 data cache.
    pub l1d: CacheGeometry,
    /// Per-core unified L2 cache.
    pub l2: CacheGeometry,
    /// Shared L3 cache.
    pub l3: CacheGeometry,
    /// L1 TLB for 4 KiB pages.
    pub l1_tlb_4k: TlbGeometry,
    /// L1 TLB for 2 MiB pages.
    pub l1_tlb_2m: TlbGeometry,
    /// Unified L2 TLB (both page sizes).
    pub l2_tlb: TlbGeometry,
    /// MMU paging-structure caches.
    pub psc: PscConfig,
    /// Die-stacked DRAM backing the POM-TLB.
    pub die_stacked: DramTimings,
    /// Off-chip DDR4.
    pub ddr: DramTimings,
    /// POM-TLB organization.
    pub pom_tlb: PomTlbConfig,
    /// Replacement policy for the data caches.
    pub replacement: ReplacementKind,
    /// CSALT repartitioning epoch, in cache accesses (256 K default, §5.3).
    pub epoch_accesses: u64,
    /// Context-switch quantum in core cycles (10 ms at 4 GHz by default;
    /// experiments scale this together with workload footprint).
    pub cs_interval_cycles: Cycle,
    /// Contexts scheduled per core (2 by default).
    pub contexts_per_core: u32,
    /// Page-table depth: 4 (x86-64) or 5 (Intel LA57; the paper's
    /// introduction cites 5-level paging as further motivation).
    pub pt_levels: u8,
    /// Base cycles-per-instruction for non-memory work.
    pub base_cpi: f64,
    /// Memory-level parallelism divisor applied to overlappable data-miss
    /// stall cycles (translation stalls are blocking and never divided).
    pub mlp: f64,
}

impl SystemConfig {
    /// The evaluated 8-core Skylake-class host, exactly as in Table 2.
    pub fn skylake() -> Self {
        Self {
            core_ghz: 4.0,
            cores: 8,
            l1d: CacheGeometry {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: LINE_BYTES,
                latency: 4,
            },
            l2: CacheGeometry {
                size_bytes: 256 << 10,
                ways: 4,
                line_bytes: LINE_BYTES,
                latency: 12,
            },
            l3: CacheGeometry {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: LINE_BYTES,
                latency: 42,
            },
            l1_tlb_4k: TlbGeometry {
                entries: 64,
                ways: 4,
                latency: 9,
            },
            l1_tlb_2m: TlbGeometry {
                entries: 32,
                ways: 4,
                latency: 9,
            },
            l2_tlb: TlbGeometry {
                entries: 1536,
                ways: 12,
                latency: 17,
            },
            psc: PscConfig {
                pml4_entries: 2,
                pdp_entries: 4,
                pde_entries: 32,
                latency: 2,
            },
            die_stacked: DramTimings::die_stacked(),
            ddr: DramTimings::ddr4_2133(),
            pom_tlb: PomTlbConfig {
                size_bytes: 16 << 20,
                ways: 4,
                entry_bytes: 16,
                // High aperture well above any simulated program footprint.
                base: 0x0000_7e00_0000_0000,
            },
            replacement: ReplacementKind::TrueLru,
            epoch_accesses: 256_000,
            cs_interval_cycles: 40_000_000,
            contexts_per_core: 2,
            pt_levels: 4,
            base_cpi: 0.6,
            mlp: 4.0,
        }
    }

    /// Validates every sub-configuration.
    ///
    /// Delegates to the audit rule engine's invariants
    /// ([`crate::invariants::check_system`]); only error-severity
    /// violations fail validation — advisory warnings (latency
    /// monotonicity, epoch sizing) are surfaced by `csalt-audit`.
    ///
    /// # Errors
    ///
    /// Returns the first error-severity [`ConfigError`] found in any
    /// component.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let violations = crate::invariants::check_system(self);
        match crate::invariants::first_error(&violations) {
            Some(v) => Err(ConfigError::new(v.to_string())),
            None => Ok(()),
        }
    }

    /// All built-in configuration presets, by name. The audit binary
    /// checks every preset against every translation scheme; new presets
    /// added here are picked up automatically.
    pub fn presets() -> Vec<(&'static str, SystemConfig)> {
        let mut la57 = Self::skylake();
        la57.pt_levels = 5;

        let mut rrip = Self::skylake();
        rrip.replacement = ReplacementKind::Rrip;

        let mut dense = Self::skylake();
        dense.cores = 4;
        dense.contexts_per_core = 4;

        let mut fast_epoch = Self::skylake();
        fast_epoch.epoch_accesses = 64_000;

        vec![
            ("skylake", Self::skylake()),
            ("skylake-la57", la57),
            ("skylake-rrip", rrip),
            ("skylake-4core-4ctx", dense),
            ("skylake-fast-epoch", fast_epoch),
        ]
    }

    /// Reach of the unified L2 TLB for 4 KiB pages, in bytes.
    #[inline]
    pub fn l2_tlb_reach_4k(&self) -> u64 {
        u64::from(self.l2_tlb.entries) * 4096
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_table2() {
        let cfg = SystemConfig::skylake();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.l1d.size_bytes, 32 << 10);
        assert_eq!(cfg.l1d.latency, 4);
        assert_eq!(cfg.l2.latency, 12);
        assert_eq!(cfg.l3.ways, 16);
        assert_eq!(cfg.l3.latency, 42);
        assert_eq!(cfg.l2_tlb.entries, 1536);
        assert_eq!(cfg.l2_tlb.ways, 12);
        assert_eq!(cfg.l2_tlb.latency, 17);
        assert_eq!(cfg.psc.pde_entries, 32);
        assert_eq!(cfg.ddr.t_cas, 14);
        assert_eq!(cfg.die_stacked.t_cas, 11);
        assert_eq!(cfg.pom_tlb.size_bytes, 16 << 20);
        cfg.validate().expect("skylake config must validate");
    }

    #[test]
    fn cache_geometry_derives_sets() {
        let l3 = SystemConfig::skylake().l3;
        assert_eq!(l3.sets(), 8192);
        assert_eq!(l3.lines(), 131072);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut cfg = SystemConfig::skylake();
        cfg.l2.ways = 3; // 256 KiB / (64*3) is not a power-of-two set count
        assert!(cfg.validate().is_err());

        let mut cfg2 = SystemConfig::skylake();
        cfg2.epoch_accesses = 0;
        assert!(cfg2.validate().is_err());

        let mut cfg3 = SystemConfig::skylake();
        cfg3.mlp = 0.5;
        assert!(cfg3.validate().is_err());
    }

    #[test]
    fn pom_tlb_aperture_classification() {
        let pom = SystemConfig::skylake().pom_tlb;
        assert!(pom.contains(pom.base));
        assert!(pom.contains(pom.base + pom.size_bytes - 1));
        assert!(!pom.contains(pom.base + pom.size_bytes));
        assert!(!pom.contains(0x1000));
        assert_eq!(pom.entries(), (16 << 20) / 16);
    }

    #[test]
    fn scheme_labels_are_distinct() {
        use std::collections::HashSet;
        let schemes = [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltD,
            TranslationScheme::CsaltCd,
            TranslationScheme::Dip,
            TranslationScheme::Tsb,
            TranslationScheme::StaticPartition { data_ways: 8 },
            TranslationScheme::TsbCsalt,
        ];
        let labels: HashSet<_> = schemes
            .iter()
            .map(super::TranslationScheme::label)
            .collect();
        assert_eq!(labels.len(), schemes.len());
        assert!(TranslationScheme::CsaltCd.uses_pom_tlb());
        assert!(!TranslationScheme::Conventional.uses_pom_tlb());
        assert!(!TranslationScheme::Tsb.uses_pom_tlb());
        assert!(!TranslationScheme::TsbCsalt.uses_pom_tlb());
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = SystemConfig::skylake();
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: SystemConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }

    #[test]
    fn dram_bus_cycle_conversion() {
        let ddr = DramTimings::ddr4_2133();
        let ratio = ddr.core_cycles_per_bus_cycle(4.0);
        assert!((ratio - 3.752).abs() < 0.01, "got {ratio}");
    }
}
