//! Strongly-typed virtual / physical addresses and their derived views.
//!
//! The simulator models an x86-64-style machine: 64-byte cache lines,
//! 4-level radix page tables, and page sizes of 4 KiB, 2 MiB and 1 GiB.
//! Newtypes keep guest-virtual, host-physical and line-granular addresses
//! from being confused with one another (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cache line in bytes. Matches the paper's Skylake host.
pub const LINE_BYTES: u64 = 64;

/// Page sizes supported by the simulated MMU.
///
/// The paper's host uses Transparent Huge Pages, so both 4 KiB and 2 MiB
/// translations flow through the TLB hierarchy; 1 GiB pages exist in the
/// architecture but the paper's L1 1 GiB TLB is deliberately unused (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PageSize {
    /// 4 KiB base page.
    Size4K,
    /// 2 MiB huge page.
    Size2M,
    /// 1 GiB huge page.
    Size1G,
}

impl PageSize {
    /// Page size in bytes.
    ///
    /// ```
    /// use csalt_types::PageSize;
    /// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
    /// ```
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 << 10,
            PageSize::Size2M => 2 << 20,
            PageSize::Size1G => 1 << 30,
        }
    }

    /// log2 of the page size (the number of offset bits).
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// All sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => f.write_str("4K"),
            PageSize::Size2M => f.write_str("2M"),
            PageSize::Size1G => f.write_str("1G"),
        }
    }
}

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw 64-bit address value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The address of the cache line containing this address.
            #[inline]
            pub const fn line(self) -> LineAddr {
                LineAddr(self.0 / LINE_BYTES)
            }

            /// Byte offset within the containing `size` page.
            #[inline]
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Returns this address advanced by `delta` bytes.
            #[inline]
            pub const fn offset(self, delta: u64) -> Self {
                Self(self.0.wrapping_add(delta))
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype! {
    /// A virtual address in the address space of the currently running
    /// context (the paper's *gVA* when virtualized, plain VA when native).
    VirtAddr
}

addr_newtype! {
    /// A host-physical address — the final output of translation and the
    /// address space that caches and DRAM operate in.
    PhysAddr
}

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub const fn page(self, size: PageSize) -> VirtPage {
        VirtPage {
            vpn: self.0 >> size.shift(),
            size,
        }
    }

    /// The 9-bit index into page-table level `level` (1 = leaf PTE
    /// level; 4 = PML4 root of 4-level paging; 5 = the LA57 PML5 root
    /// of Intel's 5-level extension the paper's introduction cites).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=5`.
    #[inline]
    pub fn pt_index(self, level: u8) -> u64 {
        assert!((1..=5).contains(&level), "page table level out of range");
        (self.0 >> (12 + 9 * (u64::from(level) - 1))) & 0x1ff
    }
}

impl PhysAddr {
    /// The physical frame containing this address.
    #[inline]
    pub const fn frame(self, size: PageSize) -> PhysFrame {
        PhysFrame {
            pfn: self.0 >> size.shift(),
            size,
        }
    }
}

/// A virtual page: a virtual page number plus the page's size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtPage {
    vpn: u64,
    size: PageSize,
}

impl VirtPage {
    /// Builds a page from a raw virtual page number.
    #[inline]
    pub const fn from_vpn(vpn: u64, size: PageSize) -> Self {
        Self { vpn, size }
    }

    /// The virtual page number.
    #[inline]
    pub const fn vpn(self) -> u64 {
        self.vpn
    }

    /// The page's size.
    #[inline]
    pub const fn size(self) -> PageSize {
        self.size
    }

    /// The first address of the page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr::new(self.vpn << self.size.shift())
    }
}

/// A physical frame: a physical frame number plus the frame's size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysFrame {
    pfn: u64,
    size: PageSize,
}

impl PhysFrame {
    /// Builds a frame from a raw physical frame number.
    #[inline]
    pub const fn from_pfn(pfn: u64, size: PageSize) -> Self {
        Self { pfn, size }
    }

    /// The physical frame number.
    #[inline]
    pub const fn pfn(self) -> u64 {
        self.pfn
    }

    /// The frame's size.
    #[inline]
    pub const fn size(self) -> PageSize {
        self.size
    }

    /// The first address of the frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.pfn << self.size.shift())
    }

    /// Translates `va` assuming it lies in the corresponding virtual page.
    #[inline]
    pub const fn translate(self, va: VirtAddr) -> PhysAddr {
        PhysAddr::new(self.base().raw() | va.page_offset(self.size))
    }
}

/// A 64-byte-granular physical line address (the unit caches operate on).
///
/// Stored as `PhysAddr / LINE_BYTES` so that adjacent lines differ by one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line number (byte address divided by [`LINE_BYTES`]).
    #[inline]
    pub const fn from_line_number(n: u64) -> Self {
        Self(n)
    }

    /// The raw line number.
    #[inline]
    pub const fn line_number(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 * LINE_BYTES)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0 * LINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes_and_shift_agree() {
        for size in PageSize::ALL {
            assert_eq!(size.bytes(), 1u64 << size.shift());
        }
    }

    #[test]
    fn virt_addr_page_round_trip() {
        let va = VirtAddr::new(0x0dea_dbee_f123);
        for size in PageSize::ALL {
            let page = va.page(size);
            assert_eq!(page.base().raw() + va.page_offset(size), va.raw());
            assert_eq!(page.base().page_offset(size), 0);
        }
    }

    #[test]
    fn pt_index_decomposition_recomposes() {
        let va = VirtAddr::new(0x0000_7fff_1234_5678);
        let l4 = va.pt_index(4);
        let l3 = va.pt_index(3);
        let l2 = va.pt_index(2);
        let l1 = va.pt_index(1);
        let rebuilt = (l4 << 39) | (l3 << 30) | (l2 << 21) | (l1 << 12) | (va.raw() & 0xfff);
        assert_eq!(rebuilt, va.raw() & 0x0000_ffff_ffff_ffff);
    }

    #[test]
    #[should_panic(expected = "page table level out of range")]
    fn pt_index_rejects_level_zero() {
        VirtAddr::new(0).pt_index(0);
    }

    #[test]
    fn frame_translates_offsets() {
        let frame = PhysFrame::from_pfn(0x42, PageSize::Size4K);
        let va = VirtAddr::new(0x7000_0abc);
        let pa = frame.translate(va);
        assert_eq!(pa.raw(), (0x42 << 12) | 0xabc);
    }

    #[test]
    fn line_addresses_are_64_byte_granular() {
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x103f);
        let c = PhysAddr::new(0x1040);
        assert_eq!(a.line(), b.line());
        assert_ne!(a.line(), c.line());
        assert_eq!(c.line().line_number(), a.line().line_number() + 1);
        assert_eq!(a.line().base(), a);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", VirtAddr::new(0x10)), "0x10");
        assert_eq!(format!("{}", PageSize::Size4K), "4K");
        assert!(!format!("{}", LineAddr::from_line_number(3)).is_empty());
    }
}
