//! Structured configuration invariants — the single source of truth the
//! audit rule engine (`csalt-audit`) and the `validate()` methods on
//! [`CacheGeometry`], [`TlbGeometry`], and [`SystemConfig`] all consume.
//!
//! Each check returns [`Violation`]s carrying a stable diagnostic code in
//! the `CSALT-Axxx` space (see DESIGN.md). Codes `A001`–`A049` are static
//! configuration rules (checkable without running a simulation); codes
//! `A101`+ are conservation laws over runtime counters and are emitted by
//! `csalt-audit`'s conservation module.
//!
//! Severity semantics: an [`Error`](Severity::Error) means the model is
//! *wrong* (downstream counter arithmetic would silently corrupt); a
//! [`Warning`](Severity::Warning) means the configuration is suspicious
//! relative to the paper's machine (Table 2) but still simulable.

use crate::addr::LINE_BYTES;
use crate::config::{
    CacheGeometry, DramTimings, PomTlbConfig, SystemConfig, TlbGeometry, TranslationScheme,
};
use serde::Serialize;
use std::fmt;

/// How bad a violated invariant is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Suspicious relative to the modelled machine; simulation proceeds.
    Warning,
    /// The model is inconsistent; results would be silently corrupt.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One violated invariant: a stable code, the component it concerns, and
/// a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Violation {
    /// Stable diagnostic code (`CSALT-Axxx`); never renumbered.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The component the violation concerns (`"l1d"`, `"pom-tlb"`, …).
    pub subject: String,
    /// What is wrong and why it matters.
    pub message: String,
}

impl Violation {
    fn error(code: &'static str, subject: &str, message: impl Into<String>) -> Self {
        Violation {
            code,
            severity: Severity::Error,
            subject: subject.to_string(),
            message: message.into(),
        }
    }

    fn warning(code: &'static str, subject: &str, message: impl Into<String>) -> Self {
        Violation {
            code,
            severity: Severity::Warning,
            subject: subject.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.subject, self.message
        )
    }
}

/// The first error-severity violation, if any — what `validate()` methods
/// surface as their `ConfigError`.
pub fn first_error(violations: &[Violation]) -> Option<&Violation> {
    violations.iter().find(|v| v.severity == Severity::Error)
}

/// CSALT-A001..A004: cache geometry consistency.
pub fn check_cache_geometry(name: &str, geom: &CacheGeometry) -> Vec<Violation> {
    let mut out = Vec::new();
    if geom.size_bytes == 0 || geom.ways == 0 || geom.line_bytes == 0 {
        out.push(Violation::error(
            "CSALT-A001",
            name,
            "zero-sized dimension (size, ways, and line bytes must all be positive)",
        ));
        // The remaining arithmetic would divide by zero.
        return out;
    }
    if !geom
        .size_bytes
        .is_multiple_of(geom.line_bytes * u64::from(geom.ways))
    {
        out.push(Violation::error(
            "CSALT-A002",
            name,
            format!(
                "capacity {} is not divisible by ways*line ({}); sets would be fractional",
                geom.size_bytes,
                geom.line_bytes * u64::from(geom.ways)
            ),
        ));
        return out;
    }
    if !geom.sets().is_power_of_two() {
        out.push(Violation::error(
            "CSALT-A003",
            name,
            format!(
                "set count {} is not a power of two (bit-sliced indexing requires it)",
                geom.sets()
            ),
        ));
    }
    if geom.line_bytes != LINE_BYTES {
        out.push(Violation::warning(
            "CSALT-A004",
            name,
            format!(
                "line size {} differs from the paper's {LINE_BYTES} B; \
                 POM-TLB entry packing assumes {LINE_BYTES} B lines",
                geom.line_bytes
            ),
        ));
    }
    out
}

/// CSALT-A005..A006: SRAM TLB geometry consistency.
pub fn check_tlb_geometry(name: &str, geom: &TlbGeometry) -> Vec<Violation> {
    let mut out = Vec::new();
    if geom.entries == 0 || geom.ways == 0 {
        out.push(Violation::error(
            "CSALT-A005",
            name,
            "zero-sized TLB (entries and ways must be positive)",
        ));
        return out;
    }
    if !geom.entries.is_multiple_of(geom.ways) {
        out.push(Violation::error(
            "CSALT-A006",
            name,
            format!(
                "{} entries not divisible by {} ways; sets would be fractional",
                geom.entries, geom.ways
            ),
        ));
    }
    out
}

/// CSALT-A007: POM-TLB organization and aperture consistency.
pub fn check_pom_tlb(pom: &PomTlbConfig) -> Vec<Violation> {
    let subject = "pom-tlb";
    let mut out = Vec::new();
    if pom.entry_bytes == 0 || pom.ways == 0 || pom.size_bytes == 0 {
        out.push(Violation::error(
            "CSALT-A007",
            subject,
            "zero-sized dimension (size, ways, and entry bytes must all be positive)",
        ));
        return out;
    }
    if !pom.entries().is_multiple_of(u64::from(pom.ways)) {
        out.push(Violation::error(
            "CSALT-A007",
            subject,
            format!(
                "{} entries not divisible by {} ways",
                pom.entries(),
                pom.ways
            ),
        ));
        return out;
    }
    if !pom.sets().is_power_of_two() {
        out.push(Violation::error(
            "CSALT-A007",
            subject,
            format!("set count {} is not a power of two", pom.sets()),
        ));
    }
    if pom.base.checked_add(pom.size_bytes).is_none() {
        out.push(Violation::error(
            "CSALT-A007",
            subject,
            "aperture base + size overflows the physical address space",
        ));
    }
    out
}

/// CSALT-A008: DRAM timing consistency (the same constraints the DRAM
/// model asserts at construction, surfaced as diagnostics first).
pub fn check_dram_timings(name: &str, dram: &DramTimings) -> Vec<Violation> {
    let mut out = Vec::new();
    if dram.bus_mhz == 0 || dram.t_cas == 0 || dram.t_rcd == 0 || dram.t_rp == 0 {
        out.push(Violation::error(
            "CSALT-A008",
            name,
            "zero timing parameter (bus MHz, tCAS, tRCD, tRP must be positive)",
        ));
    }
    if dram.bus_bits < 8 || !dram.bus_bits.is_power_of_two() {
        out.push(Violation::error(
            "CSALT-A008",
            name,
            format!(
                "bus width {} bits must be a power of two >= 8",
                dram.bus_bits
            ),
        ));
    }
    if dram.banks == 0 || !dram.banks.is_power_of_two() {
        out.push(Violation::error(
            "CSALT-A008",
            name,
            format!("bank count {} must be a power of two >= 1", dram.banks),
        ));
    }
    if dram.row_buffer_bytes < LINE_BYTES {
        out.push(Violation::error(
            "CSALT-A008",
            name,
            format!(
                "row buffer {} B smaller than one cache line ({LINE_BYTES} B)",
                dram.row_buffer_bytes
            ),
        ));
    }
    out
}

/// CSALT-A009..A013: whole-system parameters and cross-component
/// relationships. Includes every sub-geometry check.
pub fn check_system(cfg: &SystemConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    let system = "system";

    if cfg.cores == 0 {
        out.push(Violation::error("CSALT-A009", system, "zero cores"));
    }
    if !(cfg.core_ghz.is_finite() && cfg.core_ghz > 0.0) {
        out.push(Violation::error(
            "CSALT-A009",
            system,
            format!(
                "core clock {} GHz must be finite and positive",
                cfg.core_ghz
            ),
        ));
    }
    if cfg.contexts_per_core == 0 {
        out.push(Violation::error(
            "CSALT-A009",
            system,
            "zero contexts per core",
        ));
    }
    if !(cfg.mlp.is_finite() && cfg.mlp >= 1.0) {
        out.push(Violation::error(
            "CSALT-A009",
            system,
            format!(
                "mlp {} must be finite and >= 1 (it divides stall cycles)",
                cfg.mlp
            ),
        ));
    }
    if !(cfg.base_cpi.is_finite() && cfg.base_cpi > 0.0) {
        out.push(Violation::error(
            "CSALT-A009",
            system,
            format!("base CPI {} must be finite and positive", cfg.base_cpi),
        ));
    }
    if cfg.cs_interval_cycles == 0 {
        out.push(Violation::error(
            "CSALT-A009",
            system,
            "zero context-switch interval (every access would context switch)",
        ));
    }

    out.extend(check_cache_geometry("l1d", &cfg.l1d));
    out.extend(check_cache_geometry("l2", &cfg.l2));
    out.extend(check_cache_geometry("l3", &cfg.l3));
    out.extend(check_tlb_geometry("l1-tlb-4k", &cfg.l1_tlb_4k));
    out.extend(check_tlb_geometry("l1-tlb-2m", &cfg.l1_tlb_2m));
    out.extend(check_tlb_geometry("l2-tlb", &cfg.l2_tlb));
    out.extend(check_pom_tlb(&cfg.pom_tlb));
    out.extend(check_dram_timings("ddr", &cfg.ddr));
    out.extend(check_dram_timings("die-stacked", &cfg.die_stacked));

    if cfg.epoch_accesses == 0 {
        out.push(Violation::error(
            "CSALT-A010",
            "epoch",
            "zero epoch length (repartitioning would never trigger sanely)",
        ));
    } else if cfg.epoch_accesses < 1024 {
        out.push(Violation::warning(
            "CSALT-A010",
            "epoch",
            format!(
                "epoch of {} accesses is far below the paper's 256 K; \
                 stack-distance profiles will be too noisy to rank way splits",
                cfg.epoch_accesses
            ),
        ));
    }

    if !(cfg.pt_levels == 4 || cfg.pt_levels == 5) {
        out.push(Violation::error(
            "CSALT-A011",
            system,
            format!("pt_levels {} must be 4 (x86-64) or 5 (LA57)", cfg.pt_levels),
        ));
    }

    // Latency monotonicity: each level must cost more than the previous,
    // and a DRAM page-walk step must be slower than an L3 hit — otherwise
    // the premise of caching translation entries is inverted.
    if cfg.l1d.latency >= cfg.l2.latency || cfg.l2.latency >= cfg.l3.latency {
        out.push(Violation::warning(
            "CSALT-A012",
            "latency",
            format!(
                "cache latencies not strictly increasing (L1 {} / L2 {} / L3 {})",
                cfg.l1d.latency, cfg.l2.latency, cfg.l3.latency
            ),
        ));
    }
    if cfg.core_ghz > 0.0 && cfg.ddr.bus_mhz > 0 {
        let dram_access = f64::from(cfg.ddr.t_rcd + cfg.ddr.t_cas)
            * cfg.ddr.core_cycles_per_bus_cycle(cfg.core_ghz);
        if dram_access <= cfg.l3.latency as f64 {
            out.push(Violation::warning(
                "CSALT-A012",
                "latency",
                format!(
                    "DDR access ({dram_access:.0} core cycles) is not slower than an L3 hit \
                     ({}); walks would be cheaper than the caches meant to avoid them",
                    cfg.l3.latency
                ),
            ));
        }
    }
    if cfg.l1_tlb_4k.latency > cfg.l2_tlb.latency || cfg.l1_tlb_2m.latency > cfg.l2_tlb.latency {
        out.push(Violation::warning(
            "CSALT-A013",
            "latency",
            format!(
                "L1 TLB latency ({} / {}) exceeds L2 TLB latency ({})",
                cfg.l1_tlb_4k.latency, cfg.l1_tlb_2m.latency, cfg.l2_tlb.latency
            ),
        ));
    }

    out
}

/// CSALT-A014..A015: per-scheme constraints — partition bounds and
/// large-TLB sizing for the scheme actually being simulated.
pub fn check_scheme(cfg: &SystemConfig, scheme: &TranslationScheme) -> Vec<Violation> {
    let mut out = Vec::new();
    let subject = scheme.label();

    let partitions_caches = matches!(
        scheme,
        TranslationScheme::CsaltD
            | TranslationScheme::CsaltCd
            | TranslationScheme::TsbCsalt
            | TranslationScheme::StaticPartition { .. }
    );
    if partitions_caches {
        // `choose_partition` requires n_min >= 1 per class, so a
        // partitioned cache needs at least two ways.
        for (name, geom) in [("l2", &cfg.l2), ("l3", &cfg.l3)] {
            if geom.ways < 2 {
                out.push(Violation::error(
                    "CSALT-A014",
                    &subject,
                    format!(
                        "{name} has {} way(s); partitioning requires >= 2 so each \
                         entry kind keeps at least one way",
                        geom.ways
                    ),
                ));
            }
        }
    }
    if let TranslationScheme::StaticPartition { data_ways } = scheme {
        // `data_ways` is expressed against the L3; the hierarchy derives
        // the L2's split by proportional scaling, clamped into range, so
        // only the L3 bound is a hard constraint.
        if *data_ways == 0 || *data_ways >= cfg.l3.ways {
            out.push(Violation::error(
                "CSALT-A014",
                &subject,
                format!(
                    "static split reserves {data_ways} data ways of l3's {}; \
                     both kinds need at least one way (1 <= data_ways <= {})",
                    cfg.l3.ways,
                    cfg.l3.ways.saturating_sub(1)
                ),
            ));
        }
    }

    if scheme.uses_pom_tlb() && cfg.pom_tlb.entries() <= u64::from(cfg.l2_tlb.entries) {
        out.push(Violation::warning(
            "CSALT-A015",
            &subject,
            format!(
                "POM-TLB holds {} entries, not larger than the {}-entry L2 TLB; \
                 the 'large TLB' premise does not hold",
                cfg.pom_tlb.entries(),
                cfg.l2_tlb.entries
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skylake() -> SystemConfig {
        SystemConfig::skylake()
    }

    #[test]
    fn skylake_is_clean() {
        let violations = check_system(&skylake());
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn every_scheme_is_clean_on_skylake() {
        let cfg = skylake();
        for scheme in [
            TranslationScheme::Conventional,
            TranslationScheme::PomTlb,
            TranslationScheme::CsaltD,
            TranslationScheme::CsaltCd,
            TranslationScheme::Dip,
            TranslationScheme::Tsb,
            TranslationScheme::TsbCsalt,
            TranslationScheme::Drrip,
            TranslationScheme::StaticPartition { data_ways: 2 },
        ] {
            let violations = check_scheme(&cfg, &scheme);
            assert!(violations.is_empty(), "{scheme}: {violations:?}");
        }
    }

    #[test]
    fn first_error_skips_warnings() {
        let violations = vec![
            Violation::warning("CSALT-A012", "latency", "w"),
            Violation::error("CSALT-A003", "l2", "e"),
        ];
        assert_eq!(first_error(&violations).map(|v| v.code), Some("CSALT-A003"));
        assert!(first_error(&violations[..1]).is_none());
    }

    #[test]
    fn violation_display_includes_code_and_subject() {
        let v = Violation::error("CSALT-A001", "l1d", "zero-sized dimension");
        let text = v.to_string();
        assert!(text.contains("CSALT-A001"));
        assert!(text.contains("l1d"));
    }
}
