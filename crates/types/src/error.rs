//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid machine or experiment configuration.
///
/// Returned by the various `validate` methods; the message names the
/// offending component and constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_message() {
        let e = ConfigError::new("l2: bad ways");
        assert_eq!(e.to_string(), "invalid configuration: l2: bad ways");
        assert_eq!(e.message(), "l2: bad ways");
    }

    #[test]
    fn config_error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
