//! Shared foundation types for the CSALT simulator workspace.
//!
//! This crate defines the vocabulary that every other crate in the
//! reproduction of *CSALT: Context Switch Aware Large TLB* (MICRO-50, 2017)
//! speaks:
//!
//! * strongly-typed addresses ([`VirtAddr`], [`PhysAddr`]) and their
//!   page/cache-line views,
//! * identifiers ([`Asid`], [`CoreId`]) and time ([`Cycle`]),
//! * the data-vs-translation classification at the heart of the paper
//!   ([`EntryKind`]),
//! * the full machine configuration of the paper's Table 2
//!   ([`SystemConfig`] and friends), and
//! * small hit/miss statistics helpers shared by caches and TLBs.
//!
//! # Example
//!
//! ```
//! use csalt_types::{PageSize, SystemConfig, VirtAddr};
//!
//! let cfg = SystemConfig::skylake();
//! assert_eq!(cfg.cores, 8);
//!
//! let va = VirtAddr::new(0x7f32_1234_5678);
//! assert_eq!(va.page(PageSize::Size4K).base().raw(), 0x7f32_1234_5000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod ckpt;
pub mod config;
pub mod error;
pub mod hint;
pub mod ids;
pub mod invariants;
pub mod l0;
pub mod request;
pub mod stats;

pub use addr::{LineAddr, PageSize, PhysAddr, PhysFrame, VirtAddr, VirtPage, LINE_BYTES};
pub use ckpt::{CkptError, CkptReader, CkptWriter};
pub use config::{
    CacheGeometry, DramKind, DramTimings, PomTlbConfig, PscConfig, ReplacementKind, SystemConfig,
    TlbGeometry, TranslationScheme,
};
pub use error::ConfigError;
pub use hint::{pack_tlb_key, unpack_tlb_size, unpack_tlb_vpn, TranslationHint, PACKED_TLB_EMPTY};
pub use ids::{Asid, ContextId, CoreId, Cycle};
pub use invariants::{Severity, Violation};
pub use l0::{L0Memo, L0Stats};
pub use request::{AccessType, EntryKind, MemAccess};
pub use stats::{geomean, HitMissStats};
