//! Identifier newtypes: address-space IDs, cores, contexts and time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulated time, in core clock cycles (4 GHz in the paper's Table 2).
pub type Cycle = u64;

/// An Address Space Identifier.
///
/// Modern TLBs tag entries with an ASID so that a context switch does not
/// require a TLB flush (§1 of the paper); when the swapped-out context
/// returns, surviving entries are still usable. Every VM context in the
/// simulator gets a distinct ASID.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Asid(u16);

impl Asid {
    /// Wraps a raw ASID value.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// The raw ASID value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

/// A core index within the simulated chip (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CoreId(u8);

impl CoreId {
    /// Wraps a raw core index.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        Self(raw)
    }

    /// The raw core index.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Usable as a `Vec` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A schedulable VM context (one guest workload instance on one core).
///
/// The context-switch experiments in the paper run 1, 2 or 4 contexts per
/// core; each is identified by a `ContextId` and owns an [`Asid`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ContextId(u32);

impl ContextId {
    /// Wraps a raw context index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw context index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Usable as a `Vec` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        assert_eq!(Asid::new(7).raw(), 7);
        assert_eq!(CoreId::new(3).index(), 3);
        assert_eq!(ContextId::new(9).index(), 9);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(Asid::new(1) < Asid::new(2));
        assert_eq!(CoreId::new(5).to_string(), "core5");
        assert_eq!(Asid::new(2).to_string(), "asid2");
        assert_eq!(ContextId::new(0).to_string(), "ctx0");
    }
}
