//! L0 hit-way memoization: a one-entry "level zero" cache in front of
//! an associative lookup structure.
//!
//! Real access streams are overwhelmingly page- and line-local, so the
//! most common lookup is a repeat of the previous one. An [`L0Memo`]
//! remembers the last *hit*'s `(packed key → set, way)` plus a small
//! copyable payload (typically the frame that hit); on a repeat access
//! to the same key the owner skips the associative set scan and replays
//! exactly the state mutations the scan's hit path would have performed
//! (replacement stamp, hit counter). The memo therefore never changes
//! *what* happens — only how the hit is found — and results stay
//! bit-identical with the memo on, off, or flapping.
//!
//! The contract that keeps that true is the invalidation discipline,
//! owned by the embedding structure:
//!
//! * any insert/eviction touching the memoized set invalidates,
//! * structural moves (epoch repartition, flush, ASID flush, table
//!   materialization) invalidate,
//! * the hierarchy invalidates every memo on a context switch — the
//!   event the paper identifies as destroying translation locality —
//!   which also covers ASID recycling.
//!
//! This module is integer-only by policy (srclint `float-deny`): memos
//! sit on counter-bearing hot paths.

/// Sentinel meaning "no entry memoized". Shared with the TLB packing
/// convention ([`crate::hint::PACKED_TLB_EMPTY`]): no real packed key —
/// or cache line number — is all-ones.
const L0_EMPTY: u64 = u64::MAX;

/// Hit/invalidation counters of one memo, cheap enough to sum across a
/// whole hierarchy every sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L0Stats {
    /// Lookups served by the memo (set scan skipped).
    pub hits: u64,
    /// Times the memoized entry was dropped by an invalidation rule.
    pub invalidations: u64,
}

impl L0Stats {
    /// Component-wise sum, for aggregating per-component memos.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            invalidations: self.invalidations + other.invalidations,
        }
    }
}

/// A one-entry hit-way memo. `P` is whatever the owner needs back on a
/// repeat hit without re-reading its arrays (a frame, a precomputed
/// line list, or `()` when `(set, way)` alone suffices).
#[derive(Debug, Clone)]
pub struct L0Memo<P: Copy> {
    key: u64,
    set: u64,
    way: u32,
    payload: Option<P>,
    enabled: bool,
    stats: L0Stats,
}

impl<P: Copy> Default for L0Memo<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Copy> L0Memo<P> {
    /// An empty, enabled memo.
    #[must_use]
    pub fn new() -> Self {
        Self {
            key: L0_EMPTY,
            set: 0,
            way: 0,
            payload: None,
            enabled: true,
            stats: L0Stats::default(),
        }
    }

    /// Enables or disables the memo. Disabling drops the entry (not
    /// counted as an invalidation: nothing structural happened) so a
    /// later re-enable can never serve stale state.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.key = L0_EMPTY;
            self.payload = None;
        }
    }

    /// Whether lookups may be served from the memo.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Serves a repeat lookup: `Some((set, way, payload))` when `key`
    /// is the memoized key. The caller must replay the hit path's state
    /// mutations itself — the memo only locates the entry.
    #[inline]
    #[must_use]
    pub fn hit(&mut self, key: u64) -> Option<(u64, u32, P)> {
        if self.key == key {
            if let Some(p) = self.payload {
                self.stats.hits += 1;
                return Some((self.set, self.way, p));
            }
        }
        None
    }

    /// Memoizes the latest hit. No-op while disabled.
    #[inline]
    pub fn remember(&mut self, key: u64, set: u64, way: u32, payload: P) {
        if self.enabled {
            self.key = key;
            self.set = set;
            self.way = way;
            self.payload = Some(payload);
        }
    }

    /// Drops the entry unconditionally (flush, repartition, context
    /// switch…). Counted only when an entry was actually live.
    #[inline]
    pub fn invalidate(&mut self) {
        if self.payload.is_some() {
            self.stats.invalidations += 1;
        }
        self.key = L0_EMPTY;
        self.payload = None;
    }

    /// Drops the entry iff it lives in `set` — the insert/eviction
    /// rule: any mutation of the memoized set may have moved or
    /// replaced the entry (or changed what the scan would find first).
    #[inline]
    pub fn invalidate_set(&mut self, set: u64) {
        if self.payload.is_some() && self.set == set {
            self.invalidate();
        }
    }

    /// Counter readings.
    #[must_use]
    pub fn stats(&self) -> L0Stats {
        self.stats
    }

    /// Zeroes the counters (measured-phase reset). The entry survives:
    /// resetting statistics must not change lookup behaviour.
    pub fn reset_stats(&mut self) {
        self.stats = L0Stats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_and_replays_the_last_hit() {
        let mut m = L0Memo::new();
        assert_eq!(m.hit(7), None);
        m.remember(7, 3, 2, 42u64);
        assert_eq!(m.hit(7), Some((3, 2, 42)));
        assert_eq!(m.hit(8), None);
        assert_eq!(m.stats().hits, 1);
    }

    #[test]
    fn set_invalidation_only_drops_matching_sets() {
        let mut m = L0Memo::new();
        m.remember(7, 3, 0, ());
        m.invalidate_set(4);
        assert_eq!(m.hit(7), Some((3, 0, ())));
        m.invalidate_set(3);
        assert_eq!(m.hit(7), None);
        assert_eq!(m.stats().invalidations, 1);
    }

    #[test]
    fn disabling_drops_the_entry_without_counting() {
        let mut m = L0Memo::new();
        m.remember(7, 3, 0, ());
        m.set_enabled(false);
        assert_eq!(m.hit(7), None);
        assert_eq!(m.stats().invalidations, 0);
        m.remember(9, 1, 0, ());
        assert_eq!(m.hit(9), None, "disabled memo must not remember");
        m.set_enabled(true);
        m.remember(9, 1, 0, ());
        assert_eq!(m.hit(9), Some((1, 0, ())));
    }

    #[test]
    fn stats_reset_keeps_the_entry() {
        let mut m = L0Memo::new();
        m.remember(7, 3, 0, ());
        assert!(m.hit(7).is_some());
        m.reset_stats();
        assert_eq!(m.stats(), L0Stats::default());
        assert!(m.hit(7).is_some(), "reset must not change behaviour");
    }
}
