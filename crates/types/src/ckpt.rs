//! Checkpoint serialization primitives: a versioned, fixed-width,
//! length-validated binary format for `HierarchyCheckpoint` images.
//!
//! The framing mirrors the staged-trace v2 file format: an 8-byte
//! magic, a `u32` version, a length-prefixed engine-fingerprint
//! string, a `u64` payload length, the payload itself, and a trailing
//! FNV-1a checksum over everything before it. Every length is
//! validated against the remaining bytes *before* any allocation, so
//! a torn tail or garbage header is rejected with a [`CkptError`]
//! instead of an OOM or a panic — callers treat any error as "no
//! checkpoint" and fall back to a cold run.
//!
//! The payload is a flat sequence of little-endian integers organized
//! into tagged, length-framed sections (one per component). Floating
//! point values never appear in the format: the few `f64` fields in
//! simulator state are stored as `f64::to_bits` words by the callers,
//! keeping this module integer-only.

use std::fmt;

/// File magic for checkpoint images.
pub const CKPT_MAGIC: [u8; 8] = *b"CSALTCKP";

/// Current checkpoint format version. Bumped whenever any section
/// layout changes; older images are rejected (fall back to cold run).
pub const CKPT_VERSION: u32 = 1;

/// FNV-1a offset basis (matches the sweep cache's key hash).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice; used for the trailing checksum.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a checkpoint image was rejected. Every variant means the same
/// thing to callers — ignore the file and run cold — but the variants
/// are distinguished for tests and telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The first 8 bytes are not [`CKPT_MAGIC`].
    BadMagic,
    /// The version word is not [`CKPT_VERSION`].
    BadVersion(u32),
    /// The embedded engine fingerprint does not match the running
    /// engine — the image was written by different code.
    StaleFingerprint,
    /// The file ends before a declared length is satisfied (torn
    /// write), or a declared length exceeds the bytes present.
    Truncated,
    /// The trailing FNV-1a checksum does not match the content.
    BadChecksum,
    /// Structurally well-formed but internally inconsistent (bad
    /// section tag, unconsumed section bytes, invalid enum tag).
    Corrupt(&'static str),
    /// The restored state does not match the receiving component's
    /// configured geometry (e.g. way count or set count differs).
    Mismatch(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "checkpoint: bad magic"),
            CkptError::BadVersion(v) => write!(f, "checkpoint: unsupported version {v}"),
            CkptError::StaleFingerprint => write!(f, "checkpoint: stale engine fingerprint"),
            CkptError::Truncated => write!(f, "checkpoint: truncated image"),
            CkptError::BadChecksum => write!(f, "checkpoint: checksum mismatch"),
            CkptError::Corrupt(what) => write!(f, "checkpoint: corrupt image ({what})"),
            CkptError::Mismatch(what) => write!(f, "checkpoint: geometry mismatch ({what})"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Builder for a checkpoint image: accumulates the payload, then
/// [`CkptWriter::finish`] wraps it in the header and checksum.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// New writer with an empty payload.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn len64(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a length-prefixed byte slice (`u64` count + raw bytes).
    pub fn bytes(&mut self, v: &[u8]) {
        self.len64(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `u64` slice in sparse form: a `u64`
    /// element count, a presence bitmap (bit i set iff `v[i] != 0`,
    /// `ceil(n / 8)` bytes), then only the nonzero words in order.
    /// Checkpoint arrays are dominated by empty slots (untouched
    /// DRAM-TLB entries, invalid cache lines), so this shrinks images
    /// by more than an order of magnitude while dense arrays pay only
    /// a 1/64 size overhead.
    pub fn slice_u64(&mut self, v: &[u64]) {
        self.iter_u64(v.len(), v.iter().copied());
    }

    /// Streaming form of [`CkptWriter::slice_u64`]: encodes `n` words
    /// from an iterator in one pass (the presence bitmap is reserved
    /// up front and patched in place), so callers can map large arrays
    /// — sentinel-XOR'd keys, extracted frame numbers — without
    /// collecting an intermediate vector.
    ///
    /// # Panics
    ///
    /// Panics if the iterator does not yield exactly `n` items.
    pub fn iter_u64<I: Iterator<Item = u64>>(&mut self, n: usize, values: I) {
        self.len64(n);
        let bm = self.buf.len();
        self.buf.resize(bm + n.div_ceil(8), 0);
        let mut i = 0usize;
        for w in values {
            if w != 0 {
                self.buf[bm + i / 8] |= 1 << (i % 8);
                self.buf.extend_from_slice(&w.to_le_bytes());
            }
            i += 1;
        }
        assert_eq!(i, n, "iter_u64 yielded {i} of {n} items");
    }

    /// Append a length-prefixed `u8` slice in sparse form (same scheme
    /// as [`CkptWriter::slice_u64`]: count, presence bitmap, nonzero
    /// bytes). For the mostly-zero code arrays (page-size codes, cache
    /// line kinds, dirty bits, page-table slot tags) this stores ~1 bit
    /// per empty slot instead of a byte.
    pub fn slice_u8(&mut self, v: &[u8]) {
        self.iter_u8(v.len(), v.iter().copied());
    }

    /// Streaming form of [`CkptWriter::slice_u8`] (see
    /// [`CkptWriter::iter_u64`]).
    ///
    /// # Panics
    ///
    /// Panics if the iterator does not yield exactly `n` items.
    pub fn iter_u8<I: Iterator<Item = u8>>(&mut self, n: usize, values: I) {
        self.len64(n);
        let bm = self.buf.len();
        self.buf.resize(bm + n.div_ceil(8), 0);
        let mut i = 0usize;
        for b in values {
            if b != 0 {
                self.buf[bm + i / 8] |= 1 << (i % 8);
                self.buf.push(b);
            }
            i += 1;
        }
        assert_eq!(i, n, "iter_u8 yielded {i} of {n} items");
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Open a tagged section: writes the tag and a placeholder length,
    /// returning a mark for [`CkptWriter::end_section`].
    pub fn begin_section(&mut self, tag: u32) -> usize {
        self.u32(tag);
        self.u64(0); // placeholder, patched by end_section
        self.buf.len()
    }

    /// Close a section opened at `mark`, patching its byte length.
    pub fn end_section(&mut self, mark: usize) {
        let len = (self.buf.len() - mark) as u64;
        self.buf[mark - 8..mark].copy_from_slice(&len.to_le_bytes());
    }

    /// Assemble the final image: header (magic, version, fingerprint,
    /// payload length), payload, and trailing checksum.
    pub fn finish(self, fingerprint: &str) -> Vec<u8> {
        let fp = fingerprint.as_bytes();
        let mut out = Vec::with_capacity(8 + 4 + 4 + fp.len() + 8 + self.buf.len() + 8);
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&(fp.len() as u32).to_le_bytes());
        out.extend_from_slice(fp);
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let sum = fnv1a_bytes(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Cursor over a validated checkpoint image. [`CkptReader::open`]
/// checks magic, version, fingerprint, payload length, and checksum
/// before handing out a reader positioned at the payload start.
#[derive(Debug)]
pub struct CkptReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// Validate the image header and checksum against the running
    /// engine's fingerprint; on success the reader covers the payload.
    ///
    /// Validation order: magic → version → fingerprint → declared
    /// payload length vs. bytes present → trailing checksum. Every
    /// length is checked against the remaining bytes before use.
    pub fn open(data: &'a [u8], expected_fingerprint: &str) -> Result<Self, CkptError> {
        // Fixed prefix: magic(8) + version(4) + fp_len(4).
        if data.len() < 16 {
            return Err(if data.len() >= 8 && data[..8] != CKPT_MAGIC {
                CkptError::BadMagic
            } else {
                CkptError::Truncated
            });
        }
        if data[..8] != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != CKPT_VERSION {
            return Err(CkptError::BadVersion(version));
        }
        let fp_len = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        // fp + payload_len word must fit before any slicing.
        if data.len() < 16 + fp_len + 8 {
            return Err(CkptError::Truncated);
        }
        let fp = &data[16..16 + fp_len];
        if fp != expected_fingerprint.as_bytes() {
            return Err(CkptError::StaleFingerprint);
        }
        let at = 16 + fp_len;
        let payload_len =
            u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes")) as usize;
        let payload_start = at + 8;
        // payload + trailing checksum(8) must be exactly the rest.
        let want = payload_start
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or(CkptError::Truncated)?;
        if data.len() < want {
            return Err(CkptError::Truncated);
        }
        if data.len() != want {
            return Err(CkptError::Corrupt("trailing garbage after checksum"));
        }
        let body_end = payload_start + payload_len;
        let declared = u64::from_le_bytes(data[body_end..body_end + 8].try_into().expect("8"));
        if fnv1a_bytes(&data[..body_end]) != declared {
            return Err(CkptError::BadChecksum);
        }
        Ok(Self {
            payload: &data[payload_start..body_end],
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        if end > self.payload.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.payload[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a `u64` and convert to `usize`.
    pub fn len64(&mut self) -> Result<usize, CkptError> {
        usize::try_from(self.u64()?).map_err(|_| CkptError::Truncated)
    }

    /// Read a bool (rejecting anything but 0/1).
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Corrupt("bool byte not 0/1")),
        }
    }

    /// Read a length-prefixed byte slice. The count is validated
    /// against the remaining bytes before any allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.len64()?;
        if n > self.remaining() {
            return Err(CkptError::Truncated);
        }
        self.take(n)
    }

    /// Read a sparse length-prefixed `u64` vector (see
    /// [`CkptWriter::slice_u64`] for the encoding). The bitmap length
    /// — `ceil(count / 8)` — is validated against the remaining bytes
    /// *before* the result vector is allocated, bounding the
    /// allocation to 64x the bytes actually present; the nonzero-word
    /// count implied by the bitmap is then validated the same way.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.len64()?;
        let bitmap_len = n.div_ceil(8);
        if bitmap_len > self.remaining() {
            return Err(CkptError::Truncated);
        }
        let bitmap = self.take(bitmap_len)?;
        let set: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        let byte_len = set.checked_mul(8).ok_or(CkptError::Truncated)?;
        if byte_len > self.remaining() {
            return Err(CkptError::Truncated);
        }
        // Bits beyond the declared element count must be clear, or two
        // different images would decode to the same vector.
        if n % 8 != 0 && bitmap[n / 8] >> (n % 8) != 0 {
            return Err(CkptError::Corrupt("bitmap bits past element count"));
        }
        let raw = self.take(byte_len)?;
        let mut words = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8")));
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                let w = words.next().ok_or(CkptError::Truncated)?;
                if w == 0 {
                    return Err(CkptError::Corrupt("zero word marked present"));
                }
                *slot = w;
            }
        }
        Ok(out)
    }

    /// Read a sparse length-prefixed `u8` vector (see
    /// [`CkptWriter::slice_u8`]), with the same validate-before-allocate
    /// bounds as [`CkptReader::vec_u64`].
    pub fn vec_u8(&mut self) -> Result<Vec<u8>, CkptError> {
        let n = self.len64()?;
        let bitmap_len = n.div_ceil(8);
        if bitmap_len > self.remaining() {
            return Err(CkptError::Truncated);
        }
        let bitmap = self.take(bitmap_len)?;
        let set: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        if set > self.remaining() {
            return Err(CkptError::Truncated);
        }
        if n % 8 != 0 && bitmap[n / 8] >> (n % 8) != 0 {
            return Err(CkptError::Corrupt("bitmap bits past element count"));
        }
        let raw = self.take(set)?;
        let mut bytes = raw.iter().copied();
        let mut out = vec![0u8; n];
        for (i, slot) in out.iter_mut().enumerate() {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                let b = bytes.next().ok_or(CkptError::Truncated)?;
                if b == 0 {
                    return Err(CkptError::Corrupt("zero byte marked present"));
                }
                *slot = b;
            }
        }
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CkptError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CkptError::Corrupt("non-UTF-8 string"))
    }

    /// Open a section: checks the tag, validates the declared byte
    /// length against the remainder, and returns the payload offset
    /// where the section must end (pass to [`CkptReader::end_section`]).
    pub fn begin_section(&mut self, tag: u32) -> Result<usize, CkptError> {
        let got = self.u32()?;
        if got != tag {
            return Err(CkptError::Corrupt("unexpected section tag"));
        }
        let len = self.len64()?;
        if len > self.remaining() {
            return Err(CkptError::Truncated);
        }
        Ok(self.pos + len)
    }

    /// Close a section: the cursor must sit exactly at the recorded
    /// end offset, i.e. the section body was fully consumed.
    pub fn end_section(&mut self, end: usize) -> Result<(), CkptError> {
        if self.pos != end {
            return Err(CkptError::Corrupt("section length mismatch"));
        }
        Ok(())
    }

    /// Finish reading: the whole payload must have been consumed.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.pos != self.payload.len() {
            return Err(CkptError::Corrupt("unconsumed payload bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Vec<u8> {
        let mut w = CkptWriter::new();
        let m = w.begin_section(0x11);
        w.u64(42);
        w.slice_u64(&[1, 2, 3]);
        w.slice_u8(&[0, 5, 0, 0, 7]);
        w.bool(true);
        w.str("hello");
        w.end_section(m);
        w.finish("v0-test")
    }

    #[test]
    fn round_trip() {
        let img = image();
        let mut r = CkptReader::open(&img, "v0-test").expect("opens");
        let end = r.begin_section(0x11).expect("section");
        assert_eq!(r.u64().expect("u64"), 42);
        assert_eq!(r.vec_u64().expect("vec_u64"), vec![1, 2, 3]);
        assert_eq!(r.vec_u8().expect("vec_u8"), vec![0, 5, 0, 0, 7]);
        assert!(r.bool().expect("bool"));
        assert_eq!(r.str().expect("str"), "hello");
        r.end_section(end).expect("consumed");
        r.finish().expect("done");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut img = image();
        img[0] ^= 0xff;
        assert_eq!(
            CkptReader::open(&img, "v0-test").err(),
            Some(CkptError::BadMagic)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut img = image();
        img[8] = 0xee;
        assert!(matches!(
            CkptReader::open(&img, "v0-test"),
            Err(CkptError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_stale_fingerprint() {
        let img = image();
        assert_eq!(
            CkptReader::open(&img, "v1-other").err(),
            Some(CkptError::StaleFingerprint)
        );
    }

    #[test]
    fn rejects_torn_tail_at_every_length() {
        let img = image();
        for cut in 0..img.len() {
            let torn = &img[..cut];
            assert!(
                CkptReader::open(torn, "v0-test").is_err(),
                "torn image of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn rejects_flipped_payload_byte() {
        let mut img = image();
        let mid = img.len() / 2;
        img[mid] ^= 0x5a;
        assert!(CkptReader::open(&img, "v0-test").is_err());
    }

    #[test]
    fn rejects_oversized_vec_count() {
        // Hand-build a payload whose vec count wildly exceeds the
        // remaining bytes; the reader must reject before allocating.
        let mut w = CkptWriter::new();
        w.u64(u64::MAX / 2); // bogus element count
        let img = w.finish("v0-test");
        let mut r = CkptReader::open(&img, "v0-test").expect("frame is valid");
        assert!(r.vec_u64().is_err());
    }

    #[test]
    fn sparse_slices_round_trip_at_the_extremes() {
        let cases_u64: &[&[u64]] = &[&[], &[0; 100], &[u64::MAX; 9], &[0, 1, 0, u64::MAX, 0]];
        let cases_u8: &[&[u8]] = &[&[], &[0; 100], &[0xff; 9], &[0, 1, 0, 0xff, 0]];
        for (words, bytes) in cases_u64.iter().zip(cases_u8) {
            let mut w = CkptWriter::new();
            w.slice_u64(words);
            w.slice_u8(bytes);
            let img = w.finish("v0-test");
            let mut r = CkptReader::open(&img, "v0-test").expect("opens");
            assert_eq!(r.vec_u64().expect("vec_u64"), *words);
            assert_eq!(r.vec_u8().expect("vec_u8"), *bytes);
            r.finish().expect("done");
        }
        // All-zero runs shrink to ~1 bit per element.
        let mut w = CkptWriter::new();
        w.slice_u64(&[0; 1024]);
        let img = w.finish("v0-test");
        assert!(img.len() < 8 + 1024 / 8 + 64, "zero run must stay sparse");
    }

    #[test]
    fn rejects_unconsumed_section() {
        let mut w = CkptWriter::new();
        let m = w.begin_section(7);
        w.u64(1);
        w.u64(2);
        w.end_section(m);
        let img = w.finish("v0-test");
        let mut r = CkptReader::open(&img, "v0-test").expect("opens");
        let end = r.begin_section(7).expect("section");
        let _ = r.u64().expect("u64");
        assert_eq!(
            r.end_section(end),
            Err(CkptError::Corrupt("section length mismatch"))
        );
    }

    #[test]
    fn rejects_garbage() {
        let garbage = vec![0xabu8; 64];
        assert!(CkptReader::open(&garbage, "v0-test").is_err());
        assert!(CkptReader::open(&[], "v0-test").is_err());
    }
}
