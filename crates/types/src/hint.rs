//! Pure translation precomputation shared between the TLB crate and the
//! pipeline's producer stage.
//!
//! Every TLB lookup begins by packing `(virtual page, page size, ASID)`
//! into one comparable `u64` (see `csalt-tlb`'s struct-of-arrays way
//! scan). That packing is a pure function of the access — it depends on
//! no hierarchy state — so the pipelined execution mode can compute it
//! on a producer thread while the commit stage is busy with an earlier
//! access. This module holds the one canonical packing and the
//! [`TranslationHint`] bundle of precomputed keys, so the inline and
//! pipelined paths go through literally the same code and stay
//! bit-identical.

use crate::addr::{PageSize, VirtAddr};
use crate::ids::Asid;

/// Sentinel for an empty TLB way. No real packed key reaches all-ones:
/// the VPN would have to exceed the 48-bit address space.
pub const PACKED_TLB_EMPTY: u64 = u64::MAX;

/// Packs a TLB lookup key into one comparable word — VPN above, then a
/// 2-bit page-size code, then the 16-bit ASID.
///
/// The layout is load-bearing for `csalt-tlb`: way scans compare one
/// `u64` per way, and ASID-selective flushes mask the low 16 bits.
#[inline]
#[must_use]
pub fn pack_tlb_key(vpn: u64, size: PageSize, asid: Asid) -> u64 {
    let size_code = match size {
        PageSize::Size4K => 0u64,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    };
    debug_assert!(vpn < 1u64 << 46, "vpn overflows packed TLB key");
    (vpn << 18) | (size_code << 16) | u64::from(asid.raw())
}

/// Page size encoded in a packed key (the inverse of the 2-bit code in
/// [`pack_tlb_key`]).
#[inline]
#[must_use]
pub fn unpack_tlb_size(packed: u64) -> PageSize {
    match (packed >> 16) & 0b11 {
        0 => PageSize::Size4K,
        1 => PageSize::Size2M,
        _ => PageSize::Size1G,
    }
}

/// VPN encoded in a packed key.
#[inline]
#[must_use]
pub fn unpack_tlb_vpn(packed: u64) -> u64 {
    packed >> 18
}

/// The state-independent part of one address translation, computed once
/// per access.
///
/// The hierarchy probes the 4 KiB L1/L2 TLB entries and (when huge
/// pages are enabled) the 2 MiB entries for the same `(address, ASID)`;
/// both packed keys are pure functions of the access, so the pipelined
/// mode stages them on the producer thread and the inline mode computes
/// them at the top of `MemoryHierarchy::access`. Either way the lookup
/// code consumes the same two words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationHint {
    /// Packed `(4 KiB page of the address, ASID)` key.
    pub packed_4k: u64,
    /// Packed `(2 MiB page of the address, ASID)` key.
    pub packed_2m: u64,
}

impl TranslationHint {
    /// Computes the hint for one access. Branch-free: the 2 MiB key is
    /// always derived (it is two shifts and an or), whether or not the
    /// run's huge-page policy will probe it.
    #[inline]
    #[must_use]
    pub fn compute(va: VirtAddr, asid: Asid) -> Self {
        Self {
            packed_4k: pack_tlb_key(va.page(PageSize::Size4K).vpn(), PageSize::Size4K, asid),
            packed_2m: pack_tlb_key(va.page(PageSize::Size2M).vpn(), PageSize::Size2M, asid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips_vpn_and_size() {
        for (size, vpn) in [
            (PageSize::Size4K, 0x1234_5678u64),
            (PageSize::Size2M, 0x91u64),
            (PageSize::Size1G, 3u64),
        ] {
            let p = pack_tlb_key(vpn, size, Asid::new(7));
            assert_eq!(unpack_tlb_vpn(p), vpn);
            assert_eq!(unpack_tlb_size(p), size);
            assert_eq!(p & 0xffff, 7);
            assert_ne!(p, PACKED_TLB_EMPTY);
        }
    }

    #[test]
    fn hint_matches_manual_packing() {
        let va = VirtAddr::new(0x7f12_3456_789a);
        let asid = Asid::new(3);
        let h = TranslationHint::compute(va, asid);
        assert_eq!(
            h.packed_4k,
            pack_tlb_key(va.page(PageSize::Size4K).vpn(), PageSize::Size4K, asid)
        );
        assert_eq!(
            h.packed_2m,
            pack_tlb_key(va.page(PageSize::Size2M).vpn(), PageSize::Size2M, asid)
        );
        assert_ne!(h.packed_4k, h.packed_2m);
    }

    #[test]
    fn distinct_asids_never_collide() {
        let va = VirtAddr::new(0x1000);
        let a = TranslationHint::compute(va, Asid::new(1));
        let b = TranslationHint::compute(va, Asid::new(2));
        assert_ne!(a.packed_4k, b.packed_4k);
    }
}
