//! Small statistics helpers shared by caches, TLBs and walkers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A hit/miss counter pair with derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HitMissStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl HitMissStats {
    /// A zeroed counter pair.
    #[inline]
    pub const fn new() -> Self {
        Self { hits: 0, misses: 0 }
    }

    /// Records one hit.
    #[inline]
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss.
    #[inline]
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Records a hit if `hit`, otherwise a miss.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.record_hit();
        } else {
            self.record_miss();
        }
    }

    /// Total accesses.
    #[inline]
    pub const fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`, or `None` when there were no accesses.
    ///
    /// The old `f64` version returned `0.0` for an untouched structure,
    /// which rendered as a misleading "0% hit" in reports; distinguishing
    /// "never accessed" is the caller's job now.
    #[inline]
    pub fn hit_rate(&self) -> Option<f64> {
        if self.accesses() == 0 {
            None
        } else {
            Some(self.hits as f64 / self.accesses() as f64)
        }
    }

    /// Miss rate in `[0, 1]`, or `None` when there were no accesses.
    #[inline]
    pub fn miss_rate(&self) -> Option<f64> {
        if self.accesses() == 0 {
            None
        } else {
            Some(self.misses as f64 / self.accesses() as f64)
        }
    }

    /// Misses per kilo-instruction given a retired-instruction count.
    #[inline]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Resets both counters to zero.
    #[inline]
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl Add for HitMissStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

impl AddAssign for HitMissStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for HitMissStats {
    type Output = Self;

    /// Counter delta between two snapshots of the same structure.
    ///
    /// Saturating: counters are monotonic, so a negative delta can only
    /// mean the operands were swapped or came from different resets —
    /// clamping to zero keeps telemetry total-conservation checks sane
    /// instead of panicking mid-run.
    fn sub(self, rhs: Self) -> Self {
        Self {
            hits: self.hits.saturating_sub(rhs.hits),
            misses: self.misses.saturating_sub(rhs.misses),
        }
    }
}

impl fmt::Display for HitMissStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hit_rate() {
            Some(rate) => write!(
                f,
                "{} hits / {} misses ({:.2}% hit)",
                self.hits,
                self.misses,
                rate * 100.0
            ),
            None => write!(f, "0 hits / 0 misses (no accesses)"),
        }
    }
}

/// Geometric mean of a sequence of positive values.
///
/// The paper reports geomean IPC improvements across workloads; zero or
/// negative inputs are skipped (they would otherwise poison the product).
/// Returns `None` when no usable value remains.
pub fn geomean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / f64::from(n)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_mpki() {
        let mut s = HitMissStats::new();
        for _ in 0..3 {
            s.record_hit();
        }
        s.record_miss();
        assert_eq!(s.accesses(), 4);
        let hr = s.hit_rate().expect("accesses recorded");
        let mr = s.miss_rate().expect("accesses recorded");
        assert!((hr - 0.75).abs() < 1e-12);
        assert!((mr - 0.25).abs() < 1e-12);
        assert!((s.mpki(2000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_no_rates() {
        let s = HitMissStats::new();
        assert_eq!(s.hit_rate(), None);
        assert_eq!(s.miss_rate(), None);
        assert_eq!(s.mpki(0), 0.0);
        assert!(s.to_string().contains("no accesses"));
    }

    #[test]
    fn sub_computes_saturating_deltas() {
        let earlier = HitMissStats { hits: 2, misses: 5 };
        let later = HitMissStats { hits: 7, misses: 5 };
        let delta = later - earlier;
        assert_eq!(delta, HitMissStats { hits: 5, misses: 0 });
        // Swapped operands clamp instead of wrapping.
        assert_eq!(earlier - later, HitMissStats { hits: 0, misses: 0 });
    }

    #[test]
    fn add_combines_counters() {
        let a = HitMissStats { hits: 1, misses: 2 };
        let b = HitMissStats { hits: 3, misses: 4 };
        let c = a + b;
        assert_eq!(c.hits, 4);
        assert_eq!(c.misses, 6);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn record_dispatches() {
        let mut s = HitMissStats::new();
        s.record(true);
        s.record(false);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        s.reset();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn geomean_of_known_values() {
        let g = geomean([1.0, 4.0]).expect("nonempty");
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_none());
        assert!(geomean([0.0, -1.0]).is_none());
        // Zeros are skipped, not flattened to zero.
        let g2 = geomean([0.0, 2.0]).expect("one positive");
        assert!((g2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!HitMissStats::new().to_string().is_empty());
    }
}
