//! The trace-generator interface, benchmark registry and the paper's
//! workload pairings (Table 3 and the Figure 7 x-axis).

use crate::benches::{Canneal, ConnectedComponent, Graph500, Gups, PageRank, StreamCluster};
use crate::trace_file::TraceFile;
use csalt_types::MemAccess;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An infinite, deterministic stream of memory accesses with the
/// page-locality profile of one benchmark.
///
/// Generators are seeded; the same seed yields the same trace, which is
/// what makes every experiment in the harness reproducible.
pub trait TraceGenerator: Send {
    /// Produces the next memory access of the trace.
    fn next_access(&mut self) -> MemAccess;

    /// The benchmark's short name (Figure 1/7 labels).
    fn name(&self) -> &'static str;

    /// Total bytes of the benchmark's data footprint.
    fn footprint_bytes(&self) -> u64;
}

/// A virtual-address region used by a benchmark, addressed by *logical*
/// byte offsets.
///
/// A region may be *spread*: logical pages are placed `spread` pages
/// apart in the virtual address space. This reproduces, at simulation
/// scale, a property of the paper's multi-GB footprints that dense
/// scaled-down regions would hide: when a workload touches hundreds of
/// thousands of pages, consecutive *touched* pages do not share leaf
/// page-table lines (one 64-byte PTE line covers 8 contiguous pages),
/// so the walker's working set grows with the page count instead of
/// being amortized 8:1. Scattered regions use `spread = 9`: large
/// enough that touched pages land on distinct PTE lines, and odd so
/// that touched VPNs cover every set-index residue of the TLBs and
/// caches (a power-of-two stride would alias them into a fraction of
/// the sets). Streamed regions stay dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    size: u64,
    spread: u64,
}

const PAGE: u64 = 4096;

impl Region {
    /// Creates a dense region at `base` spanning `size` logical bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(base: u64, size: u64) -> Self {
        Self::with_spread(base, size, 1)
    }

    /// Creates a region whose logical pages sit `spread` pages apart.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `spread` is zero.
    pub fn with_spread(base: u64, size: u64, spread: u64) -> Self {
        assert!(size > 0, "empty region");
        assert!(spread > 0, "zero spread");
        Self { base, size, spread }
    }

    /// Logical region size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The virtual address `offset` logical bytes into the region
    /// (wraps).
    #[inline]
    pub fn at(&self, offset: u64) -> csalt_types::VirtAddr {
        let offset = offset % self.size;
        let page = offset / PAGE;
        let within = offset % PAGE;
        csalt_types::VirtAddr::new(self.base + page * self.spread * PAGE + within)
    }
}

/// The six benchmarks of the paper's evaluation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchKind {
    /// PARSEC canneal: simulated-annealing netlist swaps — large
    /// footprint, scattered pairs of random touches.
    Canneal,
    /// GraphChi connected component: phased label propagation — the
    /// active-vertex list changes per iteration, producing the phase
    /// behaviour of Figure 9.
    ConnectedComponent,
    /// graph500 BFS: power-law vertex visits with adjacency bursts.
    Graph500,
    /// HPCC GUPS/RandomAccess: uniform random read-modify-writes over a
    /// giant table — the TLB worst case.
    Gups,
    /// PageRank: sequential edge streaming plus power-law rank updates.
    PageRank,
    /// PARSEC streamcluster: point streaming against a small hot centre
    /// set — the TLB-friendly end of the spectrum (Table 1).
    StreamCluster,
}

impl BenchKind {
    /// All benchmarks, in the paper's alphabetical order.
    pub const ALL: [BenchKind; 6] = [
        BenchKind::Canneal,
        BenchKind::ConnectedComponent,
        BenchKind::Graph500,
        BenchKind::Gups,
        BenchKind::PageRank,
        BenchKind::StreamCluster,
    ];

    /// The benchmark's short name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchKind::Canneal => "canneal",
            BenchKind::ConnectedComponent => "ccomp",
            BenchKind::Graph500 => "graph500",
            BenchKind::Gups => "gups",
            BenchKind::PageRank => "pagerank",
            BenchKind::StreamCluster => "streamcluster",
        }
    }

    /// Instantiates the generator behind a trait object. Convenient for
    /// heterogeneous collections; the simulator's per-access loop uses
    /// [`BenchKind::build_generator`] instead to avoid the virtual call.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn build(&self, seed: u64, scale: f64) -> Box<dyn TraceGenerator> {
        Box::new(self.build_generator(seed, scale))
    }

    /// Instantiates the generator as the monomorphized [`AnyGenerator`]
    /// dispatcher.
    ///
    /// * `seed` — RNG seed; distinct VM instances of the same benchmark
    ///   use distinct seeds.
    /// * `scale` — footprint multiplier (1.0 = the defaults below, which
    ///   are already scaled to simulation length; experiments shrink or
    ///   grow them together with the context-switch quantum).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn build_generator(&self, seed: u64, scale: f64) -> AnyGenerator {
        assert!(scale > 0.0, "scale must be positive");
        match self {
            BenchKind::Canneal => AnyGenerator::Canneal(Canneal::new(seed, scale)),
            BenchKind::ConnectedComponent => {
                AnyGenerator::ConnectedComponent(ConnectedComponent::new(seed, scale))
            }
            BenchKind::Graph500 => AnyGenerator::Graph500(Graph500::new(seed, scale)),
            BenchKind::Gups => AnyGenerator::Gups(Gups::new(seed, scale)),
            BenchKind::PageRank => AnyGenerator::PageRank(PageRank::new(seed, scale)),
            BenchKind::StreamCluster => {
                AnyGenerator::StreamCluster(StreamCluster::new(seed, scale))
            }
        }
    }
}

/// Enum dispatcher over the six benchmark generators.
///
/// The simulator calls `next_access` once per simulated access; behind
/// `Box<dyn TraceGenerator>` that is an indirect call the compiler can
/// neither inline nor hoist. The enum's match dispatches to the
/// monomorphized generator bodies instead (the same pattern the sim
/// engine uses for its phase hooks), at the cost of each value being as
/// large as the largest variant — irrelevant for a handful of
/// per-(VM, core) generators.
#[derive(Debug)]
pub enum AnyGenerator {
    /// PARSEC canneal.
    Canneal(Canneal),
    /// GraphChi connected component.
    ConnectedComponent(ConnectedComponent),
    /// graph500 BFS.
    Graph500(Graph500),
    /// HPCC GUPS/RandomAccess.
    Gups(Gups),
    /// PageRank.
    PageRank(PageRank),
    /// PARSEC streamcluster.
    StreamCluster(StreamCluster),
    /// A recorded trace replayed from a file (Pin-style replay).
    Trace(TraceFile),
}

impl AnyGenerator {
    /// Whether this generator replays a recorded trace rather than
    /// synthesizing one. Replay streams are read from memory with no
    /// sampling work to overlap, so the pipelined execution mode falls
    /// back to inline for workloads containing one (see
    /// `csalt-sim::run_with_generators`).
    #[must_use]
    pub fn is_replay(&self) -> bool {
        matches!(self, AnyGenerator::Trace(_))
    }

    /// The trace being replayed, if this generator is a replay. Lets
    /// the engine restage packed keys for the run's ASIDs and pop
    /// prepacked records without repacking.
    pub fn as_trace_mut(&mut self) -> Option<&mut TraceFile> {
        match self {
            AnyGenerator::Trace(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this generator replays a trace whose records carry
    /// packed TLB keys for `asid` — the zero-repack staging path.
    #[must_use]
    pub fn is_staged_replay(&self, asid: csalt_types::Asid) -> bool {
        matches!(self, AnyGenerator::Trace(t) if t.is_staged_for(asid))
    }
}

impl TraceGenerator for AnyGenerator {
    #[inline]
    fn next_access(&mut self) -> MemAccess {
        match self {
            AnyGenerator::Canneal(g) => g.next_access(),
            AnyGenerator::ConnectedComponent(g) => g.next_access(),
            AnyGenerator::Graph500(g) => g.next_access(),
            AnyGenerator::Gups(g) => g.next_access(),
            AnyGenerator::PageRank(g) => g.next_access(),
            AnyGenerator::StreamCluster(g) => g.next_access(),
            AnyGenerator::Trace(g) => g.next_access(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyGenerator::Canneal(g) => g.name(),
            AnyGenerator::ConnectedComponent(g) => g.name(),
            AnyGenerator::Graph500(g) => g.name(),
            AnyGenerator::Gups(g) => g.name(),
            AnyGenerator::PageRank(g) => g.name(),
            AnyGenerator::StreamCluster(g) => g.name(),
            AnyGenerator::Trace(g) => g.name(),
        }
    }

    fn footprint_bytes(&self) -> u64 {
        match self {
            AnyGenerator::Canneal(g) => g.footprint_bytes(),
            AnyGenerator::ConnectedComponent(g) => g.footprint_bytes(),
            AnyGenerator::Graph500(g) => g.footprint_bytes(),
            AnyGenerator::Gups(g) => g.footprint_bytes(),
            AnyGenerator::PageRank(g) => g.footprint_bytes(),
            AnyGenerator::StreamCluster(g) => g.footprint_bytes(),
            AnyGenerator::Trace(g) => g.footprint_bytes(),
        }
    }
}

impl fmt::Display for BenchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One evaluated workload: the pair of multi-threaded benchmark
/// instances that context-switch on the machine (two VM contexts per
/// core by default; homogeneous pairs are two instances of the same
/// program, heterogeneous pairs follow Table 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The label used on the paper's x-axes.
    pub name: String,
    /// The two VM contexts' benchmarks.
    pub contexts: [BenchKind; 2],
}

impl WorkloadSpec {
    /// Homogeneous pair: two instances of `bench`.
    pub fn homogeneous(name: impl Into<String>, bench: BenchKind) -> Self {
        Self {
            contexts: [bench, bench],
            name: name.into(),
        }
    }

    /// Heterogeneous pair.
    pub fn pair(name: impl Into<String>, a: BenchKind, b: BenchKind) -> Self {
        Self {
            contexts: [a, b],
            name: name.into(),
        }
    }

    /// The benchmark scheduled as the `i`-th context on a core (cycles
    /// through the pair for > 2 contexts, per the Figure 14 sweep).
    pub fn context_bench(&self, i: u32) -> BenchKind {
        self.contexts[(i % 2) as usize]
    }
}

/// The ten workloads on the x-axis of Figures 1, 7, 8, 10–16.
pub fn paper_workloads() -> Vec<WorkloadSpec> {
    use BenchKind::*;
    vec![
        WorkloadSpec::homogeneous("canneal", Canneal),
        WorkloadSpec::pair("can_ccomp", Canneal, ConnectedComponent),
        WorkloadSpec::pair("can_stream", Canneal, StreamCluster),
        WorkloadSpec::homogeneous("ccomp", ConnectedComponent),
        WorkloadSpec::homogeneous("graph500", Graph500),
        WorkloadSpec::pair("graph500_gups", Graph500, Gups),
        WorkloadSpec::homogeneous("gups", Gups),
        WorkloadSpec::homogeneous("pagerank", PageRank),
        WorkloadSpec::pair("page_stream", PageRank, StreamCluster),
        WorkloadSpec::homogeneous("streamcluster", StreamCluster),
    ]
}

/// Table 3's heterogeneous compositions.
pub fn table3_pairs() -> Vec<WorkloadSpec> {
    use BenchKind::*;
    vec![
        WorkloadSpec::pair("can_ccomp", Canneal, ConnectedComponent),
        WorkloadSpec::pair("can_stream", Canneal, StreamCluster),
        WorkloadSpec::pair("graph500_gups", Graph500, Gups),
        WorkloadSpec::pair("page_stream", PageRank, StreamCluster),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_list_matches_figure7() {
        let w = paper_workloads();
        assert_eq!(w.len(), 10);
        let names: Vec<_> = w.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "canneal",
                "can_ccomp",
                "can_stream",
                "ccomp",
                "graph500",
                "graph500_gups",
                "gups",
                "pagerank",
                "page_stream",
                "streamcluster"
            ]
        );
    }

    #[test]
    fn table3_pairs_are_heterogeneous() {
        for spec in table3_pairs() {
            assert_ne!(spec.contexts[0], spec.contexts[1], "{}", spec.name);
        }
    }

    #[test]
    fn context_bench_cycles_through_pair() {
        let spec = WorkloadSpec::pair("x", BenchKind::Gups, BenchKind::Canneal);
        assert_eq!(spec.context_bench(0), BenchKind::Gups);
        assert_eq!(spec.context_bench(1), BenchKind::Canneal);
        assert_eq!(spec.context_bench(2), BenchKind::Gups);
        assert_eq!(spec.context_bench(3), BenchKind::Canneal);
    }

    #[test]
    fn every_bench_builds_and_produces_accesses() {
        for kind in BenchKind::ALL {
            let mut g = kind.build(1, 0.1);
            assert_eq!(g.name(), kind.name());
            assert!(g.footprint_bytes() > 0);
            for _ in 0..1000 {
                let a = g.next_access();
                assert!(a.gap < 1000, "absurd gap in {kind}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in BenchKind::ALL {
            let mut a = kind.build(7, 0.1);
            let mut b = kind.build(7, 0.1);
            for _ in 0..500 {
                assert_eq!(a.next_access(), b.next_access(), "{kind}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = BenchKind::Gups.build(1, 0.1);
        let mut b = BenchKind::Gups.build(2, 0.1);
        let same = (0..100)
            .filter(|_| a.next_access().vaddr == b.next_access().vaddr)
            .count();
        assert!(same < 10, "seeds should decorrelate traces");
    }

    #[test]
    fn region_wraps() {
        let r = Region::new(0x1000, 0x100);
        assert_eq!(r.at(0).raw(), 0x1000);
        assert_eq!(r.at(0x100).raw(), 0x1000);
        assert_eq!(r.at(0x1ff).raw(), 0x10ff);
        assert_eq!(r.size(), 0x100);
    }

    #[test]
    fn spread_region_separates_pages() {
        let r = Region::with_spread(0, 0x4000, 8); // 4 logical pages
        assert_eq!(r.at(0).raw(), 0);
        assert_eq!(r.at(0xfff).raw(), 0xfff);
        // Logical page 1 starts 8 pages after logical page 0.
        assert_eq!(r.at(0x1000).raw(), 8 * 0x1000);
        assert_eq!(r.at(0x2000).raw(), 16 * 0x1000);
        // Wrap-around still respects the logical size.
        assert_eq!(r.at(0x4000).raw(), 0);
    }

    #[test]
    fn scale_shrinks_footprint() {
        let big = BenchKind::Gups.build(1, 1.0).footprint_bytes();
        let small = BenchKind::Gups.build(1, 0.25).footprint_bytes();
        assert!(small < big);
    }
}
