//! Trace recording and replay.
//!
//! The paper drives its simulator from Pin traces; this module gives the
//! reproduction the same capability: any [`TraceGenerator`]'s stream can
//! be recorded to a compact binary file and replayed later, and traces
//! converted from real instrumentation tools (Pin, DynamoRIO, QEMU
//! plugins) can be fed to the simulator by writing this format.
//!
//! # Format
//!
//! Little-endian binary: a 16-byte header (`magic "CSLT"`, `version:
//! u32`, `record count: u64`) followed by 13-byte records of
//! `(vaddr: u64, gap: u32, is_write: u8)`.
//!
//! # Example
//!
//! ```no_run
//! use csalt_workloads::{BenchKind, TraceFile, TraceGenerator};
//!
//! # fn main() -> std::io::Result<()> {
//! let mut gups = BenchKind::Gups.build(1, 0.1);
//! TraceFile::record("gups.trace", gups.as_mut(), 100_000)?;
//!
//! let mut replay = TraceFile::open("gups.trace")?;
//! let first = replay.next_access();
//! # let _ = first;
//! # Ok(())
//! # }
//! ```

use crate::gen::TraceGenerator;
use csalt_types::{AccessType, MemAccess, VirtAddr};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CSLT";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 13;

/// A recorded trace replayed as a [`TraceGenerator`].
///
/// Replay loops: when the recorded stream is exhausted it restarts from
/// the beginning, so a finite file can drive an arbitrarily long
/// simulation (matching how the paper replays finite Pin traces).
#[derive(Debug, Clone)]
pub struct TraceFile {
    records: Vec<(u64, u32, bool)>,
    pos: usize,
    footprint: u64,
}

impl TraceFile {
    /// Records `count` accesses from `generator` into `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn record<P: AsRef<Path>>(
        path: P,
        generator: &mut dyn TraceGenerator,
        count: u64,
    ) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&count.to_le_bytes())?;
        for _ in 0..count {
            let a = generator.next_access();
            w.write_all(&a.vaddr.raw().to_le_bytes())?;
            w.write_all(&a.gap.to_le_bytes())?;
            w.write_all(&[u8::from(a.ty.is_write())])?;
        }
        w.flush()
    }

    /// Opens and fully loads a recorded trace.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the header or record framing is wrong,
    /// or any underlying I/O error.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut header = [0u8; 16];
        r.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let mut records = Vec::with_capacity(count as usize);
        let mut buf = [0u8; RECORD_BYTES];
        let mut max_addr = 0u64;
        for _ in 0..count {
            r.read_exact(&mut buf)?;
            let vaddr = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
            let gap = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
            let is_write = buf[12] != 0;
            max_addr = max_addr.max(vaddr);
            records.push((vaddr, gap, is_write));
        }
        if records.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(Self {
            records,
            pos: 0,
            footprint: max_addr + 1,
        })
    }

    /// Builds a replay generator from in-memory records — accesses
    /// captured by a harness or test rather than loaded from disk.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty: the replay loop needs at least one
    /// record (a valid trace file can never be empty either).
    pub fn from_records(records: Vec<MemAccess>) -> Self {
        assert!(!records.is_empty(), "replay needs at least one record");
        let mut max_addr = 0u64;
        let records: Vec<(u64, u32, bool)> = records
            .into_iter()
            .map(|a| {
                max_addr = max_addr.max(a.vaddr.raw());
                (a.vaddr.raw(), a.gap, a.ty.is_write())
            })
            .collect();
        Self {
            records,
            pos: 0,
            footprint: max_addr + 1,
        }
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are loaded (never true for a valid file).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceGenerator for TraceFile {
    fn next_access(&mut self) -> MemAccess {
        let (vaddr, gap, is_write) = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        MemAccess {
            vaddr: VirtAddr::new(vaddr),
            ty: if is_write {
                AccessType::Write
            } else {
                AccessType::Read
            },
            gap,
        }
    }

    fn name(&self) -> &'static str {
        "trace-file"
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::BenchKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("csalt-trace-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn record_then_replay_is_identical() {
        let path = tmp("roundtrip");
        let mut gen_a = BenchKind::Gups.build(11, 0.05);
        TraceFile::record(&path, gen_a.as_mut(), 5_000).expect("record");

        let mut replay = TraceFile::open(&path).expect("open");
        assert_eq!(replay.len(), 5_000);
        let mut gen_b = BenchKind::Gups.build(11, 0.05);
        for _ in 0..5_000 {
            assert_eq!(replay.next_access(), gen_b.next_access());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_wraps_around() {
        let path = tmp("wrap");
        let mut g = BenchKind::Canneal.build(2, 0.05);
        TraceFile::record(&path, g.as_mut(), 10).expect("record");
        let mut replay = TraceFile::open(&path).expect("open");
        let first: Vec<_> = (0..10).map(|_| replay.next_access()).collect();
        let second: Vec<_> = (0..10).map(|_| replay.next_access()).collect();
        assert_eq!(first, second, "replay loops the file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPE0000000000000000").expect("write");
        let err = TraceFile::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("trunc");
        let mut g = BenchKind::Gups.build(1, 0.05);
        TraceFile::record(&path, g.as_mut(), 100).expect("record");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footprint_reflects_max_address() {
        let path = tmp("footprint");
        let mut g = BenchKind::Gups.build(1, 0.05);
        TraceFile::record(&path, g.as_mut(), 1000).expect("record");
        let replay = TraceFile::open(&path).expect("open");
        assert!(replay.footprint_bytes() > 0x1000_0000_0000);
        std::fs::remove_file(&path).ok();
    }
}
