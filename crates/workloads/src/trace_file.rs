//! Trace recording and replay.
//!
//! The paper drives its simulator from Pin traces; this module gives the
//! reproduction the same capability: any [`TraceGenerator`]'s stream can
//! be recorded to a compact binary file and replayed later, and traces
//! converted from real instrumentation tools (Pin, DynamoRIO, QEMU
//! plugins) can be fed to the simulator by writing this format.
//!
//! # Formats
//!
//! Both versions are little-endian and start with the magic `"CSLT"`
//! and a `version: u32`.
//!
//! **v1** — a 16-byte header (`magic`, `version = 1`, `record count:
//! u64`) followed by 13-byte records of `(vaddr: u64, gap: u32,
//! is_write: u8)`.
//!
//! **v2** — a 32-byte header (`magic`, `version = 2`, `record count:
//! u64`, `asid: u16`, 14 reserved zero bytes) followed by fixed-width
//! 32-byte records of four `u64` words: `vaddr`, `gap << 1 | is_write`,
//! `packed_4k`, `packed_2m` — exactly the staged-access wire format the
//! pipeline's SPSC rings carry. Replay pops records with **zero key
//! packing**: the TLB lookup keys were precomputed at record time for
//! the header's ASID (they are a pure function of `(vaddr, asid)`), and
//! [`TraceFile::restage`] recomputes them in one bulk pass if a run
//! replays under a different ASID. Records are 32-byte aligned so the
//! whole-file read decodes at memory bandwidth.
//!
//! Files are written through a `BufWriter` and opened with one
//! whole-file read (`mmap`-style: a single contiguous image, decoded in
//! one pass). The header's record count is validated against the file
//! length **before** any allocation, so a garbage header cannot trigger
//! a huge reservation and a torn tail is rejected as `InvalidData`
//! rather than a short-read surprise mid-parse.
//!
//! # Example
//!
//! ```no_run
//! use csalt_workloads::{BenchKind, TraceFile, TraceGenerator};
//! use csalt_types::Asid;
//!
//! # fn main() -> std::io::Result<()> {
//! let mut gups = BenchKind::Gups.build(1, 0.1);
//! TraceFile::record_v2("gups.trace", gups.as_mut(), 100_000, Asid::new(1))?;
//!
//! let mut replay = TraceFile::open("gups.trace")?;
//! let (first, keys) = replay.next_staged();
//! # let _ = (first, keys);
//! # Ok(())
//! # }
//! ```

use crate::gen::TraceGenerator;
use csalt_types::{AccessType, Asid, MemAccess, TranslationHint, VirtAddr};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CSLT";
const V1: u32 = 1;
const V2: u32 = 2;
const V1_HEADER_BYTES: usize = 16;
const V1_RECORD_BYTES: usize = 13;
const V2_HEADER_BYTES: usize = 32;
const V2_RECORD_BYTES: usize = 32;

/// A recorded trace replayed as a [`TraceGenerator`].
///
/// Replay loops: when the recorded stream is exhausted it restarts from
/// the beginning, so a finite file can drive an arbitrarily long
/// simulation (matching how the paper replays finite Pin traces).
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// Wire words per record: `vaddr`, `gap << 1 | is_write`, and (for
    /// staged traces) the two packed TLB keys. Shared behind an `Arc`
    /// so cloning a trace for replay (the staged-trace store hands the
    /// same recorded tuple to every scheme) is a cursor copy, not a
    /// buffer copy; `restage` for a new ASID is the only
    /// copy-on-write.
    records: std::sync::Arc<Vec<[u64; 4]>>,
    /// Whether words 2/3 hold valid packed keys (v2 traces, or after
    /// [`TraceFile::restage`]).
    staged: bool,
    /// The ASID the packed keys were computed under (meaningful only
    /// when `staged`).
    asid: u16,
    /// Format version the trace was loaded from (in-memory traces built
    /// by [`TraceFile::from_records`] report the version they would
    /// save as).
    version: u32,
    pos: usize,
    footprint: u64,
}

/// `InvalidData` error with a formatted message.
fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl TraceFile {
    /// Records `count` accesses from `generator` into `path` in the v1
    /// (13-byte, unstaged) format — kept as a writer so backward
    /// compatibility stays an exercised path, not a frozen fixture.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn record<P: AsRef<Path>>(
        path: P,
        generator: &mut dyn TraceGenerator,
        count: u64,
    ) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&V1.to_le_bytes())?;
        w.write_all(&count.to_le_bytes())?;
        for _ in 0..count {
            let a = generator.next_access();
            w.write_all(&a.vaddr.raw().to_le_bytes())?;
            w.write_all(&a.gap.to_le_bytes())?;
            w.write_all(&[u8::from(a.ty.is_write())])?;
        }
        w.flush()
    }

    /// Records `count` accesses from `generator` into `path` in the v2
    /// (32-byte, staged) format: each record carries the packed TLB
    /// keys for `asid`, so replay skips key packing entirely.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn record_v2<P: AsRef<Path>>(
        path: P,
        generator: &mut dyn TraceGenerator,
        count: u64,
        asid: Asid,
    ) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write_v2_header(&mut w, count, asid)?;
        for _ in 0..count {
            let a = generator.next_access();
            let hint = TranslationHint::compute(a.vaddr, asid);
            write_v2_record(&mut w, &encode_words(&a, Some(&hint)))?;
        }
        w.flush()
    }

    /// Writes this trace's records to `path` in the v2 format. The
    /// trace must be staged first ([`TraceFile::restage`]): the v2
    /// format's whole point is carrying the packed keys.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the trace is not staged, or any I/O
    /// error from writing.
    pub fn save_v2<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if !self.staged {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "trace has no staged keys; call restage(asid) before save_v2",
            ));
        }
        let mut w = BufWriter::new(File::create(path)?);
        write_v2_header(&mut w, self.records.len() as u64, Asid::new(self.asid))?;
        for rec in self.records.iter() {
            write_v2_record(&mut w, rec)?;
        }
        w.flush()
    }

    /// Opens and fully loads a recorded trace, either version. The file
    /// is read in one contiguous image and its length is validated
    /// against the header's record count before anything is allocated.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the header or record framing is wrong
    /// (bad magic, unknown version, length/count mismatch, torn tail),
    /// or any underlying I/O error.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 || &bytes[0..4] != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let (header_bytes, record_bytes) = match version {
            V1 => (V1_HEADER_BYTES, V1_RECORD_BYTES),
            V2 => (V2_HEADER_BYTES, V2_RECORD_BYTES),
            other => return Err(bad(format!("unsupported trace version {other}"))),
        };
        if bytes.len() < header_bytes {
            return Err(bad(format!(
                "truncated v{version} header: {} bytes",
                bytes.len()
            )));
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        if count == 0 {
            return Err(bad("empty trace"));
        }
        // Validate declared count against actual length before the
        // records vector is sized from it: a corrupt count must not
        // drive the allocator, and a torn tail must fail loudly.
        let expected = count
            .checked_mul(record_bytes as u64)
            .and_then(|body| body.checked_add(header_bytes as u64));
        if expected != Some(bytes.len() as u64) {
            return Err(bad(format!(
                "file length {} does not match header: {count} records of \
                 {record_bytes} bytes after a {header_bytes}-byte header",
                bytes.len()
            )));
        }
        let (staged, asid) = if version == V2 {
            let asid = u16::from_le_bytes(bytes[16..18].try_into().expect("2 bytes"));
            if bytes[18..32].iter().any(|&b| b != 0) {
                return Err(bad("reserved v2 header bytes must be zero"));
            }
            (true, asid)
        } else {
            (false, 0)
        };

        let mut records = Vec::with_capacity(count as usize);
        let mut max_addr = 0u64;
        let body = &bytes[header_bytes..];
        if version == V1 {
            for chunk in body.chunks_exact(V1_RECORD_BYTES) {
                let vaddr = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
                let gap = u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
                let is_write = chunk[12] != 0;
                max_addr = max_addr.max(vaddr);
                records.push([vaddr, (u64::from(gap) << 1) | u64::from(is_write), 0, 0]);
            }
        } else {
            for chunk in body.chunks_exact(V2_RECORD_BYTES) {
                let word = |i: usize| {
                    u64::from_le_bytes(chunk[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
                };
                let rec = [word(0), word(1), word(2), word(3)];
                max_addr = max_addr.max(rec[0]);
                records.push(rec);
            }
        }
        Ok(Self {
            records: std::sync::Arc::new(records),
            staged,
            asid,
            version,
            pos: 0,
            footprint: max_addr + 1,
        })
    }

    /// Builds a replay generator from in-memory records — accesses
    /// captured by a harness or test rather than loaded from disk. The
    /// result is unstaged; call [`TraceFile::restage`] to precompute
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty: the replay loop needs at least one
    /// record (a valid trace file can never be empty either).
    pub fn from_records(records: Vec<MemAccess>) -> Self {
        assert!(!records.is_empty(), "replay needs at least one record");
        let mut max_addr = 0u64;
        let records: Vec<[u64; 4]> = records
            .into_iter()
            .map(|a| {
                max_addr = max_addr.max(a.vaddr.raw());
                encode_words(&a, None)
            })
            .collect();
        Self {
            records: std::sync::Arc::new(records),
            staged: false,
            asid: 0,
            version: V1,
            pos: 0,
            footprint: max_addr + 1,
        }
    }

    /// Recomputes the packed TLB keys of every record for `asid` in one
    /// bulk pass. Replay under a different ASID than the trace was
    /// recorded for stays zero-repack per access: the cost is paid once
    /// here, not in the hot loop.
    pub fn restage(&mut self, asid: Asid) {
        if self.staged && self.asid == asid.raw() {
            return;
        }
        for rec in std::sync::Arc::make_mut(&mut self.records).iter_mut() {
            let hint = TranslationHint::compute(VirtAddr::new(rec[0]), asid);
            rec[2] = hint.packed_4k;
            rec[3] = hint.packed_2m;
        }
        self.staged = true;
        self.asid = asid.raw();
    }

    /// Whether every record carries valid packed TLB keys.
    #[must_use]
    pub fn is_staged(&self) -> bool {
        self.staged
    }

    /// Whether the records' packed keys were computed for `asid` — the
    /// precondition for [`TraceFile::next_staged`] feeding a context
    /// translating under that ASID.
    #[must_use]
    pub fn is_staged_for(&self, asid: Asid) -> bool {
        self.staged && self.asid == asid.raw()
    }

    /// The ASID the staged keys were packed under, if staged.
    #[must_use]
    pub fn asid(&self) -> Option<Asid> {
        self.staged.then(|| Asid::new(self.asid))
    }

    /// The format version this trace was loaded from (or would save as).
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The next record with its prepacked TLB keys — the zero-repack
    /// replay path. Wraps like [`TraceGenerator::next_access`].
    ///
    /// # Panics
    ///
    /// Debug builds panic if the trace is not staged; release builds
    /// would silently return empty keys, so callers must check
    /// [`TraceFile::is_staged_for`] when planning replay.
    #[inline]
    pub fn next_staged(&mut self) -> (MemAccess, TranslationHint) {
        debug_assert!(self.staged, "next_staged on an unstaged trace");
        let rec = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        (
            decode_access(&rec),
            TranslationHint {
                packed_4k: rec[2],
                packed_2m: rec[3],
            },
        )
    }

    /// Advances the replay cursor by `n` records in O(1) — exactly what
    /// `n` calls to [`TraceFile::next_staged`] would do to the cursor,
    /// with the same wrap-around, but without touching the records.
    /// Checkpoint restore uses this to fast-forward a stream past a
    /// warmup prefix that was never re-simulated.
    pub fn skip(&mut self, n: u64) {
        let len = self.records.len() as u64;
        self.pos = ((self.pos as u64 + n % len) % len) as usize;
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are loaded (never true for a valid file).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Packs one access (and optionally its keys) into the four-word record.
fn encode_words(a: &MemAccess, hint: Option<&TranslationHint>) -> [u64; 4] {
    [
        a.vaddr.raw(),
        (u64::from(a.gap) << 1) | u64::from(a.ty.is_write()),
        hint.map_or(0, |h| h.packed_4k),
        hint.map_or(0, |h| h.packed_2m),
    ]
}

/// Decodes the access half of a record (words 0 and 1).
#[inline]
fn decode_access(rec: &[u64; 4]) -> MemAccess {
    MemAccess {
        vaddr: VirtAddr::new(rec[0]),
        ty: if rec[1] & 1 == 1 {
            AccessType::Write
        } else {
            AccessType::Read
        },
        gap: (rec[1] >> 1) as u32,
    }
}

fn write_v2_header<W: Write>(w: &mut W, count: u64, asid: Asid) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&V2.to_le_bytes())?;
    w.write_all(&count.to_le_bytes())?;
    w.write_all(&asid.raw().to_le_bytes())?;
    w.write_all(&[0u8; 14])
}

fn write_v2_record<W: Write>(w: &mut W, rec: &[u64; 4]) -> io::Result<()> {
    for word in rec {
        w.write_all(&word.to_le_bytes())?;
    }
    Ok(())
}

impl TraceGenerator for TraceFile {
    fn next_access(&mut self) -> MemAccess {
        let rec = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        decode_access(&rec)
    }

    fn name(&self) -> &'static str {
        "trace-file"
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::BenchKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("csalt-trace-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn record_then_replay_is_identical() {
        let path = tmp("roundtrip");
        let mut gen_a = BenchKind::Gups.build(11, 0.05);
        TraceFile::record(&path, gen_a.as_mut(), 5_000).expect("record");

        let mut replay = TraceFile::open(&path).expect("open");
        assert_eq!(replay.len(), 5_000);
        assert_eq!(replay.version(), 1);
        assert!(!replay.is_staged());
        let mut gen_b = BenchKind::Gups.build(11, 0.05);
        for _ in 0..5_000 {
            assert_eq!(replay.next_access(), gen_b.next_access());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_record_then_replay_matches_fields_and_keys() {
        let path = tmp("v2-roundtrip");
        let asid = Asid::new(3);
        let mut gen_a = BenchKind::Graph500.build(5, 0.05);
        TraceFile::record_v2(&path, gen_a.as_mut(), 3_000, asid).expect("record");

        let mut replay = TraceFile::open(&path).expect("open");
        assert_eq!(replay.len(), 3_000);
        assert_eq!(replay.version(), 2);
        assert!(replay.is_staged_for(asid));
        assert_eq!(replay.asid(), Some(asid));
        let mut gen_b = BenchKind::Graph500.build(5, 0.05);
        for _ in 0..3_000 {
            let (acc, hint) = replay.next_staged();
            let want = gen_b.next_access();
            assert_eq!(acc, want);
            assert_eq!(hint, TranslationHint::compute(want.vaddr, asid));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_converts_to_v2_byte_faithfully() {
        let v1_path = tmp("convert-v1");
        let v2_path = tmp("convert-v2");
        let mut g = BenchKind::Canneal.build(9, 0.05);
        TraceFile::record(&v1_path, g.as_mut(), 1_000).expect("record");

        let mut v1 = TraceFile::open(&v1_path).expect("open v1");
        let asid = Asid::new(2);
        v1.restage(asid);
        v1.save_v2(&v2_path).expect("save v2");

        let mut a = TraceFile::open(&v1_path).expect("reopen v1");
        let mut b = TraceFile::open(&v2_path).expect("open v2");
        assert_eq!(a.len(), b.len());
        for _ in 0..1_000 {
            let want = a.next_access();
            let (acc, hint) = b.next_staged();
            assert_eq!(acc, want, "conversion preserved the access stream");
            assert_eq!(hint, TranslationHint::compute(want.vaddr, asid));
        }
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn save_v2_requires_staging() {
        let t = TraceFile::from_records(vec![MemAccess {
            vaddr: VirtAddr::new(0x1000),
            ty: AccessType::Read,
            gap: 0,
        }]);
        let err = t.save_v2(tmp("unstaged")).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn restage_changes_keys_with_asid() {
        let mut t = TraceFile::from_records(vec![MemAccess {
            vaddr: VirtAddr::new(0x7000_1000),
            ty: AccessType::Write,
            gap: 4,
        }]);
        t.restage(Asid::new(1));
        let (_, k1) = t.next_staged();
        t.restage(Asid::new(2));
        let (acc, k2) = t.next_staged();
        assert_ne!(k1, k2, "keys embed the ASID");
        assert_eq!(k2, TranslationHint::compute(acc.vaddr, Asid::new(2)));
        assert!(t.is_staged_for(Asid::new(2)));
        assert!(!t.is_staged_for(Asid::new(1)));
    }

    #[test]
    fn replay_wraps_around() {
        let path = tmp("wrap");
        let mut g = BenchKind::Canneal.build(2, 0.05);
        TraceFile::record(&path, g.as_mut(), 10).expect("record");
        let mut replay = TraceFile::open(&path).expect("open");
        let first: Vec<_> = (0..10).map(|_| replay.next_access()).collect();
        let second: Vec<_> = (0..10).map(|_| replay.next_access()).collect();
        assert_eq!(first, second, "replay loops the file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPE0000000000000000").expect("write");
        let err = TraceFile::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("trunc");
        let mut g = BenchKind::Gups.build(1, 0.05);
        TraceFile::record(&path, g.as_mut(), 100).expect("record");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_v2_tail_is_rejected_with_clear_error() {
        let path = tmp("torn-v2");
        let mut g = BenchKind::Gups.build(4, 0.05);
        TraceFile::record_v2(&path, g.as_mut(), 50, Asid::new(1)).expect("record");
        let bytes = std::fs::read(&path).expect("read");
        // Tear the last record in half.
        std::fs::write(&path, &bytes[..bytes.len() - 16]).expect("tear");
        let err = TraceFile::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("does not match header"),
            "explains the mismatch: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_count_does_not_drive_allocation() {
        // A header declaring u64::MAX records must be rejected by the
        // length check, never by an allocator blow-up.
        let path = tmp("hugecount");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&V2.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).expect("write");
        let err = TraceFile::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nonzero_reserved_header_bytes_are_rejected() {
        let path = tmp("reserved");
        let mut g = BenchKind::Gups.build(4, 0.05);
        TraceFile::record_v2(&path, g.as_mut(), 5, Asid::new(1)).expect("record");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[25] = 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = TraceFile::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    use proptest::prelude::*;

    proptest! {
        /// Every field combination a record can carry — any vaddr whose
        /// 4K VPN fits the packed TLB key (46 bits → addresses below
        /// 2^58), full-width gap, either access type, any ASID —
        /// survives the v2 save → open round-trip bit-exactly, keys
        /// included.
        #[test]
        fn v2_roundtrip_preserves_arbitrary_records(
            fields in prop::collection::vec(
                (0u64..1 << 58, any::<u32>(), any::<bool>()),
                1..64,
            ),
            asid_raw in 1u16..512,
        ) {
            let records: Vec<MemAccess> = fields
                .iter()
                .map(|&(va, gap, write)| MemAccess {
                    vaddr: VirtAddr::new(va),
                    ty: if write { AccessType::Write } else { AccessType::Read },
                    gap,
                })
                .collect();
            let asid = Asid::new(asid_raw);
            let mut t = TraceFile::from_records(records.clone());
            t.restage(asid);
            let path = tmp("prop-v2");
            t.save_v2(&path).expect("save");
            let reopened = TraceFile::open(&path);
            std::fs::remove_file(&path).ok();
            let mut r = reopened.expect("open");
            prop_assert_eq!(r.len(), records.len());
            prop_assert_eq!(r.version(), V2);
            prop_assert!(r.is_staged_for(asid));
            for want in &records {
                let (acc, hint) = r.next_staged();
                prop_assert_eq!(acc, *want);
                prop_assert_eq!(hint, TranslationHint::compute(want.vaddr, asid));
            }
        }
    }

    #[test]
    fn footprint_reflects_max_address() {
        let path = tmp("footprint");
        let mut g = BenchKind::Gups.build(1, 0.05);
        TraceFile::record(&path, g.as_mut(), 1000).expect("record");
        let replay = TraceFile::open(&path).expect("open");
        assert!(replay.footprint_bytes() > 0x1000_0000_0000);
        std::fs::remove_file(&path).ok();
    }
}
