//! A Zipf(θ) sampler over ranks `0..n`, after Gray et al. (SIGMOD '94).
//!
//! Graph workloads (graph500, pagerank, connected component) touch
//! vertices with power-law frequency; this sampler reproduces that skew
//! deterministically from a seeded RNG.

use rand::Rng;

/// Zipfian rank sampler with exponent `theta ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    theta: f64,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta` (0 = uniform-ish,
    /// → 1 = heavily skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be positive");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            alpha,
            zetan,
            eta,
            theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler–Maclaurin tail for large n keeps
        // construction O(1e5) regardless of population size.
        const DIRECT: u64 = 100_000;
        if n <= DIRECT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=DIRECT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{DIRECT}^{n} x^-θ dx
            let a = DIRECT as f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.8);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 0.9);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut head = 0;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With θ=0.9, the top 1% of ranks should absorb well over a
        // third of the draws.
        assert!(f64::from(head) / N as f64 > 0.35, "head share {head}/{N}");
    }

    #[test]
    fn mild_skew_spreads_out() {
        let z = Zipf::new(10_000, 0.2);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut head = 0;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        assert!(
            (f64::from(head) / N as f64) < 0.2,
            "θ=0.2 head share too big: {head}/{N}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(5000, 0.7);
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(1);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(1);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn large_population_constructs_quickly() {
        let z = Zipf::new(100_000_000, 0.75);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = z.sample(&mut rng);
        assert!(s < 100_000_000);
        assert_eq!(z.population(), 100_000_000);
    }

    #[test]
    #[should_panic(expected = "theta in (0,1)")]
    fn theta_one_rejected() {
        Zipf::new(10, 1.0);
    }
}
