//! Synthetic workload generators for the CSALT simulator.
//!
//! The paper drives its simulator with Pin traces of PARSEC, graph500,
//! GUPS, PageRank and GraphChi connected-component runs (§4.1). Those
//! traces are not redistributable, so this crate generates address
//! streams with the same *page-locality structure* — the property every
//! figure in the evaluation actually depends on (see DESIGN.md §1 for
//! the substitution argument):
//!
//! | benchmark | modelled profile |
//! |---|---|
//! | `gups` | uniform random RMW over a huge table (TLB worst case) |
//! | `graph500` | power-law vertex visits + adjacency bursts |
//! | `pagerank` | sequential edge stream + power-law rank updates |
//! | `ccomp` | per-iteration active lists → phased TLB pressure |
//! | `canneal` | paired random element touches, large footprint |
//! | `streamcluster` | streaming + small hot centre set (TLB-friendly) |
//!
//! [`paper_workloads`] reproduces the ten pairings on the evaluation's
//! x-axes; [`table3_pairs`] is the heterogeneous subset of Table 3.
//!
//! # Example
//!
//! ```
//! use csalt_workloads::BenchKind;
//!
//! let mut gups = BenchKind::Gups.build(42, 0.25);
//! let access = gups.next_access();
//! assert!(access.instructions() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benches;
mod gen;
mod trace_file;
mod zipf;

pub use benches::{Canneal, ConnectedComponent, Graph500, Gups, PageRank, StreamCluster};
pub use gen::{
    paper_workloads, table3_pairs, AnyGenerator, BenchKind, Region, TraceGenerator, WorkloadSpec,
};
pub use trace_file::TraceFile;
pub use zipf::Zipf;
