//! The six benchmark trace generators (§4.1 of the paper).
//!
//! Each generator reproduces the *page-locality profile* that drives the
//! paper's TLB and cache behaviour rather than the benchmark's
//! computation: what matters to every figure is the reuse distance of
//! lines and pages, the footprint relative to TLB reach, and the mix of
//! streaming vs. scattered traffic. The comments on each type state the
//! profile being modelled.

use crate::gen::{Region, TraceGenerator};
use crate::zipf::Zipf;
use csalt_types::{MemAccess, VirtAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const LINE: u64 = 64;

/// Scales a region size, keeping it page-granular and at least 2 MiB.
fn scaled(bytes: u64, scale: f64) -> u64 {
    let s = (bytes as f64 * scale) as u64;
    (s.max(2 * MB) / (4 * KB)) * (4 * KB)
}

/// A drifting hot window over a logical page range.
///
/// Real large-footprint workloads concentrate most touches on a working
/// set not far above the L2 TLB's reach while a long tail sweeps the
/// whole footprint — that is what makes the paper's Figure 1 possible:
/// one context's hot set (mostly) fits the 1536-entry L2 TLB, two
/// contexts' hot sets thrash it, and the miss rate jumps several-fold.
/// A uniformly random generator would instead saturate the TLB at any
/// context count and show no context-switch cliff at all.
///
/// `select` returns a page index in `0..total`: with probability
/// `p_hot` (per 256) a page from the current `hot_pages`-sized window,
/// otherwise the caller's tail page. The window drifts slowly so the
/// tail pressure keeps covering the footprint over a long run.
#[derive(Debug, Clone)]
struct HotSet {
    hot_pages: u64,
    p_hot: u32,
    drift_interval: u64,
    counter: u64,
    base: u64,
}

impl HotSet {
    fn new(hot_pages: u64, p_hot: u32) -> Self {
        Self {
            hot_pages: hot_pages.max(1),
            p_hot,
            drift_interval: 25_000,
            counter: 0,
            base: 0,
        }
    }

    /// Picks the hot-window page for `draw`, or `None` for a tail draw.
    fn select(&mut self, rng: &mut SmallRng, total: u64) -> Option<u64> {
        self.counter += 1;
        if self.counter.is_multiple_of(self.drift_interval) {
            self.base = (self.base + self.hot_pages / 8 + 1) % total;
        }
        if (rng.gen::<u32>() & 0xff) < self.p_hot {
            let hot = self.hot_pages.min(total);
            Some((self.base + rng.gen::<u64>() % hot) % total)
        } else {
            None
        }
    }
}

/// Virtual layout: every benchmark places its regions at these bases, so
/// two co-scheduled instances (distinct ASIDs) have overlapping VAs —
/// exactly the situation ASID tagging exists for.
const HEAP0: u64 = 0x1000_0000_0000;
const HEAP1: u64 = 0x2000_0000_0000;
const HEAP2: u64 = 0x3000_0000_0000;

/// GUPS / RandomAccess: uniform random 8-byte read-modify-writes over one
/// giant table. Near-zero page locality — every access is a fresh page
/// with high probability, the TLB worst case of Figure 1.
#[derive(Debug)]
pub struct Gups {
    rng: SmallRng,
    table: Region,
    pending_write: Option<VirtAddr>,
}

impl Gups {
    /// Creates a GUPS instance (`scale` × 256 MiB table — 64 Ki pages,
    /// ~21× the L2 TLB reach, sized so the translation working set of
    /// two VMs contends with data for the L3 as in Figure 3).
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x6775_7073),
            table: Region::with_spread(HEAP0, scaled(256 * MB, scale), 9),
            pending_write: None,
        }
    }
}

impl TraceGenerator for Gups {
    fn next_access(&mut self) -> MemAccess {
        if let Some(addr) = self.pending_write.take() {
            // The modify-write half of the RMW: same line, tiny gap.
            return MemAccess::write(addr, 1);
        }
        let offset = (self.rng.gen::<u64>() % (self.table.size() / 8)) * 8;
        let addr = self.table.at(offset);
        self.pending_write = Some(addr);
        MemAccess::read(addr, 5 + (self.rng.gen::<u32>() & 3))
    }

    fn name(&self) -> &'static str {
        "gups"
    }

    fn footprint_bytes(&self) -> u64 {
        self.table.size()
    }
}

/// graph500 BFS: power-law vertex visits (8-byte state words scattered
/// over a large array) interleaved with sequential adjacency-list bursts
/// and a sequentially-written frontier queue.
#[derive(Debug)]
pub struct Graph500 {
    rng: SmallRng,
    zipf: Zipf,
    hot: HotSet,
    state: Region,
    edges: Region,
    queue: Region,
    burst_left: u32,
    edge_ptr: u64,
    queue_ptr: u64,
    step: u8,
}

impl Graph500 {
    /// Creates a graph500 instance (`scale` × (192 MiB state + 192 MiB
    /// edges)).
    pub fn new(seed: u64, scale: f64) -> Self {
        let state = Region::with_spread(HEAP0, scaled(192 * MB, scale), 9);
        let vertices = state.size() / 8;
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x6735_3030),
            zipf: Zipf::new(vertices, 0.8),
            // The BFS frontier clusters: about half the visits touch
            // the current frontier's vertices (~1100 of them — each
            // pins one adjacency page, the TLB-relevant unit).
            hot: HotSet::new(1100, 128), // ~50% hot
            state,
            edges: Region::new(HEAP1, scaled(192 * MB, scale)),
            queue: Region::new(HEAP2, scaled(16 * MB, scale)),
            burst_left: 0,
            edge_ptr: 0,
            queue_ptr: 0,
            step: 0,
        }
    }
}

impl TraceGenerator for Graph500 {
    fn next_access(&mut self) -> MemAccess {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            let a = self.edges.at(self.edge_ptr);
            self.edge_ptr += LINE;
            return MemAccess::read(a, 2);
        }
        match self.step {
            0 => {
                // Visit a vertex: read its state word. Most visits hit
                // the current frontier (a hot *vertex* window — each hot
                // vertex pins one state page and one adjacency page, so
                // vertex granularity is what the TLB experiences); the
                // tail is power-law over the whole vertex array.
                self.step = 1;
                let total_vertices = self.state.size() / 8;
                let v = match self.hot.select(&mut self.rng, total_vertices) {
                    Some(v) => v,
                    None => self.zipf.sample(&mut self.rng),
                };
                let a = self.state.at(v * 8);
                // Its adjacency list starts at a vertex-derived edge
                // offset; burst length models the degree distribution.
                self.edge_ptr = (v.wrapping_mul(0x9e37_79b9) * LINE) % self.edges.size();
                // Scale-free graphs: median degree is small, so most
                // adjacency bursts are 1-4 lines (16 B edges).
                self.burst_left = 1 + (self.rng.gen::<u32>() & 0x3);
                MemAccess::read(a, 4)
            }
            _ => {
                // Append a discovered vertex to the frontier queue.
                self.step = 0;
                let a = self.queue.at(self.queue_ptr);
                self.queue_ptr += 8;
                MemAccess::write(a, 3)
            }
        }
    }

    fn name(&self) -> &'static str {
        "graph500"
    }

    fn footprint_bytes(&self) -> u64 {
        self.state.size() + self.edges.size() + self.queue.size()
    }
}

/// PageRank: one sequential pass over the edge list per iteration; each
/// edge reads the (slowly advancing) source's rank and writes a
/// power-law-distributed destination's rank.
#[derive(Debug)]
pub struct PageRank {
    rng: SmallRng,
    zipf: Zipf,
    hot: HotSet,
    ranks: Region,
    edges: Region,
    edge_ptr: u64,
    src: u64,
    vertices: u64,
    step: u8,
}

impl PageRank {
    /// Creates a PageRank instance (`scale` × (256 MiB ranks + 192 MiB
    /// edges)).
    pub fn new(seed: u64, scale: f64) -> Self {
        let ranks = Region::with_spread(HEAP0, scaled(256 * MB, scale), 9);
        let vertices = ranks.size() / 8;
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x7072_616e),
            zipf: Zipf::new(vertices, 0.8),
            // Popular destinations cluster on a hot page set.
            hot: HotSet::new(1200, 154), // ~60% hot
            ranks,
            edges: Region::new(HEAP1, scaled(192 * MB, scale)),
            edge_ptr: 0,
            src: 0,
            vertices,
            step: 0,
        }
    }
}

impl TraceGenerator for PageRank {
    fn next_access(&mut self) -> MemAccess {
        match self.step {
            0 => {
                // Stream the edge list (16-byte edges: new line every 4).
                self.step = 1;
                let a = self.edges.at(self.edge_ptr);
                self.edge_ptr += 16;
                MemAccess::read(a, 3)
            }
            1 => {
                // Source rank: advances slowly, good locality.
                self.step = 2;
                if self.rng.gen::<u32>() & 0xf == 0 {
                    self.src = (self.src + 1) % self.vertices;
                }
                MemAccess::read(self.ranks.at(self.src * 8), 2)
            }
            _ => {
                // Destination rank: hot head plus power-law tail.
                self.step = 0;
                let vertices_per_page = 4 * KB / 8;
                let total_pages = self.ranks.size() / (4 * KB);
                let dst = match self.hot.select(&mut self.rng, total_pages) {
                    Some(p) => p * vertices_per_page + self.rng.gen::<u64>() % vertices_per_page,
                    None => self.zipf.sample(&mut self.rng),
                };
                MemAccess::write(self.ranks.at(dst * 8), 4)
            }
        }
    }

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn footprint_bytes(&self) -> u64 {
        self.ranks.size() + self.edges.size()
    }
}

/// GraphChi connected component: label propagation over an explicit
/// active-vertex list that is regenerated each iteration. Because the
/// active vertices land on a fresh pseudo-random subset of label pages
/// every iteration, the TLB pressure swings between iterations — the
/// phase behaviour Figure 9 plots and the source of this benchmark's
/// pathological virtualized walk cost (Table 1).
#[derive(Debug)]
pub struct ConnectedComponent {
    rng: SmallRng,
    labels: Region,
    edges: Region,
    hot: HotSet,
    /// Accesses per iteration (one "list of active vertices").
    iter_len: u64,
    pos_in_iter: u64,
    iteration: u64,
    edge_ptr: u64,
    step: u8,
}

/// Fraction of label pages active in successive iterations: the
/// frontier decays as labels converge, then a new batch of components
/// partially restarts it. Mid-sized frontiers dominate — the active
/// list of a large graph rarely collapses to a handful of pages before
/// GraphChi loads the next shard.
const CCOMP_PHASES: [f64; 8] = [1.0, 0.55, 0.35, 0.22, 0.14, 0.08, 0.2, 0.35];

impl ConnectedComponent {
    /// Creates a connected-component instance (`scale` × (256 MiB labels
    /// + 192 MiB edges)).
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x6363_6f6d),
            labels: Region::with_spread(HEAP0, scaled(256 * MB, scale), 9),
            edges: Region::new(HEAP1, scaled(192 * MB, scale)),
            // High-degree frontier vertices dominate label traffic.
            hot: HotSet::new(1200, 205), // ~80% hot

            // ~20 K accesses per thread per iteration: a 300 K-access
            // experiment run sees ~15 iterations (the paper's Figure 9
            // spans a similar number of visible phases).
            iter_len: 20_000,
            pos_in_iter: 0,
            iteration: 0,
            edge_ptr: 0,
            step: 0,
        }
    }

    fn active_fraction(&self) -> f64 {
        CCOMP_PHASES[(self.iteration % CCOMP_PHASES.len() as u64) as usize]
    }

    /// A pseudo-random label page from this iteration's active set.
    ///
    /// Active sets are *nested* within one convergence cycle: iteration
    /// `i+1`'s frontier is a prefix-subset of iteration `i`'s (converged
    /// vertices drop out), so shrinking phases re-touch pages from the
    /// previous phase. A new cycle (next shard / component batch)
    /// reshuffles the mapping. Within the active set, a drifting hot
    /// window concentrates most touches (frontier heads).
    fn active_page(&mut self) -> u64 {
        let total_pages = self.labels.size() / (4 * KB);
        let active = ((total_pages as f64 * self.active_fraction()) as u64).max(1);
        let k = match self.hot.select(&mut self.rng, active) {
            Some(h) => h,
            None => self.rng.gen::<u64>() % active,
        };
        let cycle = self.iteration / CCOMP_PHASES.len() as u64;
        // Odd multiplier: a bijection for power-of-two page counts, a
        // near-bijection otherwise — either way a stable scatter of the
        // prefix [0, active) across the label pages for this cycle.
        (k.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            .wrapping_add(cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            % total_pages
    }
}

impl TraceGenerator for ConnectedComponent {
    fn next_access(&mut self) -> MemAccess {
        self.pos_in_iter += 1;
        if self.pos_in_iter >= self.iter_len {
            self.pos_in_iter = 0;
            self.iteration += 1;
        }
        match self.step {
            0 | 1 => {
                // Two scattered label touches (read neighbour label,
                // write own) within the active set.
                let write = self.step == 1;
                self.step += 1;
                let page = self.active_page();
                let offset = page * 4 * KB + (self.rng.gen::<u64>() % 512) * 8;
                let a = self.labels.at(offset);
                if write {
                    MemAccess::write(a, 3)
                } else {
                    MemAccess::read(a, 4)
                }
            }
            _ => {
                // Stream the shard's edges.
                self.step = 0;
                let a = self.edges.at(self.edge_ptr);
                self.edge_ptr += 32;
                MemAccess::read(a, 2)
            }
        }
    }

    fn name(&self) -> &'static str {
        "ccomp"
    }

    fn footprint_bytes(&self) -> u64 {
        self.labels.size() + self.edges.size()
    }
}

/// PARSEC canneal: simulated annealing on a netlist — each move reads
/// two uniformly random elements plus a short run of their neighbour
/// lines, and commits ~30% of swaps with writes. Large footprint with
/// paired scattered touches.
#[derive(Debug)]
pub struct Canneal {
    rng: SmallRng,
    netlist: Region,
    hot: HotSet,
    /// Remaining (address, is_write) micro-ops of the current move.
    queue: Vec<(VirtAddr, bool)>,
}

impl Canneal {
    /// Creates a canneal instance (`scale` × 256 MiB netlist).
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x6361_6e6e),
            netlist: Region::with_spread(HEAP0, scaled(256 * MB, scale), 9),
            // Annealing localizes moderately: about half the moves
            // revisit the currently-hot neighbourhood, the rest roam
            // the whole netlist.
            hot: HotSet::new(1200, 140), // ~55% hot
            queue: Vec::with_capacity(8),
        }
    }

    fn pick_element(&mut self) -> u64 {
        let total_pages = self.netlist.size() / (4 * KB);
        let elems_per_page = 4 * KB / 128;
        let page = match self.hot.select(&mut self.rng, total_pages) {
            Some(p) => p,
            None => self.rng.gen::<u64>() % total_pages,
        };
        (page * elems_per_page + self.rng.gen::<u64>() % elems_per_page) * 128
    }

    fn schedule_move(&mut self) {
        let a = self.pick_element();
        let b = self.pick_element();
        let accept = self.rng.gen::<u32>() % 10 < 3;
        // Reversed so `pop` yields them in order.
        if accept {
            self.queue.push((self.netlist.at(b), true));
            self.queue.push((self.netlist.at(a), true));
        }
        self.queue.push((self.netlist.at(b + LINE), false));
        self.queue.push((self.netlist.at(b), false));
        self.queue.push((self.netlist.at(a + LINE), false));
        self.queue.push((self.netlist.at(a), false));
    }
}

impl TraceGenerator for Canneal {
    fn next_access(&mut self) -> MemAccess {
        if self.queue.is_empty() {
            self.schedule_move();
        }
        let (addr, write) = self.queue.pop().expect("just scheduled");
        let gap = 5 + (self.rng.gen::<u32>() & 7);
        if write {
            MemAccess::write(addr, gap)
        } else {
            MemAccess::read(addr, gap)
        }
    }

    fn name(&self) -> &'static str {
        "canneal"
    }

    fn footprint_bytes(&self) -> u64 {
        self.netlist.size()
    }
}

/// PARSEC streamcluster: a sequential sweep over the point set, testing
/// each point against a small, constantly-reused centre table. Almost
/// all traffic hits a few hundred hot pages — the benchmark whose walk
/// cost virtualization barely moves (Table 1).
#[derive(Debug)]
pub struct StreamCluster {
    rng: SmallRng,
    points: Region,
    centers: Region,
    point_ptr: u64,
    step: u8,
}

impl StreamCluster {
    /// Creates a streamcluster instance (`scale` × 96 MiB points +
    /// 2 MiB centres).
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x7374_636c),
            points: Region::new(HEAP0, scaled(96 * MB, scale)),
            centers: Region::new(HEAP1, 2 * MB),
            point_ptr: 0,
            step: 0,
        }
    }
}

impl TraceGenerator for StreamCluster {
    fn next_access(&mut self) -> MemAccess {
        match self.step {
            0 => {
                // Read the next point (sequential).
                self.step = 1;
                let a = self.points.at(self.point_ptr);
                self.point_ptr += LINE;
                MemAccess::read(a, 2)
            }
            1..=4 => {
                // Distance computations against random centres (hot).
                self.step += 1;
                let offset = (self.rng.gen::<u64>() % (self.centers.size() / LINE)) * LINE;
                MemAccess::read(self.centers.at(offset), 3)
            }
            _ => {
                // Occasional centre update.
                self.step = 0;
                let offset = (self.rng.gen::<u64>() % (self.centers.size() / LINE)) * LINE;
                MemAccess::write(self.centers.at(offset), 2)
            }
        }
    }

    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn footprint_bytes(&self) -> u64 {
        self.points.size() + self.centers.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csalt_types::AccessType;
    use std::collections::HashSet;

    /// Distinct 4 KiB pages touched in `n` accesses.
    fn pages_touched(g: &mut dyn TraceGenerator, n: usize) -> usize {
        let mut pages = HashSet::new();
        for _ in 0..n {
            pages.insert(g.next_access().vaddr.raw() >> 12);
        }
        pages.len()
    }

    #[test]
    fn gups_touches_a_fresh_page_almost_every_access() {
        let mut g = Gups::new(1, 1.0);
        let p = pages_touched(&mut g, 10_000);
        // RMW pairs → ~5000 distinct draws over 64 Ki pages: nearly all
        // distinct.
        assert!(p > 4_000, "gups touched only {p} pages");
    }

    #[test]
    fn streamcluster_reuses_a_small_page_set() {
        let mut g = StreamCluster::new(1, 1.0);
        let p = pages_touched(&mut g, 10_000);
        // Hot centres (512 pages) + a slowly advancing point stream.
        assert!(p < 800, "streamcluster touched {p} pages");
    }

    #[test]
    fn tlb_hostility_ordering_matches_the_paper() {
        // gups must touch far more pages than streamcluster per access;
        // graph benchmarks sit in between.
        let mut gups = Gups::new(1, 1.0);
        let mut g500 = Graph500::new(1, 1.0);
        let mut sc = StreamCluster::new(1, 1.0);
        let (pg, pgr, psc) = (
            pages_touched(&mut gups, 20_000),
            pages_touched(&mut g500, 20_000),
            pages_touched(&mut sc, 20_000),
        );
        assert!(pg > pgr, "gups {pg} <= graph500 {pgr}");
        assert!(pgr > psc, "graph500 {pgr} <= streamcluster {psc}");
    }

    #[test]
    fn ccomp_pressure_varies_by_iteration() {
        let mut g = ConnectedComponent::new(1, 1.0);
        // One sample window per iteration (iterations are 20 K accesses).
        let mut per_phase = Vec::new();
        for _ in 0..CCOMP_PHASES.len() {
            per_phase.push(pages_touched(&mut g, 20_000));
        }
        // With the hot window absorbing ~80% of label traffic, the
        // remaining per-iteration variation comes from the tail's span;
        // it is smaller than the raw frontier ratio but must be there.
        let max = *per_phase.iter().max().expect("nonempty");
        let min = *per_phase.iter().min().expect("nonempty");
        assert!(
            max as f64 / min as f64 > 1.15,
            "phases should differ: {per_phase:?}"
        );
    }

    #[test]
    fn canneal_mixes_reads_and_writes() {
        let mut g = Canneal::new(1, 0.5);
        let mut writes = 0;
        for _ in 0..10_000 {
            if g.next_access().ty == AccessType::Write {
                writes += 1;
            }
        }
        // ~30% accepted moves with 2 writes per 4 reads ⇒ ~13% writes.
        assert!((500..4000).contains(&writes), "writes {writes}");
    }

    #[test]
    fn pagerank_streams_edges_sequentially() {
        let mut g = PageRank::new(1, 0.5);
        let mut edge_lines = Vec::new();
        for _ in 0..300 {
            let a = g.next_access();
            if a.vaddr.raw() >= HEAP1 && a.vaddr.raw() < HEAP2 {
                edge_lines.push(a.vaddr.raw() >> 6);
            }
        }
        assert!(edge_lines.len() > 50);
        // Monotone non-decreasing line numbers = streaming.
        assert!(edge_lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn footprints_scale() {
        for scale in [0.25, 1.0] {
            let g = Graph500::new(1, scale);
            assert!(g.footprint_bytes() >= 3 * 2 * MB);
        }
        let small = Canneal::new(1, 0.1).footprint_bytes();
        let large = Canneal::new(1, 1.0).footprint_bytes();
        assert!(large > small * 5);
    }

    #[test]
    fn graph500_bursts_are_sequential_edge_lines() {
        let mut g = Graph500::new(1, 0.5);
        // Find a burst: consecutive reads in the edge region.
        let mut prev: Option<u64> = None;
        let mut seq_pairs = 0;
        for _ in 0..2000 {
            let a = g.next_access();
            let raw = a.vaddr.raw();
            if (HEAP1..HEAP2).contains(&raw) {
                if let Some(p) = prev {
                    if raw == p + LINE {
                        seq_pairs += 1;
                    }
                }
                prev = Some(raw);
            } else {
                prev = None;
            }
        }
        assert!(seq_pairs > 300, "only {seq_pairs} sequential edge pairs");
    }
}

#[cfg(test)]
mod locality_tests {
    use super::*;
    use std::collections::HashSet;

    /// Spread regions must cover every TLB/cache set-index residue —
    /// the aliasing regression that once funnelled all translation
    /// lines into 1/8 of the L3's sets.
    #[test]
    fn spread_pages_cover_all_low_bit_residues() {
        let mut g = Gups::new(1, 1.0);
        let mut residues = HashSet::new();
        for _ in 0..5000 {
            let a = g.next_access();
            residues.insert((a.vaddr.raw() >> 12) & 7);
        }
        assert_eq!(residues.len(), 8, "VPN low bits must take all values");
    }

    /// Spread regions put (almost) every touched page on its own leaf
    /// PTE line: touched pages per 64-byte PTE line stay near 1.
    #[test]
    fn spread_pages_have_private_pte_lines() {
        let mut g = Gups::new(1, 1.0);
        let mut pages = HashSet::new();
        let mut pte_lines = HashSet::new();
        for _ in 0..40_000 {
            let a = g.next_access();
            let vpn = a.vaddr.raw() >> 12;
            pages.insert(vpn);
            pte_lines.insert(vpn / 8);
        }
        let ratio = pages.len() as f64 / pte_lines.len() as f64;
        assert!(
            ratio < 1.3,
            "pages per PTE line should be ~1, got {ratio:.2}"
        );
    }

    /// Small ccomp phases confine label traffic to the phase's share of
    /// the pages, and successive iterations of one convergence cycle
    /// draw from nested sets — the small phase's pages reappear in the
    /// next (larger) phase of the same cycle.
    #[test]
    fn ccomp_small_phase_is_confined_and_reused() {
        let mut g = ConnectedComponent::new(5, 1.0);
        let label_pages = |g: &mut ConnectedComponent, n: usize| {
            let mut pages = HashSet::new();
            for _ in 0..n {
                let a = g.next_access();
                if a.vaddr.raw() < HEAP1 {
                    pages.insert(a.vaddr.raw() >> 12);
                }
            }
            pages
        };
        // Skip iterations 0-4 (active 1.0 … 0.14); sample iteration 5
        // (active 0.08) and 6 (active 0.2, same cycle, grown frontier).
        for _ in 0..5 {
            label_pages(&mut g, 20_000);
        }
        let total_pages = 65536.0;
        let small = label_pages(&mut g, 20_000);
        assert!(
            (small.len() as f64) < total_pages * 0.1,
            "phase 0.08 touched {} pages",
            small.len()
        );
        let grown = label_pages(&mut g, 20_000);
        // Nested mapping: the small phase's pages are a prefix-subset of
        // the grown phase's active set, so the fraction of `small` seen
        // again is bounded only by the grown phase's sampling coverage.
        let coverage = grown.len() as f64 / (total_pages * 0.2);
        let reused = small.iter().filter(|p| grown.contains(*p)).count();
        let reuse_rate = reused as f64 / small.len() as f64;
        assert!(
            reuse_rate > coverage * 0.8,
            "reuse {reuse_rate:.2} far below sampling coverage {coverage:.2}"
        );
    }

    /// Writes exist in every benchmark that the paper describes as
    /// updating state (all but pure readers).
    #[test]
    fn benchmarks_emit_writes() {
        use crate::gen::BenchKind;
        for kind in BenchKind::ALL {
            let mut g = kind.build(3, 0.1);
            let writes = (0..5000).filter(|_| g.next_access().ty.is_write()).count();
            assert!(writes > 0, "{kind} never writes");
            assert!(writes < 4000, "{kind} writes implausibly often");
        }
    }

    /// graph500's vertex stream concentrates on the frontier's hot
    /// pages: the most-touched 5% of pages absorb the majority of state
    /// traffic (hot window + zipf tail).
    #[test]
    fn graph500_vertex_stream_is_skewed() {
        let mut g = Graph500::new(2, 1.0);
        let mut counts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for _ in 0..60_000 {
            let a = g.next_access();
            if a.vaddr.raw() < HEAP1 {
                *counts.entry(a.vaddr.raw() >> 12).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().map(|&f| u64::from(f)).sum();
        let head: u64 = freqs
            .iter()
            .take((freqs.len() / 20).max(1))
            .map(|&f| u64::from(f))
            .sum();
        assert!(
            head as f64 / total as f64 > 0.3,
            "hot head too weak: {:.3}",
            head as f64 / total as f64
        );
    }
}
