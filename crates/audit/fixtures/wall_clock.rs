//# path: crates/core/src/fixture_wall_clock.rs
//# expect: S002
// A wall-clock read on the simulated path: the "latency" becomes a
// function of host load instead of simulated cycles.

use std::time::Instant;

pub fn charge_latency() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
