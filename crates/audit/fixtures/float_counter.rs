//# path: crates/pipeline/src/budget.rs
//# expect: S005
// Float arithmetic in a counter module: 0.1 has no binary
// representation, and accumulation order changes the total.

pub fn weighted_cycles(cycles: u64) -> u64 {
    let weighted = cycles as f64 * 0.1;
    weighted as u64
}
