//# path: crates/workloads/src/fixture_f32.rs
//# expect: S006
// f32 is banned workspace-wide: single-precision accumulation is
// platform- and codegen-sensitive in exactly the way a deterministic
// simulator cannot afford.

pub fn mean(samples: &[u64]) -> f32 {
    samples.iter().sum::<u64>() as f32 / samples.len() as f32
}
