//# path: crates/sim/src/fixture_hash_iteration.rs
//# expect: S001
// A result-affecting crate iterating a HashMap: the per-run iteration
// order feeds the emitted report, so two identical runs can emit
// differently-ordered bytes.

use std::collections::HashMap;

pub fn report(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
