//# path: crates/pipeline/src/source.rs
//# expect: S007
// A Release store whose field is never Acquire-loaded: the release
// edge synchronizes with nothing, so the "published" data is not
// actually made visible to anyone.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Publisher {
    seq: AtomicUsize,
}

impl Publisher {
    pub fn publish(&self, n: usize) {
        self.seq.store(n, Ordering::Release);
    }

    pub fn peek(&self) -> usize {
        self.seq.load(Ordering::Relaxed)
    }
}
