//# path: crates/cache/src/fixture_missing_safety.rs
//# expect: S003
// An unsafe block with no SAFETY justification: the proof obligation
// lives in the author's head and rots there.

pub fn read_first(v: &[u64]) -> u64 {
    unsafe { *v.get_unchecked(0) }
}
