//# path: crates/workloads/src/fixture_reasonless_waiver.rs
//# expect: S000 S006
// A waiver with no reason suppresses nothing and is itself a finding:
// exceptions must say why they are sound.

// audit-waive: S006
pub fn half(x: f32) -> f32 {
    x * 0.5f32
}
