//# path: crates/pipeline/src/fixture_unsafe.rs
//# expect: S004
// Even a justified unsafe block is banned in the pipeline crate: its
// lock-free structures are safe by design (atomic slot words), and the
// determinism proofs lean on that.

pub fn read_first(v: &[u64]) -> u64 {
    // SAFETY: callers guarantee v is non-empty.
    unsafe { *v.get_unchecked(0) }
}
