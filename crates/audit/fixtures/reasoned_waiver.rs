//# path: crates/workloads/src/fixture_reasoned_waiver.rs
//# expect:
// A waiver with a reason covers the finding on the next line; the tool
// still counts and reports it.

// audit-waive: S006 interop with an external f32 wire format, never accumulated
pub fn decode(x: f32) -> f64 {
    f64::from(x)
}
