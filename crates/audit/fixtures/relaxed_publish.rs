//# path: crates/pipeline/src/spsc.rs
//# expect: S008
// Relaxed on a publication index: the consumer can acquire the new
// tail yet still read the slot's previous contents, because nothing
// orders the slot-word stores before the index becomes visible.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Ring {
    tail: AtomicUsize,
}

impl Ring {
    pub fn publish(&self, n: usize) {
        self.tail.store(n, Ordering::Relaxed);
    }

    pub fn refresh(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }
}
