//! End-to-end srclint guarantees:
//!
//! 1. every negative fixture trips **exactly** its declared rule set —
//!    the fixtures prove the rules, and the exact-match comparison
//!    proves no rule over-fires;
//! 2. the real workspace lints clean with every waiver carrying a
//!    reason — the determinism contract holds on the tree as committed;
//! 3. the model-check suite verifies and each mutation is caught.

use csalt_audit::srclint::{lint_source, lint_workspace, srclint_rules};
use csalt_audit::{fixtures, modelcheck};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn every_fixture_trips_exactly_its_rules() {
    let outcomes = fixtures::check_all();
    assert!(
        outcomes.len() >= 10,
        "fixture corpus shrank: {}",
        outcomes.len()
    );
    for o in &outcomes {
        assert!(
            o.pass,
            "fixture {} ({}): expected {:?}, got {:?}",
            o.name, o.path, o.expected, o.actual
        );
    }
}

#[test]
fn every_srclint_rule_has_a_fixture() {
    // S000–S008 must each be exercised by at least one fixture so a
    // regression that silences a rule entirely cannot pass CI.
    let exercised: Vec<String> = fixtures::check_all()
        .into_iter()
        .flat_map(|o| o.expected)
        .collect();
    for rule in srclint_rules() {
        assert!(
            exercised.iter().any(|c| c == rule.code),
            "rule {} ({}) has no negative fixture",
            rule.code,
            rule.name
        );
    }
}

#[test]
fn reasoned_waiver_is_counted_not_silenced() {
    let fx = fixtures::FIXTURES
        .iter()
        .find(|f| f.name == "reasoned_waiver")
        .expect("fixture exists");
    let parsed = fixtures::parse(fx);
    let violations = lint_source(&parsed.path, parsed.body);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].waived);
    assert!(violations[0]
        .waive_reason
        .as_deref()
        .is_some_and(|r| r.contains("wire format")));
}

#[test]
fn workspace_lints_clean_with_zero_unexplained_waivers() {
    let report = lint_workspace(workspace_root()).expect("workspace walk succeeds");
    assert!(report.files >= 50, "walked only {} files", report.files);
    assert!(
        report.clean(),
        "workspace has unwaived srclint findings:\n{}",
        report
            .violations
            .iter()
            .filter(|v| !v.waived)
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    for v in &report.violations {
        assert!(
            v.waive_reason.as_deref().is_some_and(|r| !r.is_empty()),
            "waived finding without a reason: {v}"
        );
    }
}

#[test]
fn modelcheck_suite_passes_and_mutations_are_caught() {
    let report = modelcheck::run_suite();
    assert!(report.clean(), "{:#?}", report.checks);
    let (mutations, correct): (Vec<_>, Vec<_>) = report.checks.iter().partition(|c| c.mutation);
    assert!(mutations.len() >= 4 && correct.len() >= 8);
    for c in &correct {
        assert!(c.violation.is_none(), "{}: {:?}", c.name, c.violation);
    }
    for c in &mutations {
        let v = c.violation.as_ref().expect("mutation must be caught");
        assert!(
            !v.schedule.is_empty(),
            "{}: counterexample lacks a schedule",
            c.name
        );
    }
    // "Exhaustive" has to mean something: tens of thousands of distinct
    // states and thousands of complete interleaving outcomes.
    assert!(
        report.states > 30_000,
        "only {} states explored",
        report.states
    );
    assert!(
        report.terminals > 2_000,
        "only {} terminals",
        report.terminals
    );
}
