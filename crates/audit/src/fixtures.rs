//! Negative fixtures for the source lints: deliberately-bad snippets,
//! each annotated with the exact rule set it must trip.
//!
//! Every fixture is a standalone Rust snippet under `crates/audit/
//! fixtures/` with a two-line header:
//!
//! ```text
//! //# path: crates/sim/src/fixture_hash_iteration.rs
//! //# expect: S001
//! ```
//!
//! `path` is the *virtual* workspace path the snippet is linted as —
//! which manifest scopes apply depends on the path, so a fixture can
//! place itself inside (say) the pipeline crate's no-unsafe scope
//! without living there. `expect` lists the short rule codes the lint
//! must report, unwaived, and **nothing else**; an empty list means the
//! fixture must lint clean (used to prove reasoned waivers work).
//!
//! The fixtures are embedded with `include_str!` so they are never
//! compiled as Rust — several would not build, and the ones that would
//! must not leak items into the crate.

use crate::srclint::lint_source;

/// One embedded fixture: name, raw text (header included).
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// File stem under `crates/audit/fixtures/`.
    pub name: &'static str,
    /// Full fixture text, `//#` header lines included.
    pub text: &'static str,
}

/// Every embedded fixture, in deterministic (alphabetical) order.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "f32_anywhere",
        text: include_str!("../fixtures/f32_anywhere.rs"),
    },
    Fixture {
        name: "float_counter",
        text: include_str!("../fixtures/float_counter.rs"),
    },
    Fixture {
        name: "hash_iteration",
        text: include_str!("../fixtures/hash_iteration.rs"),
    },
    Fixture {
        name: "missing_safety",
        text: include_str!("../fixtures/missing_safety.rs"),
    },
    Fixture {
        name: "reasoned_waiver",
        text: include_str!("../fixtures/reasoned_waiver.rs"),
    },
    Fixture {
        name: "reasonless_waiver",
        text: include_str!("../fixtures/reasonless_waiver.rs"),
    },
    Fixture {
        name: "relaxed_publish",
        text: include_str!("../fixtures/relaxed_publish.rs"),
    },
    Fixture {
        name: "release_no_acquire",
        text: include_str!("../fixtures/release_no_acquire.rs"),
    },
    Fixture {
        name: "unsafe_in_pipeline",
        text: include_str!("../fixtures/unsafe_in_pipeline.rs"),
    },
    Fixture {
        name: "wall_clock",
        text: include_str!("../fixtures/wall_clock.rs"),
    },
];

/// Parsed fixture header plus the snippet body.
#[derive(Debug, Clone)]
pub struct ParsedFixture {
    /// Fixture name (file stem).
    pub name: &'static str,
    /// Virtual workspace path the snippet is linted as.
    pub path: String,
    /// Short rule codes (e.g. `S001`) the lint must report, sorted.
    pub expect: Vec<String>,
    /// Snippet body with header lines intact (line numbers stay true).
    pub body: &'static str,
}

/// Parses a fixture's `//#` header. Panics on a malformed fixture —
/// fixtures are part of the crate, so a bad header is a build bug.
pub fn parse(fx: &Fixture) -> ParsedFixture {
    let mut path = None;
    let mut expect = None;
    for line in fx.text.lines() {
        let Some(rest) = line.strip_prefix("//#") else {
            break;
        };
        let rest = rest.trim();
        if let Some(p) = rest.strip_prefix("path:") {
            path = Some(p.trim().to_string());
        } else if let Some(e) = rest.strip_prefix("expect:") {
            let mut codes: Vec<String> = e.split_whitespace().map(str::to_string).collect();
            codes.sort();
            expect = Some(codes);
        } else {
            panic!("fixture {}: unknown header directive {line:?}", fx.name);
        }
    }
    ParsedFixture {
        name: fx.name,
        path: path.unwrap_or_else(|| panic!("fixture {} lacks a //# path: header", fx.name)),
        expect: expect.unwrap_or_else(|| panic!("fixture {} lacks a //# expect: header", fx.name)),
        body: fx.text,
    }
}

/// Result of checking one fixture against its expectation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FixtureOutcome {
    /// Fixture name.
    pub name: &'static str,
    /// Virtual path it was linted as.
    pub path: String,
    /// Rule codes the fixture declared it must trip.
    pub expected: Vec<String>,
    /// Rule codes the lint actually reported (unwaived, deduplicated).
    pub actual: Vec<String>,
    /// Whether expected == actual.
    pub pass: bool,
}

/// Lints one fixture and compares the unwaived rule set against its
/// `expect` header.
pub fn check(fx: &Fixture) -> FixtureOutcome {
    let parsed = parse(fx);
    let violations = lint_source(&parsed.path, parsed.body);
    let mut actual: Vec<String> = violations
        .iter()
        .filter(|v| !v.waived)
        .map(|v| v.rule.to_string())
        .collect();
    actual.sort();
    actual.dedup();
    let pass = actual == parsed.expect;
    FixtureOutcome {
        name: parsed.name,
        path: parsed.path,
        expected: parsed.expect,
        actual,
        pass,
    }
}

/// Checks every embedded fixture; `all(pass)` means the lint rules each
/// catch exactly what they claim to.
pub fn check_all() -> Vec<FixtureOutcome> {
    FIXTURES.iter().map(check).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_parse() {
        for fx in FIXTURES {
            let parsed = parse(fx);
            assert!(
                parsed.path.starts_with("crates/"),
                "{}: virtual path {} must sit inside the workspace",
                fx.name,
                parsed.path
            );
        }
    }

    #[test]
    fn fixture_names_are_sorted_and_unique() {
        let names: Vec<_> = FIXTURES.iter().map(|f| f.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "FIXTURES must be alphabetical and unique");
    }
}
